#include "flightrec.hh"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "obs/thread_id.hh"

namespace mbs {
namespace obs {

namespace {

std::uint64_t
nowMicros()
{
    using namespace std::chrono;
    return std::uint64_t(duration_cast<microseconds>(
        steady_clock::now().time_since_epoch()).count());
}

/**
 * A tiny buffered formatter whose primitives are all usable from a
 * signal handler: no allocation, no locale, no stdio. The sink is a
 * plain function pointer so both dump paths (string append, raw fd
 * write) share one byte-identical formatting routine.
 */
struct Out
{
    void (*sink)(void *ctx, const char *data, std::size_t len);
    void *ctx;
    char buf[512];
    std::size_t len = 0;
};

void
flush(Out &out)
{
    if (out.len > 0)
        out.sink(out.ctx, out.buf, out.len);
    out.len = 0;
}

void
putBytes(Out &out, const char *data, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (out.len == sizeof(out.buf))
            flush(out);
        out.buf[out.len++] = data[i];
    }
}

void
putStr(Out &out, const char *s)
{
    putBytes(out, s, std::strlen(s));
}

void
putU64(Out &out, std::uint64_t v)
{
    char digits[20];
    std::size_t n = 0;
    do {
        digits[n++] = char('0' + v % 10);
        v /= 10;
    } while (v > 0);
    while (n > 0)
        putBytes(out, &digits[--n], 1);
}

void
stringSink(void *ctx, const char *data, std::size_t len)
{
    static_cast<std::string *>(ctx)->append(data, len);
}

void
fdSink(void *ctx, const char *data, std::size_t len)
{
    const int fd = int(reinterpret_cast<std::intptr_t>(ctx));
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::write(fd, data + done, len - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // best effort — the process is dying
        }
        done += std::size_t(n);
    }
}

} // namespace

FlightRecorder &
FlightRecorder::instance()
{
    static FlightRecorder recorder;
    return recorder;
}

void
FlightRecorder::arm()
{
    on.store(true, std::memory_order_relaxed);
}

void
FlightRecorder::disarm()
{
    on.store(false, std::memory_order_relaxed);
}

FlightRecorder::Ring *
FlightRecorder::myRing()
{
    // The selfprof registration idiom: a generation stamp tells a
    // thread its cached ring was detached by resetForTest().
    thread_local Ring *mine = nullptr;
    thread_local std::uint64_t myGeneration = 0;
    const std::uint64_t current =
        generation.load(std::memory_order_relaxed);
    if (mine != nullptr && myGeneration == current)
        return mine;

    std::lock_guard<std::mutex> lock(mtx);
    const std::size_t slot = ringCount.load(std::memory_order_relaxed);
    if (slot >= kMaxThreads)
        return nullptr;
    auto ring = std::make_unique<Ring>();
    ring->tid = currentThreadId();
    rings[slot] = ring.get();
    keepAlive.push_back(std::move(ring));
    // Publish the slot only after the pointer is in place, so the
    // lock-free dump never sees an unset slot.
    ringCount.store(slot + 1, std::memory_order_release);
    mine = rings[slot];
    myGeneration = current;
    return mine;
}

void
FlightRecorder::record(char kind, const char *name, std::size_t len)
{
    Ring *ring = myRing();
    if (ring == nullptr)
        return;
    const std::uint64_t seq =
        ring->head.load(std::memory_order_relaxed);
    Entry &e = ring->entries[seq % kRingEntries];
    // Un-publish the slot first: a dump racing this overwrite sees a
    // stale stamp and skips the entry instead of reading a mix.
    e.stamp.store(0, std::memory_order_release);
    e.tsMicros = nowMicros();
    e.kind = kind;
    std::size_t n = 0;
    for (; n < len && n < kNameBytes - 1; ++n) {
        const char c = name[n];
        // Sanitize at record time so the signal-context dump never
        // needs JSON escaping: printable ASCII minus '"' and '\'.
        e.name[n] = (c < 0x20 || c == '"' || c == '\\' || c == 0x7f)
            ? '_' : c;
    }
    e.name[n] = '\0';
    e.stamp.store(seq + 1, std::memory_order_release);
    ring->head.store(seq + 1, std::memory_order_release);
}

void
FlightRecorder::dumpTo(void (*sink)(void *, const char *, std::size_t),
                       void *ctx) const
{
    Out out{sink, ctx, {}, 0};
    const std::size_t count = ringCount.load(std::memory_order_acquire);

    putStr(out, "{\"flightrec\": 1, \"ring_entries\": ");
    putU64(out, kRingEntries);
    putStr(out, ", \"threads\": ");
    putU64(out, count);
    putStr(out, "}\n");

    for (std::size_t i = 0; i < count; ++i) {
        const Ring *ring = rings[i];
        const std::uint64_t head =
            ring->head.load(std::memory_order_acquire);
        const std::uint64_t dropped =
            head > kRingEntries ? head - kRingEntries : 0;
        putStr(out, "{\"tid\": ");
        putU64(out, std::uint64_t(ring->tid));
        putStr(out, ", \"written\": ");
        putU64(out, head);
        putStr(out, ", \"dropped\": ");
        putU64(out, dropped);
        putStr(out, "}\n");
        for (std::uint64_t seq = dropped; seq < head; ++seq) {
            const Entry &e = ring->entries[seq % kRingEntries];
            if (e.stamp.load(std::memory_order_acquire) != seq + 1)
                continue; // torn or overwritten mid-dump
            putStr(out, "{\"tid\": ");
            putU64(out, std::uint64_t(ring->tid));
            putStr(out, ", \"seq\": ");
            putU64(out, seq);
            putStr(out, ", \"ts_us\": ");
            putU64(out, e.tsMicros);
            putStr(out, ", \"kind\": \"");
            putBytes(out, &e.kind, 1);
            putStr(out, "\", \"name\": \"");
            putStr(out, e.name);
            putStr(out, "\"}\n");
        }
    }
    flush(out);
}

void
FlightRecorder::dumpToFd(int fd) const
{
    dumpTo(fdSink, reinterpret_cast<void *>(std::intptr_t(fd)));
}

std::string
FlightRecorder::dumpJsonl() const
{
    std::string text;
    dumpTo(stringSink, &text);
    return text;
}

bool
FlightRecorder::dumpToFile(const std::string &path) const
{
    std::error_code ec;
    const std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string text = dumpJsonl();
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return std::fclose(f) == 0 && ok;
}

std::vector<FlightRecorder::ThreadStats>
FlightRecorder::threadStats() const
{
    std::vector<ThreadStats> out;
    const std::size_t count = ringCount.load(std::memory_order_acquire);
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const Ring *ring = rings[i];
        ThreadStats s;
        s.tid = ring->tid;
        s.written = ring->head.load(std::memory_order_acquire);
        s.dropped =
            s.written > kRingEntries ? s.written - kRingEntries : 0;
        out.push_back(s);
    }
    return out;
}

void
FlightRecorder::resetForTest()
{
    disarm();
    std::lock_guard<std::mutex> lock(mtx);
    ringCount.store(0, std::memory_order_release);
    generation.fetch_add(1, std::memory_order_relaxed);
}

} // namespace obs
} // namespace mbs
