/**
 * @file
 * Span-based tracing with Chrome trace-event JSON export.
 *
 * The tracer records begin/end/instant events into an in-memory
 * buffer and exports them in the Chrome trace-event format, so a run
 * of the pipeline can be opened directly in Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing.
 *
 * Usage:
 * @code
 *   obs::Tracer::instance().setEnabled(true);
 *   {
 *       obs::ScopedSpan stage("profile", "stage");
 *       ... // nested ScopedSpans become child slices
 *   }
 *   obs::Tracer::instance().writeJson("out.trace.json");
 * @endcode
 *
 * The tracer is disabled by default and then costs one relaxed
 * atomic load per ScopedSpan construction — instrumented library
 * code pays essentially nothing unless a tool opts in. All recording
 * paths are thread-safe; each thread's events carry a small
 * sequential tid so slices nest per thread in the viewer.
 */

#ifndef MBS_OBS_TRACE_HH
#define MBS_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mbs {
namespace obs {

/** Key/value pairs attached to an event (values exported as strings). */
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

/** One recorded trace event. */
struct TraceEvent
{
    std::string name;
    std::string category;
    /**
     * Chrome phase: 'B' begin, 'E' end, 'i' instant, 'M' metadata,
     * 's'/'f' flow start/finish (cross-process arrows).
     */
    char phase = 'B';
    /** Microseconds since the tracer epoch. */
    std::uint64_t tsMicros = 0;
    /** Small sequential per-thread id (1-based). */
    int tid = 0;
    /** Flow-event chain id ('s'/'f' phases only). */
    std::uint64_t flowId = 0;
    TraceArgs args;
};

/** Aggregated duration of all spans sharing a (category, name). */
struct SpanSummary
{
    std::string name;
    std::string category;
    /** Completed begin/end pairs. */
    std::uint64_t count = 0;
    double totalSeconds = 0.0;
};

/**
 * The process-wide trace recorder.
 */
class Tracer
{
  public:
    static Tracer &instance();

    /** Turn recording on or off (off by default). */
    void setEnabled(bool on);

    /** @return true when events are being recorded. */
    bool enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /** Record a span-begin event. No-op while disabled. */
    void begin(const std::string &name, const std::string &category,
               TraceArgs args = {});
    /** Record a span-end event. No-op while disabled. */
    void end(const std::string &name, const std::string &category);
    /** Record a zero-duration instant event. No-op while disabled. */
    void instant(const std::string &name, const std::string &category,
                 TraceArgs args = {});

    /**
     * Record a flow event: @p phase 's' starts a chain, 'f' finishes
     * it; events sharing @p flowId are drawn as one arrow by the
     * trace viewer, across processes once traces are stitched
     * (serve/stitch.hh). No-op while disabled.
     */
    void flow(char phase, const std::string &name,
              const std::string &category, std::uint64_t flowId);

    /**
     * Attach run metadata (seed, config digest, ...). Always
     * recorded, independent of the enabled flag, and exported both
     * as 'M' metadata events and in the document's otherData block.
     */
    void metadata(const std::string &key, const std::string &value);

    /** Copy of the recorded event buffer (metadata not included). */
    std::vector<TraceEvent> events() const;

    /** Copy of the recorded metadata map. */
    std::map<std::string, std::string> metadataEntries() const;

    /**
     * Aggregate completed begin/end pairs by (category, name), in
     * first-begin order. @p category filters when non-empty.
     */
    std::vector<SpanSummary>
    spanSummaries(const std::string &category = "") const;

    /**
     * Individual completed span durations (seconds) keyed by span
     * name, begin-order within each name. @p category filters when
     * non-empty. Feeds percentile computation over stage timings.
     */
    std::map<std::string, std::vector<double>>
    spanDurations(const std::string &category = "") const;

    /**
     * The steady-clock microsecond reading the tracer's relative
     * timestamps are measured from. Exported as `epochMicros` so a
     * stitcher can align two processes' traces on the shared clock.
     */
    std::uint64_t epoch() const;

    /** Render the Chrome trace-event JSON document. */
    std::string exportJson() const;

    /** Write exportJson() to @p out. */
    void writeJson(std::ostream &out) const;

    /** Write exportJson() to @p path; fatal() if unwritable. */
    void writeJson(const std::string &path) const;

    /** Drop all recorded events and metadata; reset the epoch. */
    void clear();

  private:
    Tracer();

    void record(TraceEvent event);

    std::atomic<bool> on{false};
    mutable std::mutex mtx;
    std::vector<TraceEvent> buffer;
    std::map<std::string, std::string> meta;
    std::uint64_t epochMicros = 0;
};

/**
 * RAII span: records a begin event at construction and the matching
 * end event at destruction. When the tracer is disabled at
 * construction time the object is inert. While the self-profiler
 * (obs/selfprof.hh) is armed the span also pushes a frame onto the
 * profiler's per-thread stack, and while the flight recorder
 * (obs/flightrec.hh) is armed it drops begin/end entries into the
 * per-thread crash ring — both independent of the tracer flag.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::string name,
                        std::string category = "span",
                        TraceArgs args = {});
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    std::string name;
    std::string category;
    bool active = false;
    bool profiled = false;
};

} // namespace obs
} // namespace mbs

#endif // MBS_OBS_TRACE_HH
