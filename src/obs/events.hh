/**
 * @file
 * Structured event log with JSONL export.
 *
 * Where the tracer (obs/trace.hh) records *spans* for flame-graph
 * viewers, the event log records *facts*: discrete, typed happenings
 * with machine-readable payloads, one JSON object per line. Every
 * event carries a common envelope — wall-clock timestamp, small
 * thread id (shared with the tracer, so events correlate with
 * trace.json slices), event type — plus run-wide common fields (run
 * id, seed, SoC/benchmark digests) attached once by the CLI.
 *
 * Emitters: the pipeline (run/stage boundaries), the profiler (unit
 * merges), the executor (task lifecycle), the store (hit/miss/evict)
 * and the simulator (run boundaries, DVFS transitions, migrations —
 * per-tick detail events are capped per run so a long simulation
 * cannot flood the log).
 *
 * The log is disabled by default; every emit() then costs one relaxed
 * atomic load. Events buffer in memory (bounded; overflow is counted
 * and reported at export) and are written by writeJsonl(). Event
 * order follows buffer insertion, so lines from worker threads
 * interleave non-deterministically — events.jsonl is a wall-clock
 * artifact, not part of the deterministic export contract.
 */

#ifndef MBS_OBS_EVENTS_HH
#define MBS_OBS_EVENTS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mbs {
namespace obs {

/** Ordered (key, value) payload of one event; values are strings. */
using EventFields = std::vector<std::pair<std::string, std::string>>;

/** One recorded event. */
struct Event
{
    /** Dotted type name, e.g. "store.hit" or "sim.run.end". */
    std::string type;
    /** Microseconds since the Unix epoch (wall clock). */
    std::uint64_t tsMicros = 0;
    /** Small sequential thread id (shared with the tracer). */
    int tid = 0;
    EventFields fields;
};

/**
 * The process-wide event log.
 */
class EventLog
{
  public:
    static EventLog &instance();

    /** Turn recording on or off (off by default). */
    void setEnabled(bool on);
    bool enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /** Record one event of @p type with @p fields. No-op while off. */
    void emit(const std::string &type, EventFields fields = {});

    /**
     * Attach a field included in every subsequent exported line
     * (run id, seed, config digests). Recorded independent of the
     * enabled flag, like tracer metadata.
     */
    void setCommonField(const std::string &key,
                        const std::string &value);

    /** Copy of the recorded common-field map. */
    std::map<std::string, std::string> commonFields() const;

    /** Copy of the recorded event buffer. */
    std::vector<Event> events() const;

    /** Events discarded because the buffer cap was reached. */
    std::uint64_t dropped() const;

    /**
     * Render one JSON object per event, one per line. A non-empty
     * @p partialReason prepends a `log.partial` event marking the
     * output as a partial flush; a non-zero drop count appends a
     * final `log.dropped` event.
     */
    std::string exportJsonl(const std::string &partialReason = "") const;

    /** Write exportJsonl() to @p out. */
    void writeJsonl(std::ostream &out,
                    const std::string &partialReason = "") const;

    /** Write exportJsonl() to @p path; fatal() if unwritable. */
    void writeJsonl(const std::string &path,
                    const std::string &partialReason = "") const;

    /** Drop all events, common fields and the overflow count. */
    void clear();

  private:
    EventLog() = default;

    std::atomic<bool> on{false};
    mutable std::mutex mtx;
    std::vector<Event> buffer;
    std::map<std::string, std::string> common;
    std::uint64_t droppedCount = 0;
    /** Buffer cap; overflow increments droppedCount instead. */
    std::size_t capacity = 1 << 20;
};

} // namespace obs
} // namespace mbs

#endif // MBS_OBS_EVENTS_HH
