#include "export_prometheus.hh"

#include <cmath>

#include "common/strings.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"

namespace mbs {
namespace obs {

namespace {

bool
validNameChar(char c, bool first)
{
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        c == '_' || c == ':')
        return true;
    return !first && c >= '0' && c <= '9';
}

/** A sample value: %.17g, with Prometheus' non-finite spellings. */
std::string
promNumber(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    return jsonNumber(value);
}

/** A `le` bucket label: compact %g (bounds are config constants). */
std::string
leLabel(double bound)
{
    return strformat("%g", bound);
}

/**
 * Escape a `# HELP` payload per the text exposition format:
 * backslash and newline are the only escapes.
 */
std::string
escapeHelp(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/** The `# HELP` line for @p s, or nothing when no help was given. */
std::string
helpLine(const std::string &name, const MetricSample &s)
{
    if (s.help.empty())
        return "";
    return "# HELP " + name + " " + escapeHelp(s.help) + "\n";
}

} // namespace

std::string
sanitizePrometheusName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name) {
        const bool first = out.empty();
        if (validNameChar(c, first)) {
            out += c;
        } else if (first && c >= '0' && c <= '9') {
            out += '_';
            out += c;
        } else {
            out += '_';
        }
    }
    if (out.empty())
        out = "_";
    return out;
}

std::string
toPrometheusText(const MetricsSnapshot &snapshot,
                 const std::string &partialReason)
{
    std::string out;
    if (!partialReason.empty())
        out += "# PARTIAL: " + partialReason + "\n";
    for (const auto &s : snapshot.samples) {
        const std::string name = sanitizePrometheusName(s.name);
        switch (s.kind) {
          case MetricSample::Kind::Counter:
            out += helpLine(name, s);
            out += "# TYPE " + name + " counter\n";
            out += name + " " +
                strformat("%llu",
                          (unsigned long long)(std::uint64_t)s.value) +
                "\n";
            break;
          case MetricSample::Kind::Gauge:
            out += helpLine(name, s);
            out += "# TYPE " + name + " gauge\n";
            out += name + " " + promNumber(s.value) + "\n";
            break;
          case MetricSample::Kind::Histogram: {
            out += helpLine(name, s);
            out += "# TYPE " + name + " histogram\n";
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < s.bucketBounds.size(); ++i) {
                cumulative += i < s.bucketCounts.size()
                    ? s.bucketCounts[i] : 0;
                out += name + "_bucket{le=\"" +
                    leLabel(s.bucketBounds[i]) + "\"} " +
                    strformat("%llu", (unsigned long long)cumulative) +
                    "\n";
            }
            out += name + "_bucket{le=\"+Inf\"} " +
                strformat("%llu", (unsigned long long)s.observations) +
                "\n";
            out += name + "_sum " + promNumber(s.sum) + "\n";
            out += name + "_count " +
                strformat("%llu", (unsigned long long)s.observations) +
                "\n";
            break;
          }
        }
    }
    return out;
}

} // namespace obs
} // namespace mbs
