#include "export_prometheus.hh"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/strings.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"

namespace mbs {
namespace obs {

namespace {

bool
validNameChar(char c, bool first)
{
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        c == '_' || c == ':')
        return true;
    return !first && c >= '0' && c <= '9';
}

/** A sample value: %.17g, with Prometheus' non-finite spellings. */
std::string
promNumber(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    return jsonNumber(value);
}

/** A `le` bucket label: compact %g (bounds are config constants). */
std::string
leLabel(double bound)
{
    return strformat("%g", bound);
}

/**
 * Escape a `# HELP` payload per the text exposition format:
 * backslash and newline are the only escapes.
 */
std::string
escapeHelp(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/** The `# HELP` line for @p s, or nothing when no help was given. */
std::string
helpLine(const std::string &name, const MetricSample &s)
{
    if (s.help.empty())
        return "";
    return "# HELP " + name + " " + escapeHelp(s.help) + "\n";
}

/**
 * Split an instrument name into its metric family and an optional
 * `{key="value",...}` label block (see obs::labeledMetric). Only the
 * family part is sanitized; the label block passes through verbatim.
 */
struct SplitName
{
    std::string family;
    /** Includes the braces; empty when the name carries no labels. */
    std::string labels;
};

SplitName
splitName(const std::string &name)
{
    SplitName split;
    const auto brace = name.find('{');
    if (brace == std::string::npos || name.back() != '}') {
        split.family = sanitizePrometheusName(name);
    } else {
        split.family = sanitizePrometheusName(name.substr(0, brace));
        split.labels = name.substr(brace);
    }
    return split;
}

/** `family_bucket{...,le="bound"}` merging @p labels with le. */
std::string
bucketSeries(const SplitName &split, const std::string &le)
{
    if (split.labels.empty())
        return split.family + "_bucket{le=\"" + le + "\"}";
    // Drop the closing brace and splice the le label in.
    return split.family + "_bucket" +
        split.labels.substr(0, split.labels.size() - 1) + ",le=\"" +
        le + "\"}";
}

} // namespace

std::string
sanitizePrometheusName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name) {
        const bool first = out.empty();
        if (validNameChar(c, first)) {
            out += c;
        } else if (first && c >= '0' && c <= '9') {
            out += '_';
            out += c;
        } else {
            out += '_';
        }
    }
    if (out.empty())
        out = "_";
    return out;
}

std::string
toPrometheusText(const MetricsSnapshot &snapshot,
                 const std::string &partialReason)
{
    std::string out;
    if (!partialReason.empty())
        out += "# PARTIAL: " + partialReason + "\n";
    // HELP/TYPE belong to the metric family, emitted once even when
    // labeled variants fan the family out over several samples.
    // Group by (family, labels) — not by raw name — so a family's
    // labeled variants stay contiguous even when another family
    // (serve_exec_seconds_p50) sorts between the bare name and its
    // '{'-suffixed variants. The empty label block sorts first, so
    // the bare instrument (the one registered with help text) leads
    // its family.
    std::vector<std::pair<SplitName, const MetricSample *>> ordered;
    ordered.reserve(snapshot.samples.size());
    for (const auto &s : snapshot.samples)
        ordered.emplace_back(splitName(s.name), &s);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const auto &a, const auto &b) {
                         if (a.first.family != b.first.family)
                             return a.first.family < b.first.family;
                         return a.first.labels < b.first.labels;
                     });
    std::string lastFamily;
    for (const auto &[split, sample] : ordered) {
        const MetricSample &s = *sample;
        const std::string series = split.family + split.labels;
        const bool newFamily = split.family != lastFamily;
        lastFamily = split.family;
        switch (s.kind) {
          case MetricSample::Kind::Counter:
            if (newFamily) {
                out += helpLine(split.family, s);
                out += "# TYPE " + split.family + " counter\n";
            }
            out += series + " " +
                strformat("%llu",
                          (unsigned long long)(std::uint64_t)s.value) +
                "\n";
            break;
          case MetricSample::Kind::Gauge:
            if (newFamily) {
                out += helpLine(split.family, s);
                out += "# TYPE " + split.family + " gauge\n";
            }
            out += series + " " + promNumber(s.value) + "\n";
            break;
          case MetricSample::Kind::Histogram: {
            if (newFamily) {
                out += helpLine(split.family, s);
                out += "# TYPE " + split.family + " histogram\n";
            }
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < s.bucketBounds.size(); ++i) {
                cumulative += i < s.bucketCounts.size()
                    ? s.bucketCounts[i] : 0;
                out += bucketSeries(split, leLabel(s.bucketBounds[i])) +
                    " " +
                    strformat("%llu", (unsigned long long)cumulative) +
                    "\n";
            }
            out += bucketSeries(split, "+Inf") + " " +
                strformat("%llu", (unsigned long long)s.observations) +
                "\n";
            out += split.family + "_sum" + split.labels + " " +
                promNumber(s.sum) + "\n";
            out += split.family + "_count" + split.labels + " " +
                strformat("%llu", (unsigned long long)s.observations) +
                "\n";
            break;
          }
        }
    }
    return out;
}

} // namespace obs
} // namespace mbs
