/**
 * @file
 * Small sequential per-thread identifiers shared by the tracer and
 * the event log, so one thread carries the same tid in trace.json and
 * events.jsonl and the two files can be correlated.
 */

#ifndef MBS_OBS_THREAD_ID_HH
#define MBS_OBS_THREAD_ID_HH

#include <atomic>

namespace mbs {
namespace obs {

/**
 * @return a small 1-based id, assigned on first call per thread and
 * stable for the thread's lifetime. The inline function-local statics
 * guarantee one shared counter across translation units.
 */
inline int
currentThreadId()
{
    static std::atomic<int> next{1};
    thread_local int id = next.fetch_add(1);
    return id;
}

} // namespace obs
} // namespace mbs

#endif // MBS_OBS_THREAD_ID_HH
