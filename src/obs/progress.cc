#include "progress.hh"

#include <unistd.h>

#include "common/logging.hh"
#include "common/strings.hh"

namespace mbs {
namespace obs {

Progress &
Progress::instance()
{
    static Progress progress;
    return progress;
}

void
Progress::setEnabled(bool enable)
{
    on.store(enable, std::memory_order_relaxed);
}

void
Progress::setMode(Mode m)
{
    std::lock_guard<std::mutex> lock(mtx);
    mode = m;
}

void
Progress::setSinkForTest(std::FILE *f)
{
    std::lock_guard<std::mutex> lock(mtx);
    testSink = f;
}

void
Progress::setListener(
    std::function<void(std::size_t, std::size_t, const std::string &)>
        fn)
{
    std::lock_guard<std::mutex> lock(mtx);
    listener = std::move(fn);
    listening.store(listener != nullptr, std::memory_order_relaxed);
}

Progress::Mode
Progress::activeMode()
{
    std::lock_guard<std::mutex> lock(mtx);
    return resolved;
}

std::FILE *
Progress::sink()
{
    return testSink != nullptr ? testSink : stderr;
}

bool
Progress::sinkIsTty()
{
    std::FILE *f = sink();
    const int fd = fileno(f);
    return fd >= 0 && isatty(fd) == 1;
}

void
Progress::render(const std::string &line, bool finalLine)
{
    // Redraws share the logging sink mutex so a concurrent warn()
    // from a worker thread never tears a progress line (the state
    // mutex is always taken first, the sink mutex second).
    std::lock_guard<std::mutex> sinkLock(logSinkMutex());
    std::FILE *f = sink();
    if (resolved == Mode::Tty) {
        // Pad with spaces so a shorter redraw fully covers the
        // previous, longer one before the cursor returns home.
        std::string padded = line;
        while (padded.size() < lastWidth)
            padded += ' ';
        lastWidth = line.size();
        std::fprintf(f, "\r%s%s", padded.c_str(),
                     finalLine ? "\n" : "");
        if (finalLine)
            lastWidth = 0;
        std::fflush(f);
    } else {
        std::fprintf(f, "%s\n", line.c_str());
    }
}

void
Progress::begin(std::size_t total_, const std::string &label)
{
    const bool toListener = listening.load(std::memory_order_relaxed);
    if (!enabled() && !toListener)
        return;
    std::lock_guard<std::mutex> lock(mtx);
    total = total_;
    done = 0;
    lastWidth = 0;
    if (listener) {
        listener(0, total, label);
        return;
    }
    resolved = mode;
    if (resolved == Mode::Auto)
        resolved = sinkIsTty() ? Mode::Tty : Mode::Lines;
    if (total > 0) {
        render(strformat("%s: %zu steps", label.c_str(), total),
               false);
    } else {
        render(label, false);
    }
}

void
Progress::step(const std::string &label)
{
    const bool toListener = listening.load(std::memory_order_relaxed);
    if (!enabled() && !toListener)
        return;
    std::lock_guard<std::mutex> lock(mtx);
    ++done;
    if (listener) {
        listener(done, total, label);
        return;
    }
    std::string line;
    if (total > 0) {
        line = strformat("[%3zu/%zu] %s", done, total, label.c_str());
    } else {
        line = strformat("[%3zu] %s", done, label.c_str());
    }
    render(line, false);
}

void
Progress::finish()
{
    const bool toListener = listening.load(std::memory_order_relaxed);
    if (!enabled() && !toListener)
        return;
    std::lock_guard<std::mutex> lock(mtx);
    if (listener) {
        total = 0;
        done = 0;
        return;
    }
    if (resolved == Mode::Tty && lastWidth > 0) {
        // Leave the last frame on screen and move past it so the
        // next log line starts on a fresh row.
        std::string line;
        if (total > 0)
            line = strformat("[%3zu/%zu] done", done, total);
        else
            line = strformat("[%3zu] done", done);
        render(line, true);
    }
    total = 0;
    done = 0;
}

} // namespace obs
} // namespace mbs
