#include "progress.hh"

#include <cstdio>

#include "common/logging.hh"

namespace mbs {
namespace obs {

Progress &
Progress::instance()
{
    static Progress progress;
    return progress;
}

void
Progress::setEnabled(bool enable)
{
    on.store(enable, std::memory_order_relaxed);
}

void
Progress::begin(std::size_t total_, const std::string &label)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mtx);
    total = total_;
    done = 0;
    // Redraws share the logging sink mutex so a concurrent warn()
    // from a worker thread never tears a progress line (the state
    // mutex is always taken first, the sink mutex second).
    std::lock_guard<std::mutex> sink(logSinkMutex());
    if (total > 0) {
        std::fprintf(stderr, "%s: %zu steps\n", label.c_str(), total);
    } else {
        std::fprintf(stderr, "%s\n", label.c_str());
    }
}

void
Progress::step(const std::string &label)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mtx);
    ++done;
    std::lock_guard<std::mutex> sink(logSinkMutex());
    if (total > 0) {
        std::fprintf(stderr, "[%3zu/%zu] %s\n", done, total,
                     label.c_str());
    } else {
        std::fprintf(stderr, "[%3zu] %s\n", done, label.c_str());
    }
}

void
Progress::finish()
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mtx);
    total = 0;
    done = 0;
}

} // namespace obs
} // namespace mbs
