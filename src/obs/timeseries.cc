#include "timeseries.hh"

#include <algorithm>
#include <chrono>
#include <locale>
#include <sstream>

#include "common/csv.hh"
#include "common/strings.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"

namespace mbs {
namespace obs {

namespace {

std::uint64_t
nowMicros()
{
    using namespace std::chrono;
    return std::uint64_t(duration_cast<microseconds>(
        steady_clock::now().time_since_epoch()).count());
}

} // namespace

const char *
clockDomainName(ClockDomain domain)
{
    return domain == ClockDomain::Logical ? "logical" : "wall";
}

TimeSeriesSampler &
TimeSeriesSampler::instance()
{
    static TimeSeriesSampler sampler;
    return sampler;
}

void
TimeSeriesSampler::setEnabled(bool enable)
{
    on.store(enable, std::memory_order_relaxed);
}

void
TimeSeriesSampler::advance(std::uint64_t ticks)
{
    if (!enabled())
        return;
    logicalClock.fetch_add(ticks, std::memory_order_relaxed);
}

void
TimeSeriesSampler::sample(ClockDomain domain,
                          const std::string &checkpoint)
{
    if (!enabled())
        return;

    // Snapshot outside the sampler lock; the registry has its own.
    const bool includeVolatile = domain == ClockDomain::Wall;
    const MetricsSnapshot snap =
        MetricsRegistry::instance().snapshot(includeVolatile);

    TimeSample s;
    s.checkpoint = checkpoint;
    s.values.reserve(snap.samples.size());
    for (const auto &m : snap.samples) {
        // Scalar instruments only: a histogram's shape belongs to the
        // snapshot exports, but its volume is still visible here.
        if (m.kind == MetricSample::Kind::Histogram) {
            s.values.emplace_back(m.name + ".count",
                                  double(m.observations));
            s.values.emplace_back(m.name + ".sum", m.sum);
        } else {
            s.values.emplace_back(m.name, m.value);
        }
    }

    std::lock_guard<std::mutex> lock(mtx);
    if (domain == ClockDomain::Logical) {
        s.time = logicalClock.load(std::memory_order_relaxed);
    } else {
        if (!wallEpochSet) {
            wallEpochMicros = nowMicros();
            wallEpochSet = true;
        }
        s.time = nowMicros() - wallEpochMicros;
    }
    Ring &r = ring(domain);
    s.index = r.nextIndex++;
    r.samples.push_back(std::move(s));
    if (r.samples.size() > ringCapacity) {
        r.samples.pop_front();
        ++r.dropped;
    }
}

void
TimeSeriesSampler::startWallSampler(unsigned intervalMillis)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(wallThreadMtx);
    if (wallThread.joinable())
        return;
    wallStop.store(false, std::memory_order_relaxed);
    wallThread = std::thread(
        [this, intervalMillis]() { wallLoop(intervalMillis); });
}

void
TimeSeriesSampler::stopWallSampler()
{
    std::lock_guard<std::mutex> lock(wallThreadMtx);
    if (!wallThread.joinable())
        return;
    wallStop.store(true, std::memory_order_relaxed);
    wallThread.join();
    wallThread = std::thread();
}

void
TimeSeriesSampler::wallLoop(unsigned intervalMillis)
{
    const auto interval = std::chrono::milliseconds(intervalMillis);
    while (!wallStop.load(std::memory_order_relaxed)) {
        sample(ClockDomain::Wall, "wall-sampler");
        // Sleep in small slices so stopWallSampler() returns promptly
        // even with a long sampling interval.
        auto remaining = interval;
        const auto slice = std::chrono::milliseconds(10);
        while (remaining.count() > 0 &&
               !wallStop.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(std::min(remaining, slice));
            remaining -= slice;
        }
    }
}

std::vector<TimeSample>
TimeSeriesSampler::samples(ClockDomain domain) const
{
    std::lock_guard<std::mutex> lock(mtx);
    const Ring &r = ring(domain);
    return {r.samples.begin(), r.samples.end()};
}

std::uint64_t
TimeSeriesSampler::evicted(ClockDomain domain) const
{
    std::lock_guard<std::mutex> lock(mtx);
    return ring(domain).dropped;
}

std::string
TimeSeriesSampler::toCsv(const std::string &partialReason) const
{
    std::ostringstream out;
    // Classic locale: the CSV must use '.' decimal points even when
    // the host program installed a different global locale.
    out.imbue(std::locale::classic());
    if (!partialReason.empty())
        out << "# partial: " << partialReason << "\n";
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (logical.dropped > 0 || wall.dropped > 0) {
            out << strformat("# evicted: logical=%llu wall=%llu\n",
                             (unsigned long long)logical.dropped,
                             (unsigned long long)wall.dropped);
        }
    }
    CsvWriter csv(out);
    csv.writeRow(std::vector<std::string>{
        "domain", "sample", "time", "checkpoint", "metric", "value"});
    for (const ClockDomain domain :
         {ClockDomain::Logical, ClockDomain::Wall}) {
        for (const TimeSample &s : samples(domain)) {
            for (const auto &[name, value] : s.values) {
                csv.writeRow(std::vector<std::string>{
                    clockDomainName(domain),
                    strformat("%llu", (unsigned long long)s.index),
                    strformat("%llu", (unsigned long long)s.time),
                    s.checkpoint, name, jsonNumber(value)});
            }
        }
    }
    return out.str();
}

void
TimeSeriesSampler::reset()
{
    stopWallSampler();
    std::lock_guard<std::mutex> lock(mtx);
    logical = Ring{};
    wall = Ring{};
    logicalClock.store(0, std::memory_order_relaxed);
    wallEpochSet = false;
    wallEpochMicros = 0;
}

} // namespace obs
} // namespace mbs
