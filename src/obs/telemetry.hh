/**
 * @file
 * Telemetry output sink: one place that knows every export the
 * current process was asked to produce (--trace, --metrics,
 * --telemetry-out) and can write them all — including as a partial
 * flush when the process dies mid-run.
 *
 * Normal flow: the CLI calls configure() after flag parsing, runs the
 * command, then flush(). Abnormal flow: installAbnormalExitFlush()
 * registers a std::terminate handler so an uncaught exception or a
 * stray abort still emits the configured outputs, each clearly marked
 * partial (`# PARTIAL:` comment in metrics.prom / timeseries.csv, a
 * "partial" key in the metrics JSON, a `log.partial` event line, a
 * `partial` metadata entry in trace.json) instead of silently losing
 * the whole run's telemetry.
 *
 * A `--telemetry-out <dir>` directory receives the full bundle:
 *
 *   metrics.prom    Prometheus text exposition (deterministic)
 *   metrics.json    the classic snapshot JSON
 *   timeseries.csv  sampled counter series, logical + wall domains
 *   events.jsonl    the structured event log
 *   trace.json      Chrome trace-event spans (wall clock)
 */

#ifndef MBS_OBS_TELEMETRY_HH
#define MBS_OBS_TELEMETRY_HH

#include <functional>
#include <mutex>
#include <string>

namespace mbs {
namespace obs {

/** Where the process should write its telemetry, if anywhere. */
struct TelemetryConfig
{
    /** `--trace <file>`: Chrome trace-event JSON; empty = off. */
    std::string tracePath;
    /** `--metrics <file>`: snapshot JSON; empty = off. */
    std::string metricsPath;
    /** `--telemetry-out <dir>`: the full bundle; empty = off. */
    std::string telemetryDir;

    bool anyConfigured() const
    {
        return !tracePath.empty() || !metricsPath.empty() ||
            !telemetryDir.empty();
    }
};

/**
 * Install a gate consulted with each output path right before the
 * sink writes that file; returning false skips the file (the sink
 * degrades to a warning instead of dying — telemetry is never a
 * correctness dependency). An empty function clears the gate.
 *
 * This hook exists for the fault-injection layer (src/fault), which
 * sits *above* obs in the dependency order and so cannot be called
 * from here directly.
 */
void setTelemetryWriteGate(
    std::function<bool(const std::string &path)> gate);

/**
 * The process-wide telemetry sink.
 */
class TelemetrySink
{
  public:
    static TelemetrySink &instance();

    /**
     * Record what to write and enable the backing collectors: a
     * telemetry directory turns on the event log and the time-series
     * sampler (plus its background wall-clock thread) and creates
     * the directory; fatal() when it cannot be created.
     */
    void configure(const TelemetryConfig &config);

    const TelemetryConfig &config() const { return cfg; }

    /**
     * Write every configured output. An empty @p partialReason marks
     * a normal, complete export; otherwise each file carries the
     * reason as a partial marker. Repeated calls rewrite the files;
     * once a flush with a reason happened, later reasonless flushes
     * are ignored so a terminate-handler flush is never overwritten
     * by a half-finished normal path (and vice versa the normal path
     * marks the run complete before the handlers could fire).
     */
    void flush(const std::string &partialReason = "");

    /**
     * Register a std::terminate handler that flushes with a partial
     * marker before honoring the previous handler. Idempotent.
     */
    void installAbnormalExitFlush();

    /** Forget the configuration (tests). Handlers stay installed. */
    void resetForTest();

  private:
    TelemetrySink() = default;

    void writeAll(const std::string &partialReason);

    std::mutex mtx;
    TelemetryConfig cfg;
    bool flushed = false;
};

} // namespace obs
} // namespace mbs

#endif // MBS_OBS_TELEMETRY_HH
