#include "events.hh"

#include <chrono>
#include <fstream>

#include "common/logging.hh"
#include "common/strings.hh"
#include "obs/flightrec.hh"
#include "obs/json.hh"
#include "obs/thread_id.hh"

namespace mbs {
namespace obs {

namespace {

std::uint64_t
wallMicros()
{
    using namespace std::chrono;
    return std::uint64_t(duration_cast<microseconds>(
        system_clock::now().time_since_epoch()).count());
}

void
appendEventLine(std::string &out, const Event &e,
                const std::map<std::string, std::string> &common)
{
    out += strformat("{\"ts_us\": %llu, \"tid\": %d, \"type\": \"",
                     (unsigned long long)e.tsMicros, e.tid);
    out += jsonEscape(e.type) + "\"";
    for (const auto &[k, v] : common)
        out += ", \"" + jsonEscape(k) + "\": \"" + jsonEscape(v) + "\"";
    for (const auto &[k, v] : e.fields)
        out += ", \"" + jsonEscape(k) + "\": \"" + jsonEscape(v) + "\"";
    out += "}\n";
}

} // namespace

EventLog &
EventLog::instance()
{
    static EventLog log;
    return log;
}

void
EventLog::setEnabled(bool enable)
{
    on.store(enable, std::memory_order_relaxed);
}

void
EventLog::emit(const std::string &type, EventFields fields)
{
    // The flight recorder sees every emit, even while the log itself
    // is disabled — its whole point is history the normal exporters
    // were not collecting.
    FlightRecorder::instance().note('e', type);
    if (!enabled())
        return;
    Event e;
    e.type = type;
    e.tsMicros = wallMicros();
    e.tid = currentThreadId();
    e.fields = std::move(fields);
    std::lock_guard<std::mutex> lock(mtx);
    if (buffer.size() >= capacity) {
        ++droppedCount;
        return;
    }
    buffer.push_back(std::move(e));
}

void
EventLog::setCommonField(const std::string &key, const std::string &value)
{
    std::lock_guard<std::mutex> lock(mtx);
    common[key] = value;
}

std::map<std::string, std::string>
EventLog::commonFields() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return common;
}

std::vector<Event>
EventLog::events() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return buffer;
}

std::uint64_t
EventLog::dropped() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return droppedCount;
}

std::string
EventLog::exportJsonl(const std::string &partialReason) const
{
    std::vector<Event> evs;
    std::map<std::string, std::string> commonCopy;
    std::uint64_t droppedCopy = 0;
    {
        std::lock_guard<std::mutex> lock(mtx);
        evs = buffer;
        commonCopy = common;
        droppedCopy = droppedCount;
    }

    std::string out;
    if (!partialReason.empty()) {
        Event marker;
        marker.type = "log.partial";
        marker.tsMicros = wallMicros();
        marker.tid = currentThreadId();
        marker.fields = {{"reason", partialReason}};
        appendEventLine(out, marker, commonCopy);
    }
    for (const Event &e : evs)
        appendEventLine(out, e, commonCopy);
    if (droppedCopy > 0) {
        Event marker;
        marker.type = "log.dropped";
        marker.tsMicros = wallMicros();
        marker.tid = currentThreadId();
        marker.fields = {{"events", strformat(
            "%llu", (unsigned long long)droppedCopy)}};
        appendEventLine(out, marker, commonCopy);
    }
    return out;
}

void
EventLog::writeJsonl(std::ostream &out,
                     const std::string &partialReason) const
{
    out << exportJsonl(partialReason);
}

void
EventLog::writeJsonl(const std::string &path,
                     const std::string &partialReason) const
{
    std::ofstream out(path);
    fatalIf(!out, "cannot open event log output file '" + path + "'");
    writeJsonl(out, partialReason);
    out.flush();
    fatalIf(!out, "failed writing event log output file '" + path +
            "'");
}

void
EventLog::clear()
{
    std::lock_guard<std::mutex> lock(mtx);
    buffer.clear();
    common.clear();
    droppedCount = 0;
}

} // namespace obs
} // namespace mbs
