#include "json.hh"

#include <cmath>
#include <cstdio>

#include "common/strings.hh"

namespace mbs {
namespace obs {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (unsigned char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    const ScopedCLocale pin;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

} // namespace obs
} // namespace mbs
