#include "metrics.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strings.hh"
#include "obs/json.hh"

namespace mbs {
namespace obs {

Histogram::Histogram(std::vector<double> upperBounds)
    : upper(std::move(upperBounds)), counts(upper.size() + 1, 0)
{
    fatalIf(upper.empty(), "a histogram needs at least one bucket");
    fatalIf(!std::is_sorted(upper.begin(), upper.end()),
            "histogram bucket bounds must be ascending");
}

void
Histogram::observe(double value)
{
    const auto it = std::lower_bound(upper.begin(), upper.end(), value);
    const std::size_t bucket = std::size_t(it - upper.begin());
    std::lock_guard<std::mutex> lock(mtx);
    ++counts[bucket];
    total += value;
    ++n;
}

std::uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return n;
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return total;
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return counts;
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(mtx);
    std::fill(counts.begin(), counts.end(), 0);
    total = 0.0;
    n = 0;
}

double
Histogram::percentile(double p) const
{
    p = std::min(1.0, std::max(0.0, p));
    std::vector<std::uint64_t> countsCopy;
    std::uint64_t total_ = 0;
    {
        std::lock_guard<std::mutex> lock(mtx);
        countsCopy = counts;
        total_ = n;
    }
    if (total_ == 0)
        return 0.0;

    const double rank = p * double(total_);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < countsCopy.size(); ++i) {
        const std::uint64_t inBucket = countsCopy[i];
        if (inBucket == 0 || double(cumulative + inBucket) < rank) {
            cumulative += inBucket;
            continue;
        }
        // The rank lands in this bucket. The overflow bucket has no
        // finite upper edge to interpolate towards; clamp to the
        // last bound like Prometheus' histogram_quantile().
        if (i >= upper.size())
            return upper.back();
        const double hi = upper[i];
        const double lo =
            i == 0 ? std::min(0.0, hi) : upper[i - 1];
        const double fraction =
            double(rank - double(cumulative)) / double(inBucket);
        return lo + (hi - lo) * std::min(1.0, std::max(0.0, fraction));
    }
    return upper.back();
}

std::string
MetricsSnapshot::toJson(const std::string &partialReason) const
{
    std::string out = "{\n";
    if (!partialReason.empty())
        out += "  \"partial\": \"" + jsonEscape(partialReason) +
            "\",\n";
    out += "  \"metrics\": [";
    bool first = true;
    for (const auto &s : samples) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"name\": \"" + jsonEscape(s.name) + "\", ";
        switch (s.kind) {
          case MetricSample::Kind::Counter:
            out += "\"type\": \"counter\", \"value\": " +
                strformat("%llu",
                          (unsigned long long)(std::uint64_t)s.value);
            break;
          case MetricSample::Kind::Gauge:
            out += "\"type\": \"gauge\", \"value\": " +
                jsonNumber(s.value);
            break;
          case MetricSample::Kind::Histogram: {
            out += "\"type\": \"histogram\", \"count\": " +
                strformat("%llu", (unsigned long long)s.observations) +
                ", \"sum\": " + jsonNumber(s.sum) + ", \"bounds\": [";
            for (std::size_t i = 0; i < s.bucketBounds.size(); ++i)
                out += (i ? ", " : "") + jsonNumber(s.bucketBounds[i]);
            out += "], \"buckets\": [";
            for (std::size_t i = 0; i < s.bucketCounts.size(); ++i)
                out += (i ? ", " : "") +
                    strformat("%llu",
                              (unsigned long long)s.bucketCounts[i]);
            out += "]";
            break;
          }
        }
        out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

std::string
MetricsSnapshot::toText() const
{
    std::string out;
    for (const auto &s : samples) {
        switch (s.kind) {
          case MetricSample::Kind::Counter:
            out += strformat("%-48s %llu\n", s.name.c_str(),
                             (unsigned long long)(std::uint64_t)s.value);
            break;
          case MetricSample::Kind::Gauge:
            out += strformat("%-48s %.6g\n", s.name.c_str(), s.value);
            break;
          case MetricSample::Kind::Histogram:
            out += strformat("%-48s count=%llu sum=%.6g\n",
                             s.name.c_str(),
                             (unsigned long long)s.observations, s.sum);
            break;
        }
    }
    return out;
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

std::string
labeledMetric(const std::string &name, const std::string &key,
              const std::string &value)
{
    std::string escaped;
    escaped.reserve(value.size());
    for (const char c : value) {
        switch (c) {
          case '\\': escaped += "\\\\"; break;
          case '"': escaped += "\\\""; break;
          case '\n': escaped += "\\n"; break;
          default: escaped += c; break;
        }
    }
    return name + "{" + key + "=\"" + escaped + "\"}";
}

Counter &
MetricsRegistry::counter(const std::string &name, Volatility v,
                         const std::string &help)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto &entry = counters[name];
    if (!entry.instrument) {
        entry.instrument = std::make_unique<Counter>();
        entry.volatility = v;
        entry.help = help;
    }
    return *entry.instrument;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, Volatility v,
                       const std::string &help)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto &entry = gauges[name];
    if (!entry.instrument) {
        entry.instrument = std::make_unique<Gauge>();
        entry.volatility = v;
        entry.help = help;
    }
    return *entry.instrument;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> upperBounds,
                           Volatility v, const std::string &help)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto &entry = histograms[name];
    if (!entry.instrument) {
        entry.instrument =
            std::make_unique<Histogram>(std::move(upperBounds));
        entry.volatility = v;
        entry.help = help;
    }
    return *entry.instrument;
}

std::string
MetricsRegistry::helpFor(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mtx);
    if (const auto it = counters.find(name); it != counters.end())
        return it->second.help;
    if (const auto it = gauges.find(name); it != gauges.end())
        return it->second.help;
    if (const auto it = histograms.find(name); it != histograms.end())
        return it->second.help;
    return "";
}

MetricsSnapshot
MetricsRegistry::snapshot(bool includeVolatile) const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mtx);
    // The per-kind maps are already name-ordered; merging them into
    // one name-sorted vector afterwards keeps the export stable even
    // when a counter and a histogram share a prefix.
    for (const auto &[name, entry] : counters) {
        if (entry.volatility == Volatility::Volatile && !includeVolatile)
            continue;
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::Counter;
        s.value = double(entry.instrument->value());
        s.help = entry.help;
        snap.samples.push_back(std::move(s));
    }
    for (const auto &[name, entry] : gauges) {
        if (entry.volatility == Volatility::Volatile && !includeVolatile)
            continue;
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::Gauge;
        s.value = entry.instrument->value();
        s.help = entry.help;
        snap.samples.push_back(std::move(s));
    }
    for (const auto &[name, entry] : histograms) {
        if (entry.volatility == Volatility::Volatile && !includeVolatile)
            continue;
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::Histogram;
        s.bucketBounds = entry.instrument->bounds();
        s.bucketCounts = entry.instrument->bucketCounts();
        s.observations = entry.instrument->count();
        s.sum = entry.instrument->sum();
        s.help = entry.help;
        snap.samples.push_back(std::move(s));
    }
    std::sort(snap.samples.begin(), snap.samples.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mtx);
    counters.clear();
    gauges.clear();
    histograms.clear();
}

void
MetricsRegistry::zeroAll()
{
    std::lock_guard<std::mutex> lock(mtx);
    for (auto &[name, entry] : counters)
        entry.instrument->reset();
    for (auto &[name, entry] : gauges)
        entry.instrument->set(0.0);
    for (auto &[name, entry] : histograms)
        entry.instrument->reset();
}

} // namespace obs
} // namespace mbs
