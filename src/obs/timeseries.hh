/**
 * @file
 * Sampled metric time series: periodic snapshots of the registry's
 * counters and gauges into per-instrument ring buffers, in two clock
 * domains.
 *
 * The paper's entire analysis rests on counter *time series* sampled
 * at a fixed cadence; this sampler applies the same discipline to the
 * framework itself so the runtime's trajectory (store hit rate,
 * executor activity, simulated ticks retired over the run) can be
 * observed rather than inferred from end-of-run totals.
 *
 * Clock domains:
 *
 *  - **Logical** — time is the count of simulator ticks merged so
 *    far. Samples are taken only from serial checkpoints (the
 *    profiler's unit-merge loop, pipeline stage boundaries), so for a
 *    fixed seed the logical series is byte-identical across repeated
 *    runs and across any `--jobs` count, exactly like the metrics
 *    snapshot. Volatile instruments are excluded.
 *
 *  - **Wall** — time is microseconds since the sampler epoch; samples
 *    may be taken from a background thread at a fixed wall cadence
 *    and include Volatile instruments. Wall series exist for
 *    self-profiling and carry no determinism guarantee.
 *
 * Disabled (the default), sample() and advance() cost one relaxed
 * atomic load, so instrumented library code pays nothing unless a
 * tool opts in via --telemetry-out.
 */

#ifndef MBS_OBS_TIMESERIES_HH
#define MBS_OBS_TIMESERIES_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace mbs {
namespace obs {

/** Which clock stamps a sample. */
enum class ClockDomain { Logical, Wall };

/** @return "logical" or "wall". */
const char *clockDomainName(ClockDomain domain);

/** One captured sample: every instrument's value at one instant. */
struct TimeSample
{
    /** Monotone per-domain sample number (survives ring eviction). */
    std::uint64_t index = 0;
    /** Logical ticks or wall microseconds, per the domain. */
    std::uint64_t time = 0;
    /** Optional label of the checkpoint that took the sample. */
    std::string checkpoint;
    /** (instrument name, value), sorted by name. */
    std::vector<std::pair<std::string, double>> values;
};

/**
 * The process-wide sampler.
 *
 * Thread-safe; samples snapshot the MetricsRegistry under the
 * sampler's own mutex. Each domain keeps an independent ring of the
 * most recent `capacity()` samples; older samples are evicted and
 * counted so exports can report the truncation.
 */
class TimeSeriesSampler
{
  public:
    static TimeSeriesSampler &instance();

    /** Turn sampling on or off (off by default). */
    void setEnabled(bool on);
    bool enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /**
     * Advance the logical clock by @p ticks simulator ticks. Must be
     * called from serial code only (the deterministic-merge paths);
     * the clock value stamps subsequent Logical samples.
     */
    void advance(std::uint64_t ticks);

    /** @return the current logical clock value in ticks. */
    std::uint64_t logicalTicks() const
    {
        return logicalClock.load(std::memory_order_relaxed);
    }

    /**
     * Capture one sample in @p domain, labelled @p checkpoint.
     * Logical samples exclude Volatile instruments so the series
     * stays reproducible; Wall samples include everything. No-op
     * while disabled.
     */
    void sample(ClockDomain domain, const std::string &checkpoint = "");

    /**
     * Start a background thread sampling the Wall domain every
     * @p intervalMillis. No-op if already running or disabled.
     */
    void startWallSampler(unsigned intervalMillis = 100);

    /** Stop the background wall sampler, if running. */
    void stopWallSampler();

    /** Samples currently retained for @p domain, oldest first. */
    std::vector<TimeSample> samples(ClockDomain domain) const;

    /** Samples evicted from @p domain's ring so far. */
    std::uint64_t evicted(ClockDomain domain) const;

    /** Ring capacity per domain (samples retained). */
    std::size_t capacity() const { return ringCapacity; }

    /**
     * Render every retained sample as CSV with the header
     * `domain,sample,time,checkpoint,metric,value`. Logical rows come
     * first (they are the deterministic prefix golden tests compare),
     * then wall rows; within a domain rows are ordered by sample
     * index then instrument name. @p partialReason, when non-empty,
     * adds a leading `# partial: ...` marker line.
     */
    std::string toCsv(const std::string &partialReason = "") const;

    /** Drop all samples, reset both clocks and the eviction counts. */
    void reset();

  private:
    TimeSeriesSampler() = default;
    /**
     * Join the wall thread at static destruction: a partial flush
     * deliberately leaves it running (the flushing thread may *be*
     * the sampler), and a joinable std::thread must not be destroyed.
     */
    ~TimeSeriesSampler() { stopWallSampler(); }

    struct Ring
    {
        std::deque<TimeSample> samples;
        std::uint64_t nextIndex = 0;
        std::uint64_t dropped = 0;
    };

    Ring &ring(ClockDomain domain)
    {
        return domain == ClockDomain::Logical ? logical : wall;
    }
    const Ring &ring(ClockDomain domain) const
    {
        return domain == ClockDomain::Logical ? logical : wall;
    }

    void wallLoop(unsigned intervalMillis);

    std::atomic<bool> on{false};
    std::atomic<std::uint64_t> logicalClock{0};

    mutable std::mutex mtx;
    Ring logical;
    Ring wall;
    std::size_t ringCapacity = 4096;
    std::uint64_t wallEpochMicros = 0;
    bool wallEpochSet = false;

    std::thread wallThread;
    std::atomic<bool> wallStop{false};
    std::mutex wallThreadMtx;
};

} // namespace obs
} // namespace mbs

#endif // MBS_OBS_TIMESERIES_HH
