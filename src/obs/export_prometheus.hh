/**
 * @file
 * Prometheus text exposition (version 0.0.4) of a metrics snapshot.
 *
 * Renders the registry's counters, gauges and histograms in the
 * format promtool and every Prometheus scraper understand:
 *
 *   # TYPE sim_ticks counter
 *   sim_ticks 131072
 *   # TYPE sim_phase_ticks histogram
 *   sim_phase_ticks_bucket{le="1"} 0
 *   ...
 *   sim_phase_ticks_bucket{le="+Inf"} 42
 *   sim_phase_ticks_sum 12345
 *   sim_phase_ticks_count 42
 *
 * Instrument names pass through sanitizePrometheusName() (dots become
 * underscores, invalid characters are replaced), histogram buckets
 * are emitted *cumulatively* with the mandatory `+Inf` bound, and no
 * timestamps are attached. Names composed with obs::labeledMetric()
 * carry a `{key="value"}` block; the exporter splits it off, emits
 * HELP/TYPE once per family, and merges histogram `le` labels into
 * the block — so an exposition built from a
 * deterministic snapshot is itself byte-identical across runs.
 */

#ifndef MBS_OBS_EXPORT_PROMETHEUS_HH
#define MBS_OBS_EXPORT_PROMETHEUS_HH

#include <string>

namespace mbs {
namespace obs {

struct MetricsSnapshot;

/**
 * Map an instrument name onto the Prometheus metric-name grammar
 * `[a-zA-Z_:][a-zA-Z0-9_:]*`: every invalid character becomes '_',
 * and a leading digit gains a '_' prefix. Empty names become "_".
 */
std::string sanitizePrometheusName(const std::string &name);

/**
 * Render @p snapshot as Prometheus text exposition format 0.0.4.
 * A non-empty @p partialReason prepends a comment marking the file
 * as a partial flush from an abnormal exit.
 */
std::string toPrometheusText(const MetricsSnapshot &snapshot,
                             const std::string &partialReason = "");

} // namespace obs
} // namespace mbs

#endif // MBS_OBS_EXPORT_PROMETHEUS_HH
