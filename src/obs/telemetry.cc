#include "telemetry.hh"

#include <exception>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"
#include "obs/events.hh"
#include "obs/export_prometheus.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"

namespace mbs {
namespace obs {

namespace {

namespace fs = std::filesystem;

std::terminate_handler previousTerminateHandler = nullptr;

[[noreturn]] void
terminateWithFlush()
{
    // Best effort: the process is dying anyway, so a second failure
    // while flushing must not mask the original reason.
    try {
        TelemetrySink::instance().flush("std::terminate called");
    } catch (...) {
    }
    if (previousTerminateHandler)
        previousTerminateHandler();
    std::abort();
}

void
writeTextFile(const fs::path &path, const std::string &content)
{
    std::ofstream out(path);
    fatalIf(!out, "cannot open telemetry output file '" +
            path.string() + "'");
    out << content;
    out.flush();
    fatalIf(!out, "failed writing telemetry output file '" +
            path.string() + "'");
}

} // namespace

TelemetrySink &
TelemetrySink::instance()
{
    static TelemetrySink sink;
    return sink;
}

void
TelemetrySink::configure(const TelemetryConfig &config)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        cfg = config;
        flushed = false;
    }
    if (!config.telemetryDir.empty()) {
        std::error_code ec;
        fs::create_directories(config.telemetryDir, ec);
        fatalIf(bool(ec), "cannot create telemetry output directory '" +
                config.telemetryDir + "': " + ec.message());
        EventLog::instance().setEnabled(true);
        auto &sampler = TimeSeriesSampler::instance();
        sampler.setEnabled(true);
        sampler.startWallSampler();
    }
}

void
TelemetrySink::flush(const std::string &partialReason)
{
    TelemetryConfig configCopy;
    {
        std::lock_guard<std::mutex> lock(mtx);
        // First flush wins: a partial flush from the terminate
        // handler must not be overwritten by a half-finished normal
        // path, and a completed normal flush must not be downgraded
        // to partial by a later crash during cleanup.
        if (flushed)
            return;
        flushed = true;
        configCopy = cfg;
    }
    if (!configCopy.anyConfigured())
        return;

    auto &sampler = TimeSeriesSampler::instance();
    if (partialReason.empty()) {
        // Normal exit: stop the wall sampler so the files are final.
        // A terminate-handler flush skips the join — the dying thread
        // may *be* the sampler thread, and a buffered copy is enough.
        sampler.stopWallSampler();
    }

    if (!configCopy.tracePath.empty()) {
        if (!partialReason.empty())
            Tracer::instance().metadata("partial", partialReason);
        Tracer::instance().writeJson(configCopy.tracePath);
    }
    if (!configCopy.metricsPath.empty()) {
        writeTextFile(configCopy.metricsPath,
                      MetricsRegistry::instance().snapshot()
                          .toJson(partialReason));
    }
    if (!configCopy.telemetryDir.empty()) {
        const fs::path dir(configCopy.telemetryDir);
        const MetricsSnapshot snap =
            MetricsRegistry::instance().snapshot();
        writeTextFile(dir / "metrics.prom",
                      toPrometheusText(snap, partialReason));
        writeTextFile(dir / "metrics.json", snap.toJson(partialReason));
        writeTextFile(dir / "timeseries.csv",
                      sampler.toCsv(partialReason));
        EventLog::instance().writeJsonl((dir / "events.jsonl").string(),
                                        partialReason);
        if (!partialReason.empty())
            Tracer::instance().metadata("partial", partialReason);
        Tracer::instance().writeJson((dir / "trace.json").string());
    }
}

void
TelemetrySink::installAbnormalExitFlush()
{
    static std::once_flag once;
    std::call_once(once, []() {
        previousTerminateHandler =
            std::set_terminate(terminateWithFlush);
    });
}

void
TelemetrySink::resetForTest()
{
    std::lock_guard<std::mutex> lock(mtx);
    cfg = TelemetryConfig{};
    flushed = false;
}

} // namespace obs
} // namespace mbs
