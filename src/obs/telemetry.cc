#include "telemetry.hh"

#include <exception>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"
#include "obs/events.hh"
#include "obs/export_prometheus.hh"
#include "obs/flightrec.hh"
#include "obs/metrics.hh"
#include "obs/selfprof.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"

namespace mbs {
namespace obs {

namespace {

namespace fs = std::filesystem;

std::terminate_handler previousTerminateHandler = nullptr;

[[noreturn]] void
terminateWithFlush()
{
    // Best effort: the process is dying anyway, so a second failure
    // while flushing must not mask the original reason.
    try {
        TelemetrySink::instance().flush("std::terminate called");
    } catch (...) {
    }
    if (previousTerminateHandler)
        previousTerminateHandler();
    std::abort();
}

std::mutex gateMtx;
std::function<bool(const std::string &)> writeGate;

/** Consult the installed write gate, if any, for @p path. */
bool
gateAllows(const std::string &path)
{
    std::function<bool(const std::string &)> gate;
    {
        std::lock_guard<std::mutex> lock(gateMtx);
        gate = writeGate;
    }
    return !gate || gate(path);
}

/**
 * Write one telemetry file, degrading to a warning on failure:
 * losing an export must never take down the run that produced it.
 */
void
writeTextFile(const fs::path &path, const std::string &content)
{
    if (!gateAllows(path.string())) {
        warn("skipping telemetry output '" + path.string() +
             "' (write gate)");
        return;
    }
    std::ofstream out(path);
    if (!out) {
        warn("cannot open telemetry output file '" + path.string() +
             "' (continuing without it)");
        return;
    }
    out << content;
    out.flush();
    if (!out) {
        warn("failed writing telemetry output file '" +
             path.string() + "'");
    }
}

} // namespace

void
setTelemetryWriteGate(
    std::function<bool(const std::string &path)> gate)
{
    std::lock_guard<std::mutex> lock(gateMtx);
    writeGate = std::move(gate);
}

TelemetrySink &
TelemetrySink::instance()
{
    static TelemetrySink sink;
    return sink;
}

void
TelemetrySink::configure(const TelemetryConfig &config)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        cfg = config;
        flushed = false;
    }
    if (!config.telemetryDir.empty()) {
        std::error_code ec;
        fs::create_directories(config.telemetryDir, ec);
        fatalIf(bool(ec), "cannot create telemetry output directory '" +
                config.telemetryDir + "': " + ec.message());
        EventLog::instance().setEnabled(true);
        auto &sampler = TimeSeriesSampler::instance();
        sampler.setEnabled(true);
        sampler.startWallSampler();
    }
}

void
TelemetrySink::flush(const std::string &partialReason)
{
    TelemetryConfig configCopy;
    {
        std::lock_guard<std::mutex> lock(mtx);
        // First flush wins: a partial flush from the terminate
        // handler must not be overwritten by a half-finished normal
        // path, and a completed normal flush must not be downgraded
        // to partial by a later crash during cleanup.
        if (flushed)
            return;
        flushed = true;
        configCopy = cfg;
    }
    if (!configCopy.anyConfigured())
        return;

    auto &sampler = TimeSeriesSampler::instance();
    if (partialReason.empty()) {
        // Normal exit: stop the wall sampler so the files are final.
        // A terminate-handler flush skips the join — the dying thread
        // may *be* the sampler thread, and a buffered copy is enough.
        sampler.stopWallSampler();
    }

    if (!configCopy.tracePath.empty() &&
        gateAllows(configCopy.tracePath)) {
        if (!partialReason.empty())
            Tracer::instance().metadata("partial", partialReason);
        Tracer::instance().writeJson(configCopy.tracePath);
    }
    if (!configCopy.metricsPath.empty()) {
        writeTextFile(configCopy.metricsPath,
                      MetricsRegistry::instance().snapshot()
                          .toJson(partialReason));
    }
    if (!configCopy.telemetryDir.empty()) {
        const fs::path dir(configCopy.telemetryDir);
        const MetricsSnapshot snap =
            MetricsRegistry::instance().snapshot();
        writeTextFile(dir / "metrics.prom",
                      toPrometheusText(snap, partialReason));
        writeTextFile(dir / "metrics.json", snap.toJson(partialReason));
        writeTextFile(dir / "timeseries.csv",
                      sampler.toCsv(partialReason));
        const std::string eventsPath =
            (dir / "events.jsonl").string();
        if (gateAllows(eventsPath))
            EventLog::instance().writeJsonl(eventsPath,
                                            partialReason);
        const std::string tracePath = (dir / "trace.json").string();
        if (gateAllows(tracePath)) {
            if (!partialReason.empty())
                Tracer::instance().metadata("partial",
                                            partialReason);
            Tracer::instance().writeJson(tracePath);
        }
        // Self-profiler artifacts are wall-clock (Volatile-class)
        // and only appear when --self-profile armed the sampler, so
        // deterministic byte-identity goldens never see them.
        const SelfProfile prof = SelfProfiler::instance().profile();
        if (prof.totalSamples > 0) {
            writeTextFile(dir / "profile.collapsed",
                          prof.collapsedText());
            writeTextFile(dir / "profile.txt", prof.tableText());
        }
        // A partial flush means the process is dying abnormally
        // (std::terminate) — exactly when the flight recorder's
        // recent-history rings earn their keep. Normal exits skip
        // the dump so deterministic bundles stay byte-identical.
        if (!partialReason.empty() &&
            FlightRecorder::instance().armed() &&
            gateAllows((dir / "flightrec.jsonl").string())) {
            writeTextFile(dir / "flightrec.jsonl",
                          FlightRecorder::instance().dumpJsonl());
        }
    }
}

void
TelemetrySink::installAbnormalExitFlush()
{
    static std::once_flag once;
    std::call_once(once, []() {
        previousTerminateHandler =
            std::set_terminate(terminateWithFlush);
    });
}

void
TelemetrySink::resetForTest()
{
    std::lock_guard<std::mutex> lock(mtx);
    cfg = TelemetryConfig{};
    flushed = false;
}

} // namespace obs
} // namespace mbs
