/**
 * @file
 * Lightweight progress reporting for long-running commands.
 *
 * The profiler ticks the meter once per benchmark it processes; the
 * CLI enables it behind `--progress`. Disabled (the default) every
 * call is a single relaxed atomic load, so library users pay nothing.
 * Lines go to stderr so they never corrupt machine-readable stdout
 * output (CSV, tables).
 *
 * When stderr is a terminal the meter redraws one line in place
 * (`\r`); when it is a pipe or a CI log file it degrades to one line
 * per update so captured logs stay grep-able instead of accumulating
 * carriage-return redraw garbage.
 */

#ifndef MBS_OBS_PROGRESS_HH
#define MBS_OBS_PROGRESS_HH

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>

namespace mbs {
namespace obs {

/**
 * The process-wide progress meter.
 */
class Progress
{
  public:
    /** How updates are rendered. */
    enum class Mode {
        Auto,  ///< Tty when the sink isatty(), Lines otherwise.
        Tty,   ///< In-place `\r` redraw of a single line.
        Lines, ///< One full line per update (CI logs, pipes).
    };

    static Progress &instance();

    /** Turn reporting on or off (off by default). */
    void setEnabled(bool on);
    bool enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /**
     * Force a rendering mode (tests, or `--progress` on a captured
     * terminal). The default Auto probes the sink with isatty() at
     * each begin().
     */
    void setMode(Mode m);

    /**
     * Redirect output to @p f (tests). nullptr restores stderr.
     * The caller keeps ownership of the stream.
     */
    void setSinkForTest(std::FILE *f);

    /**
     * Route updates to @p fn(done, total, label) instead of the
     * stderr meter. A serve job has no terminal — its progress
     * travels to the submitting client as protocol frames — and a
     * TTY escape-code meter would only pollute the daemon's log, so
     * while a listener is installed nothing is printed and the
     * meter counts regardless of setEnabled(). nullptr restores
     * normal stderr rendering.
     */
    void setListener(
        std::function<void(std::size_t done, std::size_t total,
                           const std::string &label)> fn);

    /** The mode begin() resolved for the current phase. */
    Mode activeMode();

    /**
     * Start a new phase of @p total steps labelled @p label.
     * Resets the step counter; total 0 means "unknown".
     */
    void begin(std::size_t total, const std::string &label);

    /** Report one completed step; prints "[k/total] label". */
    void step(const std::string &label);

    /** Close the current phase. */
    void finish();

  private:
    Progress() = default;

    std::FILE *sink();
    bool sinkIsTty();
    /** Render one update under both mutexes (caller holds `mtx`). */
    void render(const std::string &line, bool finalLine);

    std::atomic<bool> on{false};
    /** Fast-path flag for the listener (checked before `mtx`). */
    std::atomic<bool> listening{false};
    std::function<void(std::size_t, std::size_t, const std::string &)>
        listener;
    std::mutex mtx;
    std::size_t total = 0;
    std::size_t done = 0;
    Mode mode = Mode::Auto;
    Mode resolved = Mode::Lines;
    /** Width of the last `\r`-drawn line, for blank-out padding. */
    std::size_t lastWidth = 0;
    std::FILE *testSink = nullptr;
};

} // namespace obs
} // namespace mbs

#endif // MBS_OBS_PROGRESS_HH
