/**
 * @file
 * Lightweight progress reporting for long-running commands.
 *
 * The profiler ticks the meter once per benchmark it processes; the
 * CLI enables it behind `--progress`. Disabled (the default) every
 * call is a single relaxed atomic load, so library users pay nothing.
 * Lines go to stderr so they never corrupt machine-readable stdout
 * output (CSV, tables).
 */

#ifndef MBS_OBS_PROGRESS_HH
#define MBS_OBS_PROGRESS_HH

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>

namespace mbs {
namespace obs {

/**
 * The process-wide progress meter.
 */
class Progress
{
  public:
    static Progress &instance();

    /** Turn reporting on or off (off by default). */
    void setEnabled(bool on);
    bool enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /**
     * Start a new phase of @p total steps labelled @p label.
     * Resets the step counter; total 0 means "unknown".
     */
    void begin(std::size_t total, const std::string &label);

    /** Report one completed step; prints "[k/total] label". */
    void step(const std::string &label);

    /** Close the current phase. */
    void finish();

  private:
    Progress() = default;

    std::atomic<bool> on{false};
    std::mutex mtx;
    std::size_t total = 0;
    std::size_t done = 0;
};

} // namespace obs
} // namespace mbs

#endif // MBS_OBS_PROGRESS_HH
