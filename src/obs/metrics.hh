/**
 * @file
 * Process-wide metrics registry: named counters, gauges and
 * fixed-bucket histograms with a deterministic snapshot exporter.
 *
 * The registry is the quantitative half of the observability layer
 * (the tracer in obs/trace.hh is the temporal half). Instruments are
 * created on first use and live for the lifetime of the process, so
 * hot paths can cache a reference once and update it lock-free:
 *
 * @code
 *   auto &ticks = obs::MetricsRegistry::instance().counter("sim.ticks");
 *   for (...) ticks.add();
 * @endcode
 *
 * Snapshots order instruments by name, so two runs that produce the
 * same values produce byte-identical exports. Instruments carrying
 * wall-clock measurements should be registered Volatile; they are
 * excluded from snapshots by default so exported files stay
 * deterministic under a fixed seed.
 */

#ifndef MBS_OBS_METRICS_HH
#define MBS_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mbs {
namespace obs {

/**
 * Whether an instrument's value is reproducible under a fixed seed
 * (Stable) or depends on wall-clock timing (Volatile).
 */
enum class Volatility { Stable, Volatile };

/** A monotonically increasing event count. */
class Counter
{
  public:
    /** Add @p n events (relaxed atomic; safe from any thread). */
    void add(std::uint64_t n = 1)
    {
        count.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return count.load(std::memory_order_relaxed);
    }

    /** Reset to zero (tests and golden comparisons only). */
    void reset()
    {
        count.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> count{0};
};

/** A last-value-wins measurement. */
class Gauge
{
  public:
    void set(double v) { val.store(v, std::memory_order_relaxed); }
    double value() const { return val.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> val{0.0};
};

/**
 * A fixed-bucket histogram: upper bounds are set at creation and an
 * implicit overflow bucket catches everything above the last bound.
 */
class Histogram
{
  public:
    /** @param upperBounds Inclusive bucket upper bounds, ascending. */
    explicit Histogram(std::vector<double> upperBounds);

    /** Record one observation. */
    void observe(double value);

    /** Zero all buckets, the sum and the count (tests only). */
    void reset();

    std::uint64_t count() const;
    double sum() const;
    /** Per-bucket counts; one extra entry for the overflow bucket. */
    std::vector<std::uint64_t> bucketCounts() const;
    const std::vector<double> &bounds() const { return upper; }

    /**
     * Estimate the @p p quantile (p in [0, 1]) by cumulative-bucket
     * linear interpolation, the same estimate Prometheus'
     * histogram_quantile() computes from the exported buckets. The
     * first bucket interpolates from 0 (or from the bound itself when
     * it is negative); ranks landing in the overflow bucket clamp to
     * the last finite bound. Returns 0 with no observations.
     */
    double percentile(double p) const;

  private:
    mutable std::mutex mtx;
    std::vector<double> upper;
    std::vector<std::uint64_t> counts; // upper.size() + 1 entries
    double total = 0.0;
    std::uint64_t n = 0;
};

/** One instrument's value, as captured by snapshot(). */
struct MetricSample
{
    std::string name;
    enum class Kind { Counter, Gauge, Histogram } kind;
    /** Counter value (Counter) or gauge value (Gauge). */
    double value = 0.0;
    /** Histogram payload; empty for scalar instruments. */
    std::vector<double> bucketBounds;
    std::vector<std::uint64_t> bucketCounts;
    std::uint64_t observations = 0;
    double sum = 0.0;
    /** Registration-site description; empty when none was given. */
    std::string help;
};

/** A point-in-time capture of every (selected) instrument. */
struct MetricsSnapshot
{
    /** Samples sorted by instrument name. */
    std::vector<MetricSample> samples;

    /**
     * Deterministic JSON document (sorted keys, fixed formats). A
     * non-empty @p partialReason adds a leading "partial" key marking
     * the document as a partial flush from an abnormal exit.
     */
    std::string toJson(const std::string &partialReason = "") const;
    /** Deterministic human-readable listing, one line per metric. */
    std::string toText() const;
};

/**
 * An instrument registry.
 *
 * Thread-safe: instrument lookup takes a mutex, but the returned
 * references are stable for the registry lifetime, so steady-state
 * updates are lock-free (counters/gauges) or per-instrument
 * (histograms).
 *
 * Most code uses the process-wide instance(); that registry is reset
 * per job by the serve daemon so job exports stay byte-identical to
 * one-shot runs. Subsystems whose metrics must *survive* that reset
 * (the daemon's own admission counters, for example) construct their
 * own registry instead — see serve/daemon_metrics.hh.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    static MetricsRegistry &instance();

    /**
     * Find or create the counter named @p name. @p help, when
     * non-empty, becomes the instrument's description (exported as a
     * `# HELP` line); it applies on creation only.
     */
    Counter &counter(const std::string &name,
                     Volatility v = Volatility::Stable,
                     const std::string &help = "");

    /** Find or create the gauge named @p name. */
    Gauge &gauge(const std::string &name,
                 Volatility v = Volatility::Stable,
                 const std::string &help = "");

    /**
     * Find or create a histogram. @p upperBounds and @p help apply
     * only on creation; later calls return the existing instrument.
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> upperBounds,
                         Volatility v = Volatility::Stable,
                         const std::string &help = "");

    /** The help text registered for @p name ("" when none). */
    std::string helpFor(const std::string &name) const;

    /**
     * Capture all instruments, sorted by name. Volatile instruments
     * (wall-clock measurements) are excluded unless requested so the
     * export is reproducible under a fixed seed.
     */
    MetricsSnapshot snapshot(bool includeVolatile = false) const;

    /** Drop every instrument (intended for tests). */
    void reset();

    /**
     * Zero every instrument's value while keeping the instruments —
     * and every cached reference to them — alive. Used by golden
     * tests that compare exports across repeated in-process runs.
     */
    void zeroAll();

  private:
    template <typename T>
    struct Entry
    {
        std::unique_ptr<T> instrument;
        Volatility volatility = Volatility::Stable;
        std::string help;
    };

    mutable std::mutex mtx;
    std::map<std::string, Entry<Counter>> counters;
    std::map<std::string, Entry<Gauge>> gauges;
    std::map<std::string, Entry<Histogram>> histograms;
};

/**
 * Compose a labeled instrument name: `name{key="value"}`. The label
 * block rides inside the registry name; the Prometheus exporter
 * splits it back out so `serve.jobs_accepted{tenant="a"}` renders as
 * the `serve_jobs_accepted` family with a `tenant` label. The value
 * is escaped per the exposition format (backslash, quote, newline).
 */
std::string labeledMetric(const std::string &name,
                          const std::string &key,
                          const std::string &value);

} // namespace obs
} // namespace mbs

#endif // MBS_OBS_METRICS_HH
