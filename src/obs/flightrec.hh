/**
 * @file
 * Always-on flight recorder: the last ~4k observability events, kept
 * in fixed-size per-thread ring buffers so a post-mortem of a crashed
 * or wedged process starts from *recent history* instead of nothing.
 *
 * Unlike the tracer (unbounded buffer, cleared per job) and the event
 * log (per-job, flushed to artifacts), the recorder is process-wide
 * and survives the serve daemon's per-job observability reset. Every
 * ScopedSpan begin/end and EventLog emit drops one entry into the
 * calling thread's ring; when the process dies — std::terminate, a
 * fatal signal, or a job ending failed — the rings are dumped as
 * `flightrec.jsonl` with per-thread sequence numbers and drop counts.
 *
 * Cost model: one relaxed atomic load when disarmed; when armed, one
 * timestamp read plus a bounded memcpy into a preallocated slot — no
 * locks, no allocation, single writer per ring. The dump path has an
 * async-signal-safe variant (dumpToFd) that formats with hand-rolled
 * integer conversion and write(2) only, so the fatal-signal handler
 * in obs/signals can use it.
 *
 * Torn entries: a dump may race a thread still writing (crash dumps
 * always do). Each slot carries a stamp published after the payload;
 * the dump skips slots whose stamp does not match the expected
 * sequence number, so a half-written entry is dropped rather than
 * emitted garbled.
 */

#ifndef MBS_OBS_FLIGHTREC_HH
#define MBS_OBS_FLIGHTREC_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mbs {
namespace obs {

class FlightRecorder
{
  public:
    /** Entries retained per thread (8 threads ≈ the "last ~4k"). */
    static constexpr std::size_t kRingEntries = 512;
    /** Fixed name capacity (truncating, NUL-terminated). */
    static constexpr std::size_t kNameBytes = 48;
    /** Registration slots; threads beyond this record nothing. */
    static constexpr std::size_t kMaxThreads = 256;

    static FlightRecorder &instance();

    /** Start recording (idempotent; the CLI arms once at startup). */
    void arm();
    /** Stop recording; rings keep their contents. */
    void disarm();
    bool armed() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /**
     * Record one entry on the calling thread's ring. @p kind is 'B'
     * (span begin), 'E' (span end) or 'e' (event-log emit). Cheap
     * no-op while disarmed.
     */
    void note(char kind, const std::string &name)
    {
        if (armed())
            record(kind, name.data(), name.size());
    }

    /** The jsonl dump (header + per-thread stats + entries). */
    std::string dumpJsonl() const;

    /**
     * Write dumpJsonl() to @p path, creating parent directories.
     * Best-effort: returns false instead of throwing, because every
     * caller is already on a failure path.
     */
    bool dumpToFile(const std::string &path) const;

    /**
     * Async-signal-safe dump: formats into a stack buffer and emits
     * with write(2) only. Byte-identical to dumpJsonl().
     */
    void dumpToFd(int fd) const;

    /** Per-thread written/dropped totals (tests and diagnostics). */
    struct ThreadStats
    {
        int tid = 0;
        std::uint64_t written = 0;
        std::uint64_t dropped = 0;
    };
    std::vector<ThreadStats> threadStats() const;

    /**
     * Disarm and detach every ring so the next note() starts clean.
     * Old rings stay owned (never freed) — a concurrently-exiting
     * writer or an in-flight dump may still touch them.
     */
    void resetForTest();

  private:
    struct Entry
    {
        /** seq + 1 once the payload below is complete; 0 = torn. */
        std::atomic<std::uint64_t> stamp{0};
        std::uint64_t tsMicros = 0;
        char kind = 0;
        char name[kNameBytes] = {};
    };

    struct Ring
    {
        int tid = 0;
        /** Next sequence number this ring's owner will write. */
        std::atomic<std::uint64_t> head{0};
        Entry entries[kRingEntries];
    };

    FlightRecorder() = default;

    Ring *myRing();
    void record(char kind, const char *name, std::size_t len);
    /** The one formatting core both dump paths share. */
    void dumpTo(void (*sink)(void *, const char *, std::size_t),
                void *ctx) const;

    std::atomic<bool> on{false};
    /** Bumped by resetForTest() to invalidate cached registrations. */
    std::atomic<std::uint64_t> generation{1};
    /** Raw slots iterated lock-free by the signal-context dump. */
    std::atomic<std::size_t> ringCount{0};
    Ring *rings[kMaxThreads] = {};
    /** Lifetime anchor: rings are reachable here forever, so a reset
     *  never frees memory another thread may still be writing. */
    mutable std::mutex mtx;
    std::vector<std::unique_ptr<Ring>> keepAlive;
};

} // namespace obs
} // namespace mbs

#endif // MBS_OBS_FLIGHTREC_HH
