#include "spec/spec.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/digest.hh"
#include "common/json_parse.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/strings.hh"
#include "workload/loader.hh"
#include "workload/suite_builder.hh"

namespace mbs {
namespace spec {

namespace {

using Kwargs = std::vector<std::pair<std::string, std::string>>;

/** Upper bound on repeat counts and mix sizes: spec bodies arrive
 *  over the serve socket, so expansion must stay bounded. */
constexpr int kMaxExpansion = 1000;

/**
 * One compilation pass over a parsed document. Every diagnostic is a
 * `<file>:<line>:<col>: message` FatalError anchored at the JSON
 * node that caused it.
 */
class Compiler
{
  public:
    Compiler(const JsonValue &doc_, std::string file_)
        : doc(doc_), file(std::move(file_))
    {
    }

    WorkloadSpec compile();

  private:
    std::string
    where(const JsonValue &node) const
    {
        return strformat("%s:%zu:%zu: ", file.c_str(), node.line,
                         node.column);
    }

    [[noreturn]] void
    fail(const JsonValue &node, const std::string &what) const
    {
        fatal(where(node) + what);
    }

    const JsonValue &
    asObject(const JsonValue &node, const std::string &what) const
    {
        if (!node.isObject())
            fail(node, what + " must be an object");
        return node;
    }

    const JsonValue &
    asArray(const JsonValue &node, const std::string &what) const
    {
        if (!node.isArray())
            fail(node, what + " must be an array");
        return node;
    }

    std::string
    asString(const JsonValue &node, const std::string &what) const
    {
        if (!node.isString())
            fail(node, what + " must be a string");
        return node.str;
    }

    double
    asNumber(const JsonValue &node, const std::string &what) const
    {
        if (!node.isNumber())
            fail(node, what + " must be a number");
        return node.number;
    }

    bool
    asBool(const JsonValue &node, const std::string &what) const
    {
        if (!node.isBool())
            fail(node, what + " must be a boolean");
        return node.boolean;
    }

    int
    asCount(const JsonValue &node, const std::string &what) const
    {
        const double n = asNumber(node, what);
        if (n < 1.0 || n > double(kMaxExpansion) ||
            n != std::floor(n)) {
            fail(node, strformat("%s must be an integer in [1, %d]",
                                 what.c_str(), kMaxExpansion));
        }
        return int(n);
    }

    const JsonValue &
    required(const JsonValue &obj, const std::string &key,
             const std::string &ctx) const
    {
        const JsonValue *v = obj.find(key);
        if (v == nullptr)
            fail(obj, ctx + " is missing required key '" + key + "'");
        return *v;
    }

    /** Reject unknown keys so typos surface instead of silently
     *  compiling to defaults (versioning rule: new keys need a new
     *  spec_version). */
    void
    checkKeys(const JsonValue &obj,
              std::initializer_list<const char *> allowed,
              const std::string &ctx) const
    {
        for (const auto &[key, value] : obj.object) {
            bool known = false;
            for (const char *a : allowed)
                known = known || key == a;
            if (!known)
                fail(value, "unknown key '" + key + "' in " + ctx);
        }
    }

    std::string scalarString(const JsonValue &node) const;
    Kwargs kwargsFrom(const JsonValue &obj) const;
    PhaseDemand demandFrom(const JsonValue &obj) const;
    Phase kernelPhase(const JsonValue &entry) const;
    Phase demandPhase(const JsonValue &entry) const;
    void appendEntry(const JsonValue &entry, std::vector<Phase> &out,
                     bool allow_template, bool allow_mix) const;
    std::vector<Phase> phaseList(const JsonValue &entries,
                                 bool allow_template,
                                 bool allow_mix) const;
    Suite compileSuite(const JsonValue &node,
                       std::set<std::string> &unitNames) const;

    const JsonValue &doc;
    std::string file;
    const JsonValue *params = nullptr;
    const JsonValue *templates = nullptr;
};

std::string
Compiler::scalarString(const JsonValue &node) const
{
    switch (node.type) {
      case JsonValue::Type::String:
        return node.str;
      case JsonValue::Type::Number:
        // %.17g round-trips doubles exactly through strtod, which is
        // what keeps export -> re-parse -> compile digest-stable.
        return strformat("%.17g", node.number);
      case JsonValue::Type::Bool:
        return node.boolean ? "true" : "false";
      default:
        fail(node, "keyword value must be a string, number or "
                   "boolean");
    }
}

Kwargs
Compiler::kwargsFrom(const JsonValue &obj) const
{
    Kwargs out;
    for (const auto &[key, value] : obj.object)
        out.emplace_back(key, scalarString(value));
    return out;
}

Phase
Compiler::kernelPhase(const JsonValue &entry) const
{
    checkKeys(entry,
              {"name", "kernel", "duration", "instructions", "params",
               "args"},
              "kernel phase");
    const std::string name =
        asString(required(entry, "name", "kernel phase"),
                 "phase 'name'");
    const JsonValue &kernelNode =
        required(entry, "kernel", "kernel phase");
    const std::string kernel = asString(kernelNode, "phase 'kernel'");
    const JsonValue &durationNode =
        required(entry, "duration", "kernel phase");
    const double duration =
        asNumber(durationNode, "phase 'duration'");
    if (duration <= 0.0)
        fail(durationNode, "phase duration must be positive");
    const JsonValue &instructionsNode =
        required(entry, "instructions", "kernel phase");
    const double instructions =
        asNumber(instructionsNode, "phase 'instructions'");
    if (instructions < 0.0)
        fail(instructionsNode,
             "phase instruction budget must be non-negative");

    Kwargs kwargs;
    if (const JsonValue *ref = entry.find("params")) {
        const std::string setName =
            asString(*ref, "phase 'params'");
        const JsonValue *set =
            params != nullptr ? params->find(setName) : nullptr;
        if (set == nullptr)
            fail(*ref, "unknown parameter set '" + setName + "'");
        kwargs = kwargsFrom(asObject(*set, "parameter set '" +
                                               setName + "'"));
    }
    if (const JsonValue *args = entry.find("args")) {
        for (auto &[key, value] :
             asObject(*args, "phase 'args'").object) {
            const std::string text = scalarString(value);
            bool replaced = false;
            for (auto &kw : kwargs) {
                if (kw.first == key) {
                    kw.second = text;
                    replaced = true;
                }
            }
            if (!replaced)
                kwargs.emplace_back(key, text);
        }
    }

    PhaseDemand demand;
    try {
        demand = makeKernelDemand(kernel, kwargs);
    } catch (const FatalError &e) {
        fail(kernelNode, e.what());
    }
    return makePhase(name, kernel, std::move(demand), duration,
                     instructions);
}

PhaseDemand
Compiler::demandFrom(const JsonValue &obj) const
{
    asObject(obj, "phase 'demand'");
    checkKeys(obj, {"threads", "cpu", "gpu", "aie", "memory",
                    "storage"},
              "demand bundle");
    PhaseDemand d;
    if (const JsonValue *threads = obj.find("threads")) {
        for (const JsonValue &group :
             asArray(*threads, "'threads'").array) {
            asObject(group, "thread group");
            checkKeys(group, {"count", "intensity"}, "thread group");
            ThreadDemand t;
            t.count = asCount(required(group, "count",
                                       "thread group"),
                              "thread 'count'");
            t.intensity = asNumber(required(group, "intensity",
                                            "thread group"),
                                   "thread 'intensity'");
            d.threads.push_back(t);
        }
    }
    const auto numberOr = [this](const JsonValue &node,
                                 const char *key, double fallback) {
        const JsonValue *v = node.find(key);
        return v != nullptr
            ? asNumber(*v, std::string("'") + key + "'")
            : fallback;
    };
    const auto bytesOr = [this, &numberOr](const JsonValue &node,
                                           const char *key,
                                           std::uint64_t fallback) {
        const JsonValue *v = node.find(key);
        if (v == nullptr)
            return fallback;
        const double n = asNumber(*v, std::string("'") + key + "'");
        if (n < 0.0 || n != std::floor(n))
            fail(*v, std::string("'") + key +
                         "' must be a non-negative integer");
        return std::uint64_t(n);
    };
    if (const JsonValue *cpu = obj.find("cpu")) {
        asObject(*cpu, "'cpu'");
        checkKeys(*cpu,
                  {"base_ipc", "mem_intensity", "working_set_bytes",
                   "locality", "branch_fraction",
                   "branch_predictability"},
                  "'cpu'");
        d.cpu.baseIpc = numberOr(*cpu, "base_ipc", d.cpu.baseIpc);
        d.cpu.memIntensity =
            numberOr(*cpu, "mem_intensity", d.cpu.memIntensity);
        d.cpu.workingSetBytes =
            bytesOr(*cpu, "working_set_bytes", d.cpu.workingSetBytes);
        d.cpu.locality = numberOr(*cpu, "locality", d.cpu.locality);
        d.cpu.branchFraction =
            numberOr(*cpu, "branch_fraction", d.cpu.branchFraction);
        d.cpu.branchPredictability = numberOr(
            *cpu, "branch_predictability",
            d.cpu.branchPredictability);
    }
    if (const JsonValue *gpu = obj.find("gpu")) {
        asObject(*gpu, "'gpu'");
        checkKeys(*gpu,
                  {"work_rate", "api", "offscreen",
                   "resolution_scale", "texture_bandwidth",
                   "texture_bytes"},
                  "'gpu'");
        d.gpu.workRate = numberOr(*gpu, "work_rate", d.gpu.workRate);
        if (const JsonValue *api = gpu->find("api")) {
            const std::string name = asString(*api, "'api'");
            if (name == "none")
                d.gpu.api = GraphicsApi::None;
            else if (name == "opengl")
                d.gpu.api = GraphicsApi::OpenGlEs;
            else if (name == "vulkan")
                d.gpu.api = GraphicsApi::Vulkan;
            else
                fail(*api, "unknown graphics api '" + name +
                               "' (none|opengl|vulkan)");
        }
        if (const JsonValue *off = gpu->find("offscreen"))
            d.gpu.offscreen = asBool(*off, "'offscreen'");
        d.gpu.resolutionScale =
            numberOr(*gpu, "resolution_scale", d.gpu.resolutionScale);
        d.gpu.textureBandwidth = numberOr(*gpu, "texture_bandwidth",
                                          d.gpu.textureBandwidth);
        d.gpu.textureBytes =
            bytesOr(*gpu, "texture_bytes", d.gpu.textureBytes);
    }
    if (const JsonValue *aie = obj.find("aie")) {
        asObject(*aie, "'aie'");
        checkKeys(*aie, {"work_rate", "codec"}, "'aie'");
        d.aie.workRate = numberOr(*aie, "work_rate", d.aie.workRate);
        if (const JsonValue *codec = aie->find("codec")) {
            static const std::map<std::string, MediaCodec> codecs = {
                {"none", MediaCodec::None},
                {"h264", MediaCodec::H264},
                {"h265", MediaCodec::H265},
                {"vp9", MediaCodec::Vp9},
                {"av1", MediaCodec::Av1},
            };
            const std::string name = asString(*codec, "'codec'");
            const auto it = codecs.find(name);
            if (it == codecs.end())
                fail(*codec, "unknown codec '" + name +
                                 "' (none|h264|h265|vp9|av1)");
            d.aie.codec = it->second;
        }
    }
    if (const JsonValue *memory = obj.find("memory")) {
        asObject(*memory, "'memory'");
        checkKeys(*memory, {"footprint_bytes"}, "'memory'");
        d.memory.footprintBytes = bytesOr(*memory, "footprint_bytes",
                                          d.memory.footprintBytes);
    }
    if (const JsonValue *storage = obj.find("storage")) {
        asObject(*storage, "'storage'");
        checkKeys(*storage, {"io_rate", "read_fraction"},
                  "'storage'");
        d.storage.ioRate =
            numberOr(*storage, "io_rate", d.storage.ioRate);
        const double rf = numberOr(*storage, "read_fraction",
                                   d.storage.readFraction);
        if (rf < 0.0 || rf > 1.0)
            fail(*storage, "'read_fraction' must be in [0, 1]");
        d.storage.readFraction = rf;
    }
    return d;
}

Phase
Compiler::demandPhase(const JsonValue &entry) const
{
    checkKeys(entry,
              {"name", "kernel", "duration", "instructions",
               "demand"},
              "demand phase");
    Phase p;
    p.name = asString(required(entry, "name", "demand phase"),
                      "phase 'name'");
    if (const JsonValue *kernel = entry.find("kernel"))
        p.kernel = asString(*kernel, "phase 'kernel'");
    else
        p.kernel = "custom";
    const JsonValue &durationNode =
        required(entry, "duration", "demand phase");
    p.durationSeconds = asNumber(durationNode, "phase 'duration'");
    if (p.durationSeconds <= 0.0)
        fail(durationNode, "phase duration must be positive");
    const JsonValue &instructionsNode =
        required(entry, "instructions", "demand phase");
    const double instructions =
        asNumber(instructionsNode, "phase 'instructions'");
    if (instructions < 0.0)
        fail(instructionsNode,
             "phase instruction budget must be non-negative");
    p.demand = demandFrom(required(entry, "demand", "demand phase"));
    p.demand.cpu.instructionsBillions = instructions;
    return p;
}

void
Compiler::appendEntry(const JsonValue &entry, std::vector<Phase> &out,
                      bool allow_template, bool allow_mix) const
{
    asObject(entry, "phase entry");
    if (const JsonValue *ref = entry.find("template")) {
        if (!allow_template)
            fail(*ref, "template references cannot nest");
        checkKeys(entry, {"template", "repeat"},
                  "template reference");
        const std::string name =
            asString(*ref, "'template'");
        const JsonValue *body =
            templates != nullptr ? templates->find(name) : nullptr;
        if (body == nullptr)
            fail(*ref, "unknown template '" + name + "'");
        asObject(*body, "template '" + name + "'");
        checkKeys(*body, {"phases"}, "template '" + name + "'");
        const JsonValue &phases =
            required(*body, "phases", "template '" + name + "'");
        int repeat = 1;
        if (const JsonValue *r = entry.find("repeat"))
            repeat = asCount(*r, "'repeat'");
        const std::vector<Phase> expanded =
            phaseList(phases, /*allow_template=*/false,
                      /*allow_mix=*/true);
        for (int i = 0; i < repeat; ++i)
            out.insert(out.end(), expanded.begin(), expanded.end());
        return;
    }
    if (const JsonValue *mix = entry.find("mix")) {
        if (!allow_mix)
            fail(*mix, "mix entries cannot nest");
        checkKeys(entry, {"mix"}, "mix reference");
        asObject(*mix, "'mix'");
        checkKeys(*mix, {"seed", "count", "choices"}, "'mix'");
        const JsonValue &seedNode = required(*mix, "seed", "'mix'");
        const double seed = asNumber(seedNode, "mix 'seed'");
        if (seed < 0.0 || seed != std::floor(seed) ||
            seed > 9007199254740992.0) {
            fail(seedNode,
                 "mix 'seed' must be a non-negative integer");
        }
        const int count =
            asCount(required(*mix, "count", "'mix'"), "mix 'count'");
        const JsonValue &choicesNode =
            required(*mix, "choices", "'mix'");
        const auto &choices =
            asArray(choicesNode, "mix 'choices'").array;
        if (choices.empty())
            fail(choicesNode, "mix 'choices' must not be empty");
        std::vector<Phase> compiled;
        for (const JsonValue &choice : choices) {
            appendEntry(choice, compiled, /*allow_template=*/false,
                        /*allow_mix=*/false);
        }
        // Deterministic pick: the same seed yields the bit-identical
        // phase sequence on every platform (DESIGN.md §12).
        SplitMix64 rng{std::uint64_t(seed)};
        for (int i = 0; i < count; ++i)
            out.push_back(compiled[rng.next() % compiled.size()]);
        return;
    }
    if (entry.find("demand") != nullptr) {
        out.push_back(demandPhase(entry));
        return;
    }
    if (entry.find("kernel") != nullptr) {
        out.push_back(kernelPhase(entry));
        return;
    }
    fail(entry, "phase entry needs one of 'kernel', 'demand', "
                "'template' or 'mix'");
}

std::vector<Phase>
Compiler::phaseList(const JsonValue &entries, bool allow_template,
                    bool allow_mix) const
{
    const auto &list = asArray(entries, "'phases'").array;
    if (list.empty())
        fail(entries, "'phases' must not be empty");
    std::vector<Phase> out;
    for (const JsonValue &entry : list)
        appendEntry(entry, out, allow_template, allow_mix);
    return out;
}

Suite
Compiler::compileSuite(const JsonValue &node,
                       std::set<std::string> &unitNames) const
{
    asObject(node, "suite");
    checkKeys(node, {"name", "publisher", "whole_suite",
                     "benchmarks"},
              "suite");
    const JsonValue &nameNode = required(node, "name", "suite");
    const std::string name = asString(nameNode, "suite 'name'");
    if (name.empty())
        fail(nameNode, "suite 'name' must not be empty");
    std::string publisher;
    if (const JsonValue *p = node.find("publisher"))
        publisher = asString(*p, "suite 'publisher'");
    bool whole = false;
    if (const JsonValue *w = node.find("whole_suite"))
        whole = asBool(*w, "'whole_suite'");

    SuiteBuilder builder(name, publisher, whole);
    const JsonValue &benchmarksNode =
        required(node, "benchmarks", "suite");
    const auto &benchmarks =
        asArray(benchmarksNode, "'benchmarks'").array;
    if (benchmarks.empty())
        fail(benchmarksNode, "'benchmarks' must not be empty");
    for (const JsonValue &bench : benchmarks) {
        asObject(bench, "benchmark");
        checkKeys(bench, {"name", "target", "executable", "phases"},
                  "benchmark");
        const JsonValue &benchNameNode =
            required(bench, "name", "benchmark");
        const std::string benchName =
            asString(benchNameNode, "benchmark 'name'");
        if (benchName.empty())
            fail(benchNameNode, "benchmark 'name' must not be empty");
        if (!unitNames.insert(benchName).second)
            fail(benchNameNode, "duplicate benchmark name '" +
                                    benchName + "'");
        static const std::map<std::string, HardwareTarget> targets = {
            {"cpu", HardwareTarget::Cpu},
            {"gpu", HardwareTarget::Gpu},
            {"memory", HardwareTarget::MemorySubsystem},
            {"storage", HardwareTarget::StorageSubsystem},
            {"ai", HardwareTarget::Ai},
            {"everyday", HardwareTarget::EverydayTasks},
        };
        const JsonValue &targetNode =
            required(bench, "target", "benchmark");
        const std::string targetName =
            asString(targetNode, "benchmark 'target'");
        const auto target = targets.find(targetName);
        if (target == targets.end())
            fail(targetNode,
                 "unknown target '" + targetName +
                     "' (cpu|gpu|memory|storage|ai|everyday)");
        bool executable = true;
        if (const JsonValue *e = bench.find("executable"))
            executable = asBool(*e, "'executable'");
        builder.benchmark(benchName, target->second, executable);
        for (Phase &p :
             phaseList(required(bench, "phases", "benchmark"),
                       /*allow_template=*/true, /*allow_mix=*/true))
            builder.rawPhase(std::move(p));
    }
    return builder.build();
}

WorkloadSpec
Compiler::compile()
{
    asObject(doc, "spec document");
    checkKeys(doc, {"spec_version", "params", "templates", "suites"},
              "spec document");
    const JsonValue &versionNode =
        required(doc, "spec_version", "spec document");
    const double version =
        asNumber(versionNode, "'spec_version'");
    if (version != double(specSchemaVersion)) {
        fail(versionNode,
             strformat("unsupported spec_version %g (this build "
                       "reads version %d)",
                       version, specSchemaVersion));
    }
    if (const JsonValue *p = doc.find("params"))
        params = &asObject(*p, "'params'");
    if (const JsonValue *t = doc.find("templates"))
        templates = &asObject(*t, "'templates'");

    WorkloadSpec out;
    out.version = specSchemaVersion;
    out.source = file;
    const JsonValue &suitesNode = required(doc, "suites",
                                           "spec document");
    const auto &suites = asArray(suitesNode, "'suites'").array;
    if (suites.empty())
        fail(suitesNode, "'suites' must not be empty");
    std::set<std::string> suiteNames;
    std::set<std::string> unitNames;
    for (const JsonValue &suiteNode : suites) {
        Suite suite = compileSuite(suiteNode, unitNames);
        if (!suiteNames.insert(suite.name).second) {
            fail(suiteNode,
                 "duplicate suite name '" + suite.name + "'");
        }
        out.suites.push_back(std::move(suite));
    }

    Fnv1a h;
    h.mix(out.version);
    for (const Suite &s : out.suites)
        h.mix(s.digest());
    out.digest = h.value();
    return out;
}

} // namespace

std::size_t
WorkloadSpec::unitCount() const
{
    std::size_t n = 0;
    for (const Suite &s : suites)
        n += s.benchmarks.size();
    return n;
}

WorkloadRegistry
WorkloadSpec::toRegistry() const
{
    return WorkloadRegistry(suites);
}

WorkloadSpec
compileSpecString(const std::string &text,
                  const std::string &filename)
{
    JsonValue doc;
    try {
        doc = parseJson(text);
    } catch (const FatalError &e) {
        // parseJson's message already carries line/column; prefix
        // the file so the diagnostic reads like the compiler's own.
        fatal(filename + ": " + e.what());
    }
    return Compiler(doc, filename).compile();
}

WorkloadSpec
compileSpecFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in.good(),
            "cannot read spec file '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return compileSpecString(text.str(), path);
}

int
clampedKMax(std::size_t units)
{
    return int(std::min<std::size_t>(10, units));
}

} // namespace spec
} // namespace mbs
