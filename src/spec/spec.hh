/**
 * @file
 * JSON workload-spec language: user-defined suites without
 * recompiling.
 *
 * A spec file declares suites -> benchmarks -> phases in strict
 * RFC-8259 JSON (common/json_parse.hh). Each phase either names a
 * registered kernel archetype with keyword overrides (the same
 * keywords the text loader accepts: threads, intensity, gpu_rate,
 * aie_rate, io_rate, working_set_mb, api, codec, ...) or gives a raw
 * demand bundle mirroring PhaseDemand field by field. Three
 * composition constructs keep large specs small:
 *
 *  - "params": named keyword sets a kernel phase references by name;
 *    its own "args" override individual keys.
 *  - "templates": named phase sequences a benchmark splices in with
 *    {"template": name, "repeat": n}.
 *  - {"mix": {...}}: a seeded randomized pick of `count` phases from
 *    `choices`, deterministic via SplitMix64 — the same seed always
 *    yields the bit-identical suite, on every platform.
 *
 * Schema versioning: the required top-level "spec_version" must be
 * exactly `specSchemaVersion`; newer documents are rejected with an
 * upgrade hint rather than misread. All diagnostics are positioned
 * `<file>:<line>:<col>: message` FatalErrors in the src/ingest
 * style, pointing at the offending JSON node.
 *
 * Compiled specs are ordinary Suite/Benchmark objects: they flow
 * through the unchanged analyze() pipeline and key the profile store
 * by Benchmark::digest(), so an edited spec can never hit a stale
 * cache entry.
 */

#ifndef MBS_SPEC_SPEC_HH
#define MBS_SPEC_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/benchmark.hh"
#include "workload/registry.hh"

namespace mbs {
namespace spec {

/** The one schema version this build reads and writes. */
inline constexpr int specSchemaVersion = 1;

/** A compiled workload spec. */
struct WorkloadSpec
{
    /** Schema version of the source document. */
    int version = specSchemaVersion;
    /** Compiled suites, in document order. */
    std::vector<Suite> suites;
    /**
     * Content digest over the schema version and every compiled
     * suite digest: two specs with equal digests describe identical
     * workloads. Participates in the run id so edited specs get
     * fresh ledger identities.
     */
    std::uint64_t digest = 0;
    /** Source filename, as used in diagnostics. */
    std::string source;

    /** Flattened unit count across all suites. */
    std::size_t unitCount() const;

    /** Registry over the compiled suites, ready for the pipeline. */
    WorkloadRegistry toRegistry() const;
};

/**
 * Parse and compile the spec document in @p text.
 *
 * @param text Full JSON document.
 * @param filename Name used in diagnostics (e.g. "spec.json" or
 *        "<spec>" for wire-submitted bodies).
 * @throws FatalError with a `<file>:<line>:<col>:` prefix on any
 *         schema or semantic error.
 */
WorkloadSpec compileSpecString(const std::string &text,
                               const std::string &filename);

/** Read @p path and compile it; fatal() when unreadable. */
WorkloadSpec compileSpecFile(const std::string &path);

/**
 * Serialize @p suites as a spec document that compiles back
 * digest-identical: every phase is flattened to a raw demand bundle
 * with all fields explicit and doubles printed round-trip exactly
 * (%.17g). The golden test round-trips the built-in registry
 * through this.
 */
std::string exportSuitesJson(const std::vector<Suite> &suites);

/** exportSuitesJson over the registry's suites. */
std::string exportRegistryJson(const WorkloadRegistry &registry);

/**
 * Largest k the clustering stage can use for @p units observations,
 * honoring the pipeline default of 10: spec suites may have fewer
 * units than the paper's 18, and analyze() rejects k_max above the
 * observation count. Shared by the CLI and the serve job runner so
 * both produce byte-identical reports for the same spec.
 */
int clampedKMax(std::size_t units);

} // namespace spec
} // namespace mbs

#endif // MBS_SPEC_SPEC_HH
