/**
 * @file
 * Suite -> spec-JSON serialization. The contract is exactness: the
 * emitted document compiles back to suites whose digests equal the
 * input's. Phases are flattened to raw demand bundles (the kernel
 * tag is kept as a label), every field is explicit, and doubles are
 * printed with %.17g so strtod recovers the identical bit pattern.
 */

#include <sstream>

#include "common/strings.hh"
#include "spec/spec.hh"

namespace mbs {
namespace spec {

namespace {

std::string
jsonString(const std::string &text)
{
    std::string out = "\"";
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strformat("\\u%04x", unsigned(c));
            else
                out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

std::string
num(double value)
{
    return strformat("%.17g", value);
}

std::string
bytes(std::uint64_t value)
{
    return strformat("%llu", (unsigned long long)value);
}

const char *
targetTag(HardwareTarget target)
{
    switch (target) {
      case HardwareTarget::Cpu: return "cpu";
      case HardwareTarget::Gpu: return "gpu";
      case HardwareTarget::MemorySubsystem: return "memory";
      case HardwareTarget::StorageSubsystem: return "storage";
      case HardwareTarget::Ai: return "ai";
      case HardwareTarget::EverydayTasks: return "everyday";
    }
    return "cpu";
}

const char *
apiTag(GraphicsApi api)
{
    switch (api) {
      case GraphicsApi::None: return "none";
      case GraphicsApi::OpenGlEs: return "opengl";
      case GraphicsApi::Vulkan: return "vulkan";
    }
    return "none";
}

const char *
codecTag(MediaCodec codec)
{
    switch (codec) {
      case MediaCodec::None: return "none";
      case MediaCodec::H264: return "h264";
      case MediaCodec::H265: return "h265";
      case MediaCodec::Vp9: return "vp9";
      case MediaCodec::Av1: return "av1";
    }
    return "none";
}

void
writeDemand(std::ostringstream &out, const PhaseDemand &d,
            const std::string &pad)
{
    out << pad << "\"demand\": {\n";
    out << pad << "  \"threads\": [";
    for (std::size_t i = 0; i < d.threads.size(); ++i) {
        out << (i == 0 ? "" : ",") << "\n"
            << pad << "    {\"count\": " << d.threads[i].count
            << ", \"intensity\": " << num(d.threads[i].intensity)
            << "}";
    }
    out << (d.threads.empty() ? "" : "\n" + pad + "  ") << "],\n";
    out << pad << "  \"cpu\": {\"base_ipc\": " << num(d.cpu.baseIpc)
        << ", \"mem_intensity\": " << num(d.cpu.memIntensity)
        << ", \"working_set_bytes\": " << bytes(d.cpu.workingSetBytes)
        << ",\n"
        << pad << "          \"locality\": " << num(d.cpu.locality)
        << ", \"branch_fraction\": " << num(d.cpu.branchFraction)
        << ", \"branch_predictability\": "
        << num(d.cpu.branchPredictability) << "},\n";
    out << pad << "  \"gpu\": {\"work_rate\": " << num(d.gpu.workRate)
        << ", \"api\": \"" << apiTag(d.gpu.api) << "\""
        << ", \"offscreen\": "
        << (d.gpu.offscreen ? "true" : "false") << ",\n"
        << pad << "          \"resolution_scale\": "
        << num(d.gpu.resolutionScale)
        << ", \"texture_bandwidth\": " << num(d.gpu.textureBandwidth)
        << ", \"texture_bytes\": " << bytes(d.gpu.textureBytes)
        << "},\n";
    out << pad << "  \"aie\": {\"work_rate\": " << num(d.aie.workRate)
        << ", \"codec\": \"" << codecTag(d.aie.codec) << "\"},\n";
    out << pad << "  \"memory\": {\"footprint_bytes\": "
        << bytes(d.memory.footprintBytes) << "},\n";
    out << pad << "  \"storage\": {\"io_rate\": "
        << num(d.storage.ioRate) << ", \"read_fraction\": "
        << num(d.storage.readFraction) << "}\n";
    out << pad << "}\n";
}

} // namespace

std::string
exportSuitesJson(const std::vector<Suite> &suites)
{
    std::ostringstream out;
    out << "{\n  \"spec_version\": " << specSchemaVersion << ",\n";
    out << "  \"suites\": [";
    for (std::size_t si = 0; si < suites.size(); ++si) {
        const Suite &suite = suites[si];
        out << (si == 0 ? "" : ",") << "\n    {\n";
        out << "      \"name\": " << jsonString(suite.name) << ",\n";
        out << "      \"publisher\": " << jsonString(suite.publisher)
            << ",\n";
        out << "      \"whole_suite\": "
            << (suite.runsAsWhole ? "true" : "false") << ",\n";
        out << "      \"benchmarks\": [";
        for (std::size_t bi = 0; bi < suite.benchmarks.size(); ++bi) {
            const Benchmark &bench = suite.benchmarks[bi];
            out << (bi == 0 ? "" : ",") << "\n        {\n";
            out << "          \"name\": " << jsonString(bench.name())
                << ",\n";
            out << "          \"target\": \""
                << targetTag(bench.target()) << "\",\n";
            out << "          \"executable\": "
                << (bench.individuallyExecutable() ? "true"
                                                   : "false")
                << ",\n";
            out << "          \"phases\": [";
            const auto &phases = bench.phases();
            for (std::size_t pi = 0; pi < phases.size(); ++pi) {
                const Phase &p = phases[pi];
                out << (pi == 0 ? "" : ",") << "\n            {\n";
                out << "              \"name\": "
                    << jsonString(p.name) << ",\n";
                out << "              \"kernel\": "
                    << jsonString(p.kernel) << ",\n";
                out << "              \"duration\": "
                    << num(p.durationSeconds) << ",\n";
                out << "              \"instructions\": "
                    << num(p.demand.cpu.instructionsBillions)
                    << ",\n";
                writeDemand(out, p.demand, "              ");
                out << "            }";
            }
            out << "\n          ]\n        }";
        }
        out << "\n      ]\n    }";
    }
    out << "\n  ]\n}\n";
    return out.str();
}

std::string
exportRegistryJson(const WorkloadRegistry &registry)
{
    return exportSuitesJson(registry.suites());
}

} // namespace spec
} // namespace mbs
