#include "subset.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/simd.hh"

namespace mbs {

namespace {

/**
 * Sum over non-members of the distance to the nearest member row.
 * Tracks the minimum *squared* distance per row and takes one square
 * root at the end — sqrt is monotone and correctly rounded, so the
 * result is bit-identical to minimizing over sqrt'd distances.
 */
double
totalMinDistanceByRow(const FeatureMatrix &features,
                      const std::vector<std::size_t> &member_rows)
{
    const std::size_t dims = features.cols();
    std::vector<char> is_member(features.rows(), 0);
    for (std::size_t m : member_rows)
        is_member[m] = 1;

    double total = 0.0;
    for (std::size_t i = 0; i < features.rows(); ++i) {
        if (is_member[i])
            continue;
        const double *row = features.rowPtr(i);
        double best = std::numeric_limits<double>::max();
        for (std::size_t m : member_rows) {
            best = std::min(best,
                            simd::sumSqDiff(row, features.rowPtr(m),
                                            dims));
        }
        total += std::sqrt(best);
    }
    return total;
}

} // namespace

SubsetBuilder::SubsetBuilder(std::vector<SubsetCandidate> candidates)
    : candidateList(std::move(candidates))
{
    fatalIf(candidateList.empty(), "no subset candidates");
    std::set<std::string> names;
    for (const auto &c : candidateList) {
        fatalIf(!names.insert(c.name).second,
                "duplicate candidate '" + c.name + "'");
        fatalIf(c.runtimeSeconds <= 0.0,
                "candidate '" + c.name + "' has no runtime");
    }
}

double
SubsetBuilder::fullRuntimeSeconds() const
{
    double total = 0.0;
    for (const auto &c : candidateList)
        total += c.runtimeSeconds;
    return total;
}

const SubsetCandidate &
SubsetBuilder::find(const std::string &name) const
{
    for (const auto &c : candidateList) {
        if (c.name == name)
            return c;
    }
    fatal("no subset candidate named '" + name + "'");
}

SubsetResult
SubsetBuilder::finalize(std::string strategy,
                        std::vector<std::string> members) const
{
    SubsetResult out;
    out.strategy = std::move(strategy);
    out.members = std::move(members);
    for (const auto &name : out.members)
        out.runtimeSeconds += find(name).runtimeSeconds;
    const double full = fullRuntimeSeconds();
    out.runtimeReduction =
        full > 0.0 ? 1.0 - out.runtimeSeconds / full : 0.0;
    return out;
}

SubsetResult
SubsetBuilder::naive() const
{
    // One benchmark per cluster, chosen by minimum runtime.
    int max_cluster = 0;
    for (const auto &c : candidateList)
        max_cluster = std::max(max_cluster, c.cluster);

    std::vector<std::string> members;
    for (int cluster = 0; cluster <= max_cluster; ++cluster) {
        const SubsetCandidate *best = nullptr;
        for (const auto &c : candidateList) {
            if (c.cluster != cluster)
                continue;
            // A benchmark that can only run inside its whole suite
            // cannot represent a cluster on its own.
            if (c.requiresWholeSuite)
                continue;
            if (!best || c.runtimeSeconds < best->runtimeSeconds)
                best = &c;
        }
        if (best)
            members.push_back(best->name);
    }
    return finalize("Naive", std::move(members));
}

SubsetResult
SubsetBuilder::select() const
{
    std::vector<std::string> members;

    // 1. Benchmarks that cannot run individually force their whole
    //    suite in (Antutu): include every such segment.
    for (const auto &c : candidateList) {
        if (c.requiresWholeSuite)
            members.push_back(c.name);
    }

    auto contains = [&members](const std::string &name) {
        return std::find(members.begin(), members.end(), name) !=
            members.end();
    };

    // 2. Cover the AIE: the benchmark with the highest AIE load.
    {
        const SubsetCandidate *best = nullptr;
        for (const auto &c : candidateList) {
            if (!best || c.avgAieLoad > best->avgAieLoad)
                best = &c;
        }
        if (best && !contains(best->name))
            members.push_back(best->name);
    }

    // 3. Cover all CPU clusters: the shortest benchmark that loads
    //    every cluster.
    {
        const SubsetCandidate *best = nullptr;
        for (const auto &c : candidateList) {
            if (!c.stressesAllCpuClusters || contains(c.name))
                continue;
            if (!best || c.runtimeSeconds < best->runtimeSeconds)
                best = &c;
        }
        if (best)
            members.push_back(best->name);
    }
    return finalize("Select", std::move(members));
}

SubsetResult
SubsetBuilder::selectPlusGpu() const
{
    SubsetResult base = select();
    auto contains = [&base](const std::string &name) {
        return std::find(base.members.begin(), base.members.end(),
                         name) != base.members.end();
    };
    // Add the highest-average-GPU-load benchmark.
    const SubsetCandidate *best = nullptr;
    for (const auto &c : candidateList) {
        if (contains(c.name))
            continue;
        if (!best || c.avgGpuLoad > best->avgGpuLoad)
            best = &c;
    }
    std::vector<std::string> members = base.members;
    if (best)
        members.push_back(best->name);
    return finalize("Select+GPU", std::move(members));
}

double
totalMinEuclideanDistance(const FeatureMatrix &features,
                          const std::vector<std::string> &members)
{
    fatalIf(members.empty(),
            "a subset needs at least one member");
    std::vector<std::size_t> member_rows;
    for (const auto &name : members)
        member_rows.push_back(features.rowIndex(name));
    return totalMinDistanceByRow(features, member_rows);
}

std::vector<double>
incrementalDistanceCurve(const FeatureMatrix &features,
                         const std::vector<std::string> &members)
{
    fatalIf(members.empty(), "a curve needs at least one member");
    // Resolve every name to its row index once up front.
    std::vector<std::size_t> order;
    std::vector<char> in_order(features.rows(), 0);
    for (const auto &name : members) {
        const std::size_t r = features.rowIndex(name);
        order.push_back(r);
        in_order[r] = 1;
    }
    // Append the remaining benchmarks in row order.
    for (std::size_t r = 0; r < features.rows(); ++r) {
        if (!in_order[r])
            order.push_back(r);
    }

    std::vector<double> curve;
    std::vector<std::size_t> current;
    for (std::size_t r : order) {
        current.push_back(r);
        curve.push_back(totalMinDistanceByRow(features, current));
    }
    return curve;
}

double
subsetDistancePercentile(const FeatureMatrix &features,
                         const std::vector<std::string> &members,
                         int samples, std::uint64_t seed)
{
    fatalIf(samples < 1, "need >= 1 Monte Carlo sample");
    const double own = totalMinEuclideanDistance(features, members);
    const auto &names = features.rowNames();
    fatalIf(members.size() > names.size(),
            "subset larger than the benchmark set");

    Xoshiro256StarStar rng(seed);
    // Shuffle row indices rather than name strings; the uniformInt
    // draw sequence is unchanged, so sampled subsets are too.
    std::vector<std::size_t> pool(names.size());
    std::vector<std::size_t> sampled(members.size());
    int not_larger = 0;
    for (int s = 0; s < samples; ++s) {
        // Sample a random subset of the same size (Fisher-Yates
        // prefix).
        for (std::size_t i = 0; i < pool.size(); ++i)
            pool[i] = i;
        for (std::size_t i = 0; i < members.size(); ++i) {
            const std::size_t j =
                i + rng.uniformInt(pool.size() - i);
            std::swap(pool[i], pool[j]);
        }
        sampled.assign(pool.begin(),
                       pool.begin() + std::ptrdiff_t(members.size()));
        if (own <= totalMinDistanceByRow(features, sampled))
            ++not_larger;
        // not_larger counts samples our subset beats or ties.
    }
    return 100.0 * (1.0 - double(not_larger) / double(samples));
}

} // namespace mbs
