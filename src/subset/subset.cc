#include "subset.hh"

#include <algorithm>
#include <limits>
#include <set>

#include "common/logging.hh"
#include "common/random.hh"

namespace mbs {

SubsetBuilder::SubsetBuilder(std::vector<SubsetCandidate> candidates)
    : candidateList(std::move(candidates))
{
    fatalIf(candidateList.empty(), "no subset candidates");
    std::set<std::string> names;
    for (const auto &c : candidateList) {
        fatalIf(!names.insert(c.name).second,
                "duplicate candidate '" + c.name + "'");
        fatalIf(c.runtimeSeconds <= 0.0,
                "candidate '" + c.name + "' has no runtime");
    }
}

double
SubsetBuilder::fullRuntimeSeconds() const
{
    double total = 0.0;
    for (const auto &c : candidateList)
        total += c.runtimeSeconds;
    return total;
}

const SubsetCandidate &
SubsetBuilder::find(const std::string &name) const
{
    for (const auto &c : candidateList) {
        if (c.name == name)
            return c;
    }
    fatal("no subset candidate named '" + name + "'");
}

SubsetResult
SubsetBuilder::finalize(std::string strategy,
                        std::vector<std::string> members) const
{
    SubsetResult out;
    out.strategy = std::move(strategy);
    out.members = std::move(members);
    for (const auto &name : out.members)
        out.runtimeSeconds += find(name).runtimeSeconds;
    const double full = fullRuntimeSeconds();
    out.runtimeReduction =
        full > 0.0 ? 1.0 - out.runtimeSeconds / full : 0.0;
    return out;
}

SubsetResult
SubsetBuilder::naive() const
{
    // One benchmark per cluster, chosen by minimum runtime.
    int max_cluster = 0;
    for (const auto &c : candidateList)
        max_cluster = std::max(max_cluster, c.cluster);

    std::vector<std::string> members;
    for (int cluster = 0; cluster <= max_cluster; ++cluster) {
        const SubsetCandidate *best = nullptr;
        for (const auto &c : candidateList) {
            if (c.cluster != cluster)
                continue;
            // A benchmark that can only run inside its whole suite
            // cannot represent a cluster on its own.
            if (c.requiresWholeSuite)
                continue;
            if (!best || c.runtimeSeconds < best->runtimeSeconds)
                best = &c;
        }
        if (best)
            members.push_back(best->name);
    }
    return finalize("Naive", std::move(members));
}

SubsetResult
SubsetBuilder::select() const
{
    std::vector<std::string> members;

    // 1. Benchmarks that cannot run individually force their whole
    //    suite in (Antutu): include every such segment.
    for (const auto &c : candidateList) {
        if (c.requiresWholeSuite)
            members.push_back(c.name);
    }

    auto contains = [&members](const std::string &name) {
        return std::find(members.begin(), members.end(), name) !=
            members.end();
    };

    // 2. Cover the AIE: the benchmark with the highest AIE load.
    {
        const SubsetCandidate *best = nullptr;
        for (const auto &c : candidateList) {
            if (!best || c.avgAieLoad > best->avgAieLoad)
                best = &c;
        }
        if (best && !contains(best->name))
            members.push_back(best->name);
    }

    // 3. Cover all CPU clusters: the shortest benchmark that loads
    //    every cluster.
    {
        const SubsetCandidate *best = nullptr;
        for (const auto &c : candidateList) {
            if (!c.stressesAllCpuClusters || contains(c.name))
                continue;
            if (!best || c.runtimeSeconds < best->runtimeSeconds)
                best = &c;
        }
        if (best)
            members.push_back(best->name);
    }
    return finalize("Select", std::move(members));
}

SubsetResult
SubsetBuilder::selectPlusGpu() const
{
    SubsetResult base = select();
    auto contains = [&base](const std::string &name) {
        return std::find(base.members.begin(), base.members.end(),
                         name) != base.members.end();
    };
    // Add the highest-average-GPU-load benchmark.
    const SubsetCandidate *best = nullptr;
    for (const auto &c : candidateList) {
        if (contains(c.name))
            continue;
        if (!best || c.avgGpuLoad > best->avgGpuLoad)
            best = &c;
    }
    std::vector<std::string> members = base.members;
    if (best)
        members.push_back(best->name);
    return finalize("Select+GPU", std::move(members));
}

double
totalMinEuclideanDistance(const FeatureMatrix &features,
                          const std::vector<std::string> &members)
{
    fatalIf(members.empty(),
            "a subset needs at least one member");
    std::vector<std::size_t> member_rows;
    for (const auto &name : members)
        member_rows.push_back(features.rowIndex(name));

    double total = 0.0;
    for (std::size_t i = 0; i < features.rows(); ++i) {
        if (std::find(member_rows.begin(), member_rows.end(), i) !=
            member_rows.end()) {
            continue;
        }
        double best = std::numeric_limits<double>::max();
        for (std::size_t m : member_rows) {
            best = std::min(best,
                            euclideanDistance(features.row(i),
                                              features.row(m)));
        }
        total += best;
    }
    return total;
}

std::vector<double>
incrementalDistanceCurve(const FeatureMatrix &features,
                         const std::vector<std::string> &members)
{
    fatalIf(members.empty(), "a curve needs at least one member");
    std::vector<std::string> order = members;
    // Append the remaining benchmarks in row order.
    for (const auto &name : features.rowNames()) {
        if (std::find(order.begin(), order.end(), name) == order.end())
            order.push_back(name);
    }

    std::vector<double> curve;
    std::vector<std::string> current;
    for (const auto &name : order) {
        current.push_back(name);
        curve.push_back(totalMinEuclideanDistance(features, current));
    }
    return curve;
}

double
subsetDistancePercentile(const FeatureMatrix &features,
                         const std::vector<std::string> &members,
                         int samples, std::uint64_t seed)
{
    fatalIf(samples < 1, "need >= 1 Monte Carlo sample");
    const double own = totalMinEuclideanDistance(features, members);
    const auto &names = features.rowNames();
    fatalIf(members.size() > names.size(),
            "subset larger than the benchmark set");

    Xoshiro256StarStar rng(seed);
    int not_larger = 0;
    for (int s = 0; s < samples; ++s) {
        // Sample a random subset of the same size (Fisher-Yates
        // prefix).
        std::vector<std::string> pool = names;
        for (std::size_t i = 0; i < members.size(); ++i) {
            const std::size_t j =
                i + rng.uniformInt(pool.size() - i);
            std::swap(pool[i], pool[j]);
        }
        pool.resize(members.size());
        if (own <= totalMinEuclideanDistance(features, pool))
            ++not_larger;
        // not_larger counts samples our subset beats or ties.
    }
    return 100.0 * (1.0 - double(not_larger) / double(samples));
}

} // namespace mbs
