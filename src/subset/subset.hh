/**
 * @file
 * Benchmark subset construction and evaluation (the paper's §VI-B).
 *
 * Three strategies are reproduced:
 *  - Naive: the shortest-runtime benchmark from each cluster.
 *  - Select: Antutu in its entirety (its segments cannot run
 *    individually), plus the highest-AIE-load benchmark, plus the
 *    shortest benchmark that stresses all three CPU clusters.
 *  - Select+GPU: Select plus the highest-average-GPU-load benchmark.
 *
 * Representativeness follows Yi et al.: normalize each metric to its
 * maximum, then sum, over all excluded benchmarks, the Euclidean
 * distance to the nearest included benchmark (lower is better).
 */

#ifndef MBS_SUBSET_SUBSET_HH
#define MBS_SUBSET_SUBSET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats/feature_matrix.hh"

namespace mbs {

/** Per-benchmark inputs to subset construction. */
struct SubsetCandidate
{
    std::string name;
    std::string suite;
    /** Wall-clock runtime in seconds. */
    double runtimeSeconds = 0.0;
    /** Cluster label from the similarity analysis. */
    int cluster = 0;
    /** Time-averaged AIE load. */
    double avgAieLoad = 0.0;
    /** Time-averaged GPU load. */
    double avgGpuLoad = 0.0;
    /**
     * True when the benchmark keeps every CPU cluster loaded (the
     * paper's Observation #9 set: Aitutu, Antutu CPU, Geekbench 5/6
     * CPU).
     */
    bool stressesAllCpuClusters = false;
    /**
     * True when the benchmark can only run as part of its whole
     * suite (Antutu segments).
     */
    bool requiresWholeSuite = false;
};

/** A constructed subset with its runtime accounting. */
struct SubsetResult
{
    std::string strategy;
    std::vector<std::string> members;
    double runtimeSeconds = 0.0;
    /** 1 - runtime / full-set runtime. */
    double runtimeReduction = 0.0;
};

/**
 * Subset construction over a fixed candidate list.
 */
class SubsetBuilder
{
  public:
    /** @param candidates One entry per benchmark unit, all suites. */
    explicit SubsetBuilder(std::vector<SubsetCandidate> candidates);

    /** Total runtime of the full original set. */
    double fullRuntimeSeconds() const;

    /** Naive: per-cluster minimum-runtime pick. */
    SubsetResult naive() const;

    /** Select: whole-Antutu + AIE coverage + CPU-cluster coverage. */
    SubsetResult select() const;

    /** Select+GPU: select() plus the highest-GPU-load benchmark. */
    SubsetResult selectPlusGpu() const;

    const std::vector<SubsetCandidate> &candidates() const
    {
        return candidateList;
    }

  private:
    SubsetResult finalize(std::string strategy,
                          std::vector<std::string> members) const;

    const SubsetCandidate &find(const std::string &name) const;

    std::vector<SubsetCandidate> candidateList;
};

/**
 * Yi-et-al. total minimum Euclidean distance of a subset.
 *
 * @param normalized_features Feature matrix with one row per
 *        benchmark, already normalized per metric (column max).
 * @param members Row names included in the subset.
 * @return sum over rows not in @p members of the distance to the
 *         nearest member row; 0 when every row is a member.
 */
double totalMinEuclideanDistance(const FeatureMatrix &normalized_features,
                                 const std::vector<std::string> &members);

/**
 * The Fig.-7 incremental curve: starting from the first member, add
 * the subset's members one at a time, then the remaining benchmarks
 * in row order, recording the total minimum Euclidean distance after
 * each addition.
 *
 * @return one distance per step; size == number of rows.
 */
std::vector<double>
incrementalDistanceCurve(const FeatureMatrix &normalized_features,
                         const std::vector<std::string> &members);

/**
 * Percentile rank of a subset's distance among @p samples random
 * same-size subsets (seeded Monte Carlo). Used to reproduce the
 * paper's "32.5% percentile" claim for Select+GPU.
 */
double subsetDistancePercentile(const FeatureMatrix &normalized_features,
                                const std::vector<std::string> &members,
                                int samples = 2000,
                                std::uint64_t seed = 99);

} // namespace mbs

#endif // MBS_SUBSET_SUBSET_HH
