/**
 * @file
 * Text rendering of every table and figure the paper reports, used by
 * the bench binaries and examples so the reproduction output is easy
 * to compare against the publication.
 */

#ifndef MBS_CORE_REPORT_HH
#define MBS_CORE_REPORT_HH

#include <string>

#include "core/pipeline.hh"

namespace mbs {

/** Table I: suite overview (names, targeted hardware). */
std::string renderTableI(const WorkloadRegistry &registry);

/** Table II: the simulated hardware platform. */
std::string renderTableII(const SocConfig &config);

/** Fig. 1: per-benchmark IC/IPC/MPKI/runtime with cluster groups. */
std::string renderFig1(const CharacterizationReport &report);

/** Table IV: the key performance-metric definitions. */
std::string renderTableIV();

/** Table III: metric correlation matrix (lower triangle). */
std::string renderTableIII(const CharacterizationReport &report);

/**
 * Fig. 2: normalized temporal strips for the six key metrics of one
 * benchmark; '#' marks samples above 0.5 of the global maximum.
 *
 * @param report Full report (supplies the global normalization
 *        bounds across all benchmarks, as the paper does).
 * @param benchmark Unit to render.
 * @param width Strip width in characters.
 */
std::string renderFig2(const CharacterizationReport &report,
                       const std::string &benchmark,
                       std::size_t width = 72);

/** Fig. 3: per-cluster load-level strips for one benchmark. */
std::string renderFig3(const CharacterizationReport &report,
                       const std::string &benchmark,
                       std::size_t width = 72);

/** Table V: average time share of each cluster per load level. */
std::string renderTableV(const CharacterizationReport &report);

/** Fig. 4: validation measures per algorithm and k. */
std::string renderFig4(const CharacterizationReport &report);

/** Figs. 5/6: cluster memberships per algorithm at the chosen k. */
std::string renderFig5And6(const CharacterizationReport &report);

/** Table VI: subset runtimes and reductions. */
std::string renderTableVI(const CharacterizationReport &report);

/** Fig. 7: incremental total-minimum-Euclidean-distance curves. */
std::string renderFig7(const CharacterizationReport &report);

/**
 * The report sections that depend only on the profiles (everything
 * except Table I, which describes the registry): Fig. 1, Tables
 * III-VI, Figs. 4-7 concatenated in paper order. Printed identically
 * by `pipeline`, `ingest --pipeline`, and serve jobs; round-trip and
 * serve goldens diff this string byte for byte.
 */
std::string renderReportSections(const CharacterizationReport &report);

/**
 * Table V data: fractions[cluster][level] of execution time, averaged
 * over all benchmarks. Exposed for tests and benches.
 */
std::array<std::array<double, 4>, numClusters>
loadLevelShares(const CharacterizationReport &report);

} // namespace mbs

#endif // MBS_CORE_REPORT_HH
