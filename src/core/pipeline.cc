#include "pipeline.hh"

#include <algorithm>
#include <optional>

#include "cluster/hierarchical.hh"
#include "cluster/kmeans.hh"
#include "cluster/pam.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "exec/executor.hh"
#include "obs/events.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"

namespace mbs {

namespace {

/**
 * One pipeline stage: tracing span plus structured start/end events
 * and a logical-clock checkpoint when the stage closes. The sampler
 * checkpoint is what makes per-stage counter deltas visible in
 * timeseries.csv.
 */
class StageScope
{
  public:
    explicit StageScope(const char *name)
        : stageName(name), span(name, "stage")
    {
        obs::EventLog::instance().emit("pipeline.stage.start",
                                       {{"stage", stageName}});
    }

    ~StageScope()
    {
        obs::EventLog::instance().emit("pipeline.stage.end",
                                       {{"stage", stageName}});
        obs::TimeSeriesSampler::instance().sample(
            obs::ClockDomain::Logical, "stage:" + stageName);
    }

  private:
    std::string stageName;
    obs::ScopedSpan span;
};

std::unique_ptr<ProfileStore>
makeStore(const std::string &cache_dir)
{
    return cache_dir.empty() ? nullptr
                             : std::make_unique<ProfileStore>(cache_dir);
}

ProfileOptions
withCache(ProfileOptions opts, ProfileCache *cache)
{
    opts.cache = cache;
    return opts;
}

} // namespace

CharacterizationPipeline::CharacterizationPipeline(
    const SocConfig &config, const PipelineOptions &options_)
    : store(makeStore(options_.cacheDir)),
      session(config, withCache(options_.profile, store.get())),
      options(options_)
{
}

FeatureMatrix
CharacterizationPipeline::buildFig1Metrics(
    const std::vector<BenchmarkProfile> &profiles)
{
    FeatureMatrix m({"IC", "IPC", "Cache MPKI", "Branch MPKI",
                     "Runtime"});
    for (const auto &p : profiles) {
        m.addRow(p.name, {p.instructions, p.ipc, p.cacheMpki,
                          p.branchMpki, p.runtimeSeconds});
    }
    return m;
}

FeatureMatrix
CharacterizationPipeline::buildClusterFeatures(
    const std::vector<BenchmarkProfile> &profiles)
{
    FeatureMatrix m({"IPC", "Cache MPKI", "Branch MPKI", "CPU Load",
                     "GPU Load", "GPU Util", "GPU Freq",
                     "Shaders Busy", "GPU Bus Busy", "Textures",
                     "AIE Load", "AIE Util", "AIE Freq",
                     "Used Memory", "Storage Util", "Storage Read BW",
                     "Storage Write BW"});
    for (const auto &p : profiles) {
        m.addRow(p.name, {
            p.ipc,
            p.cacheMpki,
            p.branchMpki,
            p.avgCpuLoad(),
            p.avgGpuLoad(),
            p.avgGpuUtilization(),
            p.avgGpuFrequency(),
            p.avgShadersBusy(),
            p.avgGpuBusBusy(),
            p.avgTextureResidency(),
            p.avgAieLoad(),
            p.avgAieUtilization(),
            p.avgAieFrequency(),
            p.avgUsedMemory(),
            p.avgStorageUtil(),
            p.avgStorageReadBw(),
            p.avgStorageWriteBw(),
        });
    }
    return m.normalizedByColumnMax();
}

bool
CharacterizationPipeline::stressesAllCpuClusters(
    const BenchmarkProfile &profile, double threshold)
{
    for (std::size_t c = 0; c < numClusters; ++c) {
        if (profile.series.clusterLoad[c].fractionAbove(0.25) <
            threshold) {
            return false;
        }
    }
    return true;
}

std::vector<WorkloadInfo>
CharacterizationPipeline::workloadInfoFrom(
    const WorkloadRegistry &registry,
    const std::vector<BenchmarkProfile> &profiles)
{
    std::vector<WorkloadInfo> out;
    out.reserve(profiles.size());
    for (const auto &p : profiles) {
        const Benchmark &unit = registry.unit(p.name);
        WorkloadInfo info;
        info.plannedRuntimeSeconds = unit.totalDurationSeconds();
        info.individuallyExecutable = unit.individuallyExecutable();
        out.push_back(info);
    }
    return out;
}

std::vector<SubsetCandidate>
CharacterizationPipeline::buildCandidates(
    const std::vector<BenchmarkProfile> &profiles,
    const std::vector<int> &labels,
    const std::vector<WorkloadInfo> &workloads) const
{
    fatalIf(labels.size() != profiles.size(),
            "labels/profiles size mismatch");
    fatalIf(workloads.size() != profiles.size(),
            "workloads/profiles size mismatch");
    std::vector<SubsetCandidate> out;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const BenchmarkProfile &p = profiles[i];
        SubsetCandidate c;
        c.name = p.name;
        c.suite = p.suite;
        // Subset accounting uses the *planned* runtime (Table VI is
        // built from nominal durations, not jittered measurements).
        c.runtimeSeconds = workloads[i].plannedRuntimeSeconds;
        c.cluster = labels[i];
        c.avgAieLoad = p.avgAieLoad();
        c.avgGpuLoad = p.avgGpuLoad();
        c.stressesAllCpuClusters = stressesAllCpuClusters(
            p, options.clusterStressThreshold);
        c.requiresWholeSuite = !workloads[i].individuallyExecutable;
        out.push_back(std::move(c));
    }
    return out;
}

std::vector<SubsetCandidate>
CharacterizationPipeline::buildCandidates(
    const std::vector<BenchmarkProfile> &profiles,
    const std::vector<int> &labels,
    const WorkloadRegistry &registry) const
{
    return buildCandidates(profiles, labels,
                           workloadInfoFrom(registry, profiles));
}

CharacterizationReport
CharacterizationPipeline::run(const WorkloadRegistry &registry) const
{
    obs::MetricsRegistry::instance()
        .counter("pipeline.runs", obs::Volatility::Stable,
                 "Full characterization pipeline executions")
        .add();
    obs::EventLog::instance().emit(
        "pipeline.run.start",
        {{"suites", strformat("%zu", registry.suites().size())}});
    std::vector<BenchmarkProfile> profiles;
    {
        const StageScope stage("profile");
        profiles = session.profileAll(registry);
    }
    const auto workloads = workloadInfoFrom(registry, profiles);
    return analyze(profiles, workloads);
}

CharacterizationReport
CharacterizationPipeline::analyze(
    const std::vector<BenchmarkProfile> &profiles,
    const std::vector<WorkloadInfo> &workloads) const
{
    fatalIf(workloads.size() != profiles.size(),
            "workloads/profiles size mismatch");
    CharacterizationReport report;
    report.profiles = profiles;
    {
        const StageScope stage("fig1-metrics");
        report.fig1Metrics = buildFig1Metrics(report.profiles);
    }
    {
        // Table III correlations over the Fig.-1 metric columns.
        const StageScope stage("correlation");
        report.correlation = CorrelationMatrix(report.fig1Metrics);
    }
    {
        const StageScope stage("cluster-features");
        report.clusterFeatures = buildClusterFeatures(report.profiles);
    }

    // Fig. 4: cluster-count validation with three algorithms.
    const KMeans kmeans;
    const Pam pam;
    const HierarchicalClustering hierarchical(Linkage::Average);
    {
        const StageScope stage("validation-sweep");
        // Construct a sweep for its argument validation even though
        // the points are evaluated here, across the executor.
        const std::vector<const Clusterer *> algorithms{
            &kmeans, &pam, &hierarchical};
        const ValidationSweep sweep(algorithms, options.kMin,
                                    options.kMax);
        fatalIf(std::size_t(options.kMax) >
                    report.clusterFeatures.rows(),
                "k_max exceeds the number of observations");
        struct Point
        {
            const Clusterer *algorithm;
            int k;
        };
        std::vector<Point> points;
        for (const Clusterer *algo : algorithms) {
            for (int k = options.kMin; k <= options.kMax; ++k)
                points.push_back(Point{algo, k});
        }
        // Every point is a pure function of (features, algorithm, k),
        // and the slot vector keeps the output in the serial sweep's
        // algorithm-major, k-minor order for any job count.
        report.validation.resize(points.size());
        std::optional<Executor> local;
        if (!options.profile.executor)
            local.emplace(options.profile.jobs);
        Executor &exec = options.profile.executor
            ? *options.profile.executor : *local;
        exec.parallelFor(points.size(), [&](std::size_t i) {
            report.validation[i] = ValidationSweep::evaluate(
                report.clusterFeatures, *points[i].algorithm,
                points[i].k);
        });
        report.chosenK =
            ValidationSweep::bestInternalK(report.validation);
    }

    // Figs. 5/6: flat clusterings at the chosen k.
    {
        const StageScope stage("cluster:kmeans");
        report.kmeansLabels =
            kmeans.fit(report.clusterFeatures, report.chosenK).labels;
    }
    {
        const StageScope stage("cluster:pam");
        report.pamLabels =
            pam.fit(report.clusterFeatures, report.chosenK).labels;
    }
    {
        const StageScope stage("cluster:hierarchical");
        report.hierarchicalLabels =
            hierarchical.fit(report.clusterFeatures,
                             report.chosenK).labels;
    }
    report.algorithmsAgree =
        samePartition(report.kmeansLabels, report.pamLabels) &&
        samePartition(report.kmeansLabels, report.hierarchicalLabels);

    {
        // Table VI: subsets. Built from the hierarchical labels (all
        // three agree when algorithmsAgree holds).
        const StageScope stage("subsetting");
        const auto candidates = buildCandidates(
            report.profiles, report.hierarchicalLabels, workloads);
        const SubsetBuilder builder(candidates);
        report.fullRuntimeSeconds = builder.fullRuntimeSeconds();
        report.naiveSubset = builder.naive();
        report.selectSubset = builder.select();
        report.selectPlusGpuSubset = builder.selectPlusGpu();
    }

    {
        // Fig. 7 curves.
        const StageScope stage("fig7-curves");
        report.naiveCurve = incrementalDistanceCurve(
            report.clusterFeatures, report.naiveSubset.members);
        report.selectCurve = incrementalDistanceCurve(
            report.clusterFeatures, report.selectSubset.members);
        report.selectPlusGpuCurve = incrementalDistanceCurve(
            report.clusterFeatures, report.selectPlusGpuSubset.members);
    }

    obs::EventLog::instance().emit(
        "pipeline.run.end",
        {{"benchmarks", strformat("%zu", report.profiles.size())},
         {"chosen_k", strformat("%d", report.chosenK)},
         {"algorithms_agree",
          report.algorithmsAgree ? "true" : "false"}});
    obs::TimeSeriesSampler::instance().sample(obs::ClockDomain::Logical,
                                              "pipeline:end");
    return report;
}

} // namespace mbs
