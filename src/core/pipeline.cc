#include "pipeline.hh"

#include <algorithm>

#include "cluster/hierarchical.hh"
#include "cluster/kmeans.hh"
#include "cluster/pam.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mbs {

CharacterizationPipeline::CharacterizationPipeline(
    const SocConfig &config, const PipelineOptions &options_)
    : session(config, options_.profile), options(options_)
{
}

FeatureMatrix
CharacterizationPipeline::buildFig1Metrics(
    const std::vector<BenchmarkProfile> &profiles)
{
    FeatureMatrix m({"IC", "IPC", "Cache MPKI", "Branch MPKI",
                     "Runtime"});
    for (const auto &p : profiles) {
        m.addRow(p.name, {p.instructions, p.ipc, p.cacheMpki,
                          p.branchMpki, p.runtimeSeconds});
    }
    return m;
}

FeatureMatrix
CharacterizationPipeline::buildClusterFeatures(
    const std::vector<BenchmarkProfile> &profiles)
{
    FeatureMatrix m({"IPC", "Cache MPKI", "Branch MPKI", "CPU Load",
                     "GPU Load", "GPU Util", "GPU Freq",
                     "Shaders Busy", "GPU Bus Busy", "Textures",
                     "AIE Load", "AIE Util", "AIE Freq",
                     "Used Memory", "Storage Util", "Storage Read BW",
                     "Storage Write BW"});
    for (const auto &p : profiles) {
        m.addRow(p.name, {
            p.ipc,
            p.cacheMpki,
            p.branchMpki,
            p.avgCpuLoad(),
            p.avgGpuLoad(),
            p.avgGpuUtilization(),
            p.avgGpuFrequency(),
            p.avgShadersBusy(),
            p.avgGpuBusBusy(),
            p.avgTextureResidency(),
            p.avgAieLoad(),
            p.avgAieUtilization(),
            p.avgAieFrequency(),
            p.avgUsedMemory(),
            p.avgStorageUtil(),
            // The profiler reports read and write bandwidth as
            // separate counters; both track controller utilization.
            p.avgStorageUtil() * 0.6,
            p.avgStorageUtil() * 0.4,
        });
    }
    return m.normalizedByColumnMax();
}

bool
CharacterizationPipeline::stressesAllCpuClusters(
    const BenchmarkProfile &profile, double threshold)
{
    for (std::size_t c = 0; c < numClusters; ++c) {
        if (profile.series.clusterLoad[c].fractionAbove(0.25) <
            threshold) {
            return false;
        }
    }
    return true;
}

std::vector<SubsetCandidate>
CharacterizationPipeline::buildCandidates(
    const std::vector<BenchmarkProfile> &profiles,
    const std::vector<int> &labels,
    const WorkloadRegistry &registry) const
{
    fatalIf(labels.size() != profiles.size(),
            "labels/profiles size mismatch");
    std::vector<SubsetCandidate> out;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const BenchmarkProfile &p = profiles[i];
        SubsetCandidate c;
        c.name = p.name;
        c.suite = p.suite;
        // Subset accounting uses the *planned* runtime (Table VI is
        // built from nominal durations, not jittered measurements).
        c.runtimeSeconds =
            registry.unit(p.name).totalDurationSeconds();
        c.cluster = labels[i];
        c.avgAieLoad = p.avgAieLoad();
        c.avgGpuLoad = p.avgGpuLoad();
        c.stressesAllCpuClusters = stressesAllCpuClusters(
            p, options.clusterStressThreshold);
        c.requiresWholeSuite =
            !registry.unit(p.name).individuallyExecutable();
        out.push_back(std::move(c));
    }
    return out;
}

CharacterizationReport
CharacterizationPipeline::run(const WorkloadRegistry &registry) const
{
    obs::MetricsRegistry::instance().counter("pipeline.runs").add();
    CharacterizationReport report;
    {
        const obs::ScopedSpan stage("profile", "stage");
        report.profiles = session.profileAll(registry);
    }
    {
        const obs::ScopedSpan stage("fig1-metrics", "stage");
        report.fig1Metrics = buildFig1Metrics(report.profiles);
    }
    {
        // Table III correlations over the Fig.-1 metric columns.
        const obs::ScopedSpan stage("correlation", "stage");
        report.correlation = CorrelationMatrix(report.fig1Metrics);
    }
    {
        const obs::ScopedSpan stage("cluster-features", "stage");
        report.clusterFeatures = buildClusterFeatures(report.profiles);
    }

    // Fig. 4: cluster-count validation with three algorithms.
    const KMeans kmeans;
    const Pam pam;
    const HierarchicalClustering hierarchical(Linkage::Average);
    {
        const obs::ScopedSpan stage("validation-sweep", "stage");
        const ValidationSweep sweep(
            {&kmeans, &pam, &hierarchical}, options.kMin, options.kMax);
        report.validation = sweep.run(report.clusterFeatures);
        report.chosenK =
            ValidationSweep::bestInternalK(report.validation);
    }

    // Figs. 5/6: flat clusterings at the chosen k.
    {
        const obs::ScopedSpan stage("cluster:kmeans", "stage");
        report.kmeansLabels =
            kmeans.fit(report.clusterFeatures, report.chosenK).labels;
    }
    {
        const obs::ScopedSpan stage("cluster:pam", "stage");
        report.pamLabels =
            pam.fit(report.clusterFeatures, report.chosenK).labels;
    }
    {
        const obs::ScopedSpan stage("cluster:hierarchical", "stage");
        report.hierarchicalLabels =
            hierarchical.fit(report.clusterFeatures,
                             report.chosenK).labels;
    }
    report.algorithmsAgree =
        samePartition(report.kmeansLabels, report.pamLabels) &&
        samePartition(report.kmeansLabels, report.hierarchicalLabels);

    {
        // Table VI: subsets. Built from the hierarchical labels (all
        // three agree when algorithmsAgree holds).
        const obs::ScopedSpan stage("subsetting", "stage");
        const auto candidates = buildCandidates(
            report.profiles, report.hierarchicalLabels, registry);
        const SubsetBuilder builder(candidates);
        report.fullRuntimeSeconds = builder.fullRuntimeSeconds();
        report.naiveSubset = builder.naive();
        report.selectSubset = builder.select();
        report.selectPlusGpuSubset = builder.selectPlusGpu();
    }

    {
        // Fig. 7 curves.
        const obs::ScopedSpan stage("fig7-curves", "stage");
        report.naiveCurve = incrementalDistanceCurve(
            report.clusterFeatures, report.naiveSubset.members);
        report.selectCurve = incrementalDistanceCurve(
            report.clusterFeatures, report.selectSubset.members);
        report.selectPlusGpuCurve = incrementalDistanceCurve(
            report.clusterFeatures, report.selectPlusGpuSubset.members);
    }

    return report;
}

} // namespace mbs
