#include "report.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/sparkline.hh"
#include "common/strings.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "stats/histogram.hh"

namespace mbs {

namespace {

const BenchmarkProfile &
findProfile(const CharacterizationReport &report, const std::string &name)
{
    for (const auto &p : report.profiles) {
        if (p.name == name)
            return p;
    }
    fatal("no profiled benchmark named '" + name + "'");
}

/** Global per-metric maxima across all benchmarks (Fig.-2 bounds). */
struct Fig2Bounds
{
    double cpu = 0.0, gpu = 0.0, shaders = 0.0, bus = 0.0;
    double aie = 0.0, mem = 0.0;
};

Fig2Bounds
fig2Bounds(const CharacterizationReport &report)
{
    Fig2Bounds b;
    for (const auto &p : report.profiles) {
        b.cpu = std::max(b.cpu, p.series.cpuLoad.max());
        b.gpu = std::max(b.gpu, p.series.gpuLoad.max());
        b.shaders = std::max(b.shaders, p.series.shadersBusy.max());
        b.bus = std::max(b.bus, p.series.gpuBusBusy.max());
        b.aie = std::max(b.aie, p.series.aieLoad.max());
        b.mem = std::max(b.mem, p.series.usedMemory.max());
    }
    return b;
}

} // namespace

std::string
renderTableI(const WorkloadRegistry &registry)
{
    TextTable t({"Benchmark Suite", "Benchmark", "Targeted HW",
                 "Runtime"});
    t.setAlign(3, Align::Right);
    for (const auto &suite : registry.suites()) {
        for (const auto &b : suite.benchmarks) {
            t.addRow({suite.name, b.name(),
                      hardwareTargetName(b.target()),
                      units::formatSeconds(b.totalDurationSeconds())});
        }
    }
    return "Table I: commercial mobile benchmark suites analyzed\n" +
        t.render();
}

std::string
renderTableII(const SocConfig &config)
{
    TextTable t({"Component", "Configuration"});
    for (const auto &cl : config.clusters) {
        t.addRow({cl.name,
                  strformat("%dx @ up to %s (perf %.2f, L2 %s)",
                            cl.cores,
                            units::formatHz(cl.maxFreqHz).c_str(),
                            cl.relativePerf,
                            units::formatBytes(cl.l2Bytes).c_str())});
    }
    t.addRow({"L3 cache", units::formatBytes(config.cache.l3Bytes)});
    t.addRow({"System-level cache",
              units::formatBytes(config.cache.slcBytes)});
    t.addRow({"GPU", config.gpu.name + " @ up to " +
              units::formatHz(config.gpu.maxFreqHz)});
    t.addRow({"AI engine", config.aie.name});
    t.addRow({"Memory", units::formatBytes(config.memory.totalBytes)});
    t.addRow({"Storage",
              units::formatBytes(config.storage.capacityBytes)});
    return "Table II: simulated hardware platform (" + config.name +
        ")\n" + t.render();
}

std::string
renderFig1(const CharacterizationReport &report)
{
    TextTable t({"Benchmark", "Group", "IC (B)", "IPC", "Cache MPKI",
                 "Branch MPKI", "Runtime (s)"});
    for (std::size_t c = 2; c < 7; ++c)
        t.setAlign(c, Align::Right);
    for (std::size_t i = 0; i < report.profiles.size(); ++i) {
        const auto &p = report.profiles[i];
        t.addRow({p.name,
                  strformat("C%d", report.hierarchicalLabels[i]),
                  strformat("%.1f", units::toBillions(p.instructions)),
                  strformat("%.2f", p.ipc),
                  strformat("%.1f", p.cacheMpki),
                  strformat("%.2f", p.branchMpki),
                  strformat("%.1f", p.runtimeSeconds)});
    }
    // Dashed-average row, mirroring the figure's dashed lines.
    double ic = 0, ipc = 0, cm = 0, bm = 0, rt = 0;
    const double n = double(report.profiles.size());
    for (const auto &p : report.profiles) {
        ic += units::toBillions(p.instructions) / n;
        ipc += p.ipc / n;
        cm += p.cacheMpki / n;
        bm += p.branchMpki / n;
        rt += p.runtimeSeconds / n;
    }
    t.addSeparator();
    t.addRow({"average", "", strformat("%.1f", ic),
              strformat("%.2f", ipc), strformat("%.1f", cm),
              strformat("%.2f", bm), strformat("%.1f", rt)});
    return "Fig. 1: benchmark metrics (averages as dashed lines)\n" +
        t.render();
}

std::string
renderTableIV()
{
    TextTable t({"Metric", "Explanation"});
    t.addRow({"CPU Load",
              "CPU frequency x CPU % utilization, per core"});
    t.addRow({"GPU Load", "GPU frequency x GPU % utilization"});
    t.addRow({"% Shaders Busy",
              "share of time all shader cores are busy"});
    t.addRow({"% GPU Bus Busy",
              "share of time the GPU<->memory bus is busy"});
    t.addRow({"AIE Load", "AIE frequency x AIE % utilization"});
    t.addRow({"Used Memory",
              "share of total system memory used (idle OS "
              "baseline subtracted)"});
    return "Table IV: performance metrics\n" + t.render();
}

std::string
renderTableIII(const CharacterizationReport &report)
{
    // Reports produced by CharacterizationPipeline::run() carry the
    // precomputed matrix; hand-built reports fall back to computing
    // it here.
    const CorrelationMatrix corr = report.correlation.size() > 0
        ? report.correlation
        : CorrelationMatrix(report.fig1Metrics);
    return "Table III: correlation values between metrics\n" +
        corr.renderLowerTriangle();
}

std::string
renderFig2(const CharacterizationReport &report,
           const std::string &benchmark, std::size_t width)
{
    const BenchmarkProfile &p = findProfile(report, benchmark);
    const Fig2Bounds bounds = fig2Bounds(report);

    auto strip = [width](const std::string &label, const TimeSeries &s,
                         double bound) {
        const TimeSeries norm = s.normalizedBy(bound);
        return strformat("%-14s |%s| avg %.2f\n", label.c_str(),
                         thresholdStrip(norm.values(), width).c_str(),
                         norm.mean());
    };

    std::string out = "Fig. 2 (" + benchmark +
        "): '#' = normalized value > 0.5\n";
    out += strip("CPU Load", p.series.cpuLoad, bounds.cpu);
    out += strip("GPU Load", p.series.gpuLoad, bounds.gpu);
    out += strip("% Shaders", p.series.shadersBusy, bounds.shaders);
    out += strip("% GPU Bus", p.series.gpuBusBusy, bounds.bus);
    out += strip("AIE Load", p.series.aieLoad, bounds.aie);
    out += strip("Used Memory", p.series.usedMemory, bounds.mem);
    return out;
}

std::string
renderFig3(const CharacterizationReport &report,
           const std::string &benchmark, std::size_t width)
{
    const BenchmarkProfile &p = findProfile(report, benchmark);
    std::string out = "Fig. 3 (" + benchmark +
        "): load levels ' '<25% '-'<50% '='<75% '#'>=75%\n";
    static const ClusterId order[] = {ClusterId::Big, ClusterId::Mid,
                                      ClusterId::Little};
    for (ClusterId id : order) {
        const auto &series = p.series.clusterLoad[std::size_t(id)];
        out += strformat("%-11s |%s|\n", clusterName(id).c_str(),
                         loadLevelStrip(series.values(), width).c_str());
    }
    return out;
}

std::array<std::array<double, 4>, numClusters>
loadLevelShares(const CharacterizationReport &report)
{
    std::array<std::array<double, 4>, numClusters> shares{};
    // Equal weight per benchmark, as the paper averages "across all
    // benchmarks" rather than pooling samples (which would let the
    // longest benchmark dominate).
    for (std::size_t c = 0; c < numClusters; ++c) {
        for (const auto &p : report.profiles) {
            Histogram h(0.0, 1.0, 4);
            h.addAll(p.series.clusterLoad[c].values());
            const auto f = h.fractions();
            for (std::size_t level = 0; level < 4; ++level) {
                shares[c][level] +=
                    f[level] / double(report.profiles.size());
            }
        }
    }
    return shares;
}

std::string
renderTableV(const CharacterizationReport &report)
{
    const auto shares = loadLevelShares(report);
    TextTable t({"CPU Cluster", "0%-25%", "25%-50%", "50%-75%",
                 "75%-100%"});
    for (std::size_t c = 1; c < 5; ++c)
        t.setAlign(c, Align::Right);
    for (std::size_t c = 0; c < numClusters; ++c) {
        t.addRow({clusterName(ClusterId(c)),
                  units::formatPercent(shares[c][0], 0),
                  units::formatPercent(shares[c][1], 0),
                  units::formatPercent(shares[c][2], 0),
                  units::formatPercent(shares[c][3], 0)});
    }
    return "Table V: execution-time share per CPU-cluster load level\n" +
        t.render();
}

std::string
renderFig4(const CharacterizationReport &report)
{
    TextTable t({"Algorithm", "k", "Dunn", "Silhouette",
                 "Connectivity", "APN", "AD"});
    for (std::size_t c = 1; c < 7; ++c)
        t.setAlign(c, Align::Right);
    std::string last_algo;
    for (const auto &point : report.validation) {
        if (!last_algo.empty() && point.algorithm != last_algo)
            t.addSeparator();
        last_algo = point.algorithm;
        t.addRow({point.algorithm, strformat("%d", point.k),
                  strformat("%.3f", point.dunn),
                  strformat("%.3f", point.silhouette),
                  strformat("%.2f", point.connectivity),
                  strformat("%.3f", point.apn),
                  strformat("%.3f", point.ad)});
    }
    return strformat("Fig. 4: cluster-count validation "
                     "(chosen k = %d; Dunn/Silhouette higher better, "
                     "APN/AD lower better)\n",
                     report.chosenK) + t.render();
}

std::string
renderFig5And6(const CharacterizationReport &report)
{
    TextTable t({"Benchmark", "Hierarchical", "K-Means", "PAM"});
    for (std::size_t i = 0; i < report.profiles.size(); ++i) {
        t.addRow({report.profiles[i].name,
                  strformat("C%d", report.hierarchicalLabels[i]),
                  strformat("C%d", report.kmeansLabels[i]),
                  strformat("C%d", report.pamLabels[i])});
    }
    std::string out = strformat(
        "Figs. 5/6: benchmark clusters at k = %d (algorithms %s)\n",
        report.chosenK,
        report.algorithmsAgree ? "agree" : "DISAGREE");
    return out + t.render();
}

std::string
renderTableVI(const CharacterizationReport &report)
{
    TextTable t({"Set", "Members", "Running Time (s)", "Reduction"});
    t.setAlign(2, Align::Right);
    t.setAlign(3, Align::Right);
    t.addRow({"Original Set",
              strformat("%zu", report.profiles.size()),
              strformat("%.1f", report.fullRuntimeSeconds), "-"});
    for (const SubsetResult *s :
         {&report.naiveSubset, &report.selectSubset,
          &report.selectPlusGpuSubset}) {
        t.addRow({s->strategy, strformat("%zu", s->members.size()),
                  strformat("%.2f", s->runtimeSeconds),
                  units::formatPercent(s->runtimeReduction)});
    }
    std::string out = "Table VI: running times and reductions\n" +
        t.render();
    for (const SubsetResult *s :
         {&report.naiveSubset, &report.selectSubset,
          &report.selectPlusGpuSubset}) {
        out += s->strategy + ": " + join(s->members, ", ") + "\n";
    }
    return out;
}

std::string
renderFig7(const CharacterizationReport &report)
{
    TextTable t({"Step", "Naive", "Select", "Select+GPU"});
    for (std::size_t c = 1; c < 4; ++c)
        t.setAlign(c, Align::Right);
    const std::size_t n = report.naiveCurve.size();
    for (std::size_t i = 0; i < n; ++i) {
        t.addRow({strformat("%zu", i + 1),
                  strformat("%.2f", report.naiveCurve[i]),
                  strformat("%.2f", report.selectCurve[i]),
                  strformat("%.2f", report.selectPlusGpuCurve[i])});
    }
    return "Fig. 7: total minimum Euclidean distance vs subset size\n" +
        t.render();
}

std::string
renderReportSections(const CharacterizationReport &report)
{
    std::string out;
    out += renderFig1(report) + "\n";
    out += renderTableIV() + "\n";
    out += renderTableIII(report) + "\n";
    out += renderTableV(report) + "\n";
    out += renderFig4(report) + "\n";
    out += renderFig5And6(report) + "\n";
    out += renderTableVI(report) + "\n";
    out += renderFig7(report) + "\n";
    return out;
}

} // namespace mbs
