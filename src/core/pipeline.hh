/**
 * @file
 * The end-to-end characterization pipeline.
 *
 * Reproduces the paper's full methodology: profile every benchmark
 * unit (3 runs averaged, Antutu segmented), derive the Fig.-1 metric
 * set, compute the Table-III correlation matrix, build the clustering
 * feature space, sweep cluster-count validation (Fig. 4), cluster
 * with three algorithms (Figs. 5/6), construct the three subsets
 * (Table VI) and their representativeness curves (Fig. 7).
 */

#ifndef MBS_CORE_PIPELINE_HH
#define MBS_CORE_PIPELINE_HH

#include <memory>
#include <string>
#include <vector>

#include "cluster/validation.hh"
#include "profiler/session.hh"
#include "stats/correlation.hh"
#include "store/profile_store.hh"
#include "subset/subset.hh"
#include "workload/registry.hh"

namespace mbs {

/** Everything the paper's evaluation section derives. */
struct CharacterizationReport
{
    /** Averaged profile per benchmark unit, registry order. */
    std::vector<BenchmarkProfile> profiles;

    /** Fig. 1: rows = benchmarks; cols = IC, IPC, cache MPKI,
     *  branch MPKI, runtime. */
    FeatureMatrix fig1Metrics;

    /** Table III: pairwise correlations of the Fig.-1 metrics. */
    CorrelationMatrix correlation;

    /** Fig. 4 validation sweep points (3 algorithms x k range). */
    std::vector<ValidationPoint> validation;
    /** The k chosen by internal validation (paper: 5). */
    int chosenK = 0;

    /** Figs. 5/6: canonical labels per algorithm at chosenK,
     *  profile order. */
    std::vector<int> hierarchicalLabels;
    std::vector<int> kmeansLabels;
    std::vector<int> pamLabels;
    /** True when all three algorithms produced the same partition. */
    bool algorithmsAgree = false;

    /** Behavioural feature matrix used for clustering/subsetting,
     *  normalized by column maxima. */
    FeatureMatrix clusterFeatures;

    /** Table VI subsets. */
    SubsetResult naiveSubset;
    SubsetResult selectSubset;
    SubsetResult selectPlusGpuSubset;
    double fullRuntimeSeconds = 0.0;

    /** Fig. 7 curves: distance after each incremental addition. */
    std::vector<double> naiveCurve;
    std::vector<double> selectCurve;
    std::vector<double> selectPlusGpuCurve;
};

/** Pipeline options. */
struct PipelineOptions
{
    ProfileOptions profile;
    /**
     * Directory for the content-addressed profile store; empty
     * disables caching. When set, the pipeline owns a ProfileStore
     * there and installs it as the session's cache.
     */
    std::string cacheDir;
    /** Cluster-count sweep bounds (Fig. 4 uses 2..10). */
    int kMin = 2;
    int kMax = 10;
    /**
     * Fraction of runtime a cluster must spend above 25% load for a
     * benchmark to count as stressing it (subset Select rule).
     */
    double clusterStressThreshold = 0.30;
};

/**
 * What the subset-construction stage must know about a workload
 * beyond its measured profile. Derived from the registry for
 * simulated runs and from the trace-bundle manifest for ingested
 * counter traces — which is what lets analyze() run on externally
 * captured data without a registry entry.
 */
struct WorkloadInfo
{
    /**
     * Planned (nominal) runtime used for Table-VI accounting; the
     * paper builds subset runtimes from nominal durations, not
     * jittered measurements.
     */
    double plannedRuntimeSeconds = 0.0;
    /** False when the unit only runs as part of its whole suite. */
    bool individuallyExecutable = true;
};

/**
 * Orchestrates the full analysis.
 */
class CharacterizationPipeline
{
  public:
    explicit CharacterizationPipeline(const SocConfig &config,
                                      const PipelineOptions &options = {});

    /** Run everything against @p registry. */
    CharacterizationReport run(const WorkloadRegistry &registry) const;

    /**
     * Every post-profiling stage: Fig.-1 metrics, correlations,
     * cluster features, validation sweep, the three clusterings,
     * subsets and Fig.-7 curves. Pure function of its inputs, so
     * profiles from the simulator and bit-identical profiles
     * re-ingested from an exported trace bundle produce a
     * byte-identical report.
     *
     * @param profiles One averaged profile per benchmark unit.
     * @param workloads Per-profile subset-accounting info, same
     *        order and length as @p profiles.
     */
    CharacterizationReport
    analyze(const std::vector<BenchmarkProfile> &profiles,
            const std::vector<WorkloadInfo> &workloads) const;

    /** Per-profile WorkloadInfo looked up from @p registry. */
    static std::vector<WorkloadInfo>
    workloadInfoFrom(const WorkloadRegistry &registry,
                     const std::vector<BenchmarkProfile> &profiles);

    /** Build the Fig.-1 metric matrix from profiles. */
    static FeatureMatrix
    buildFig1Metrics(const std::vector<BenchmarkProfile> &profiles);

    /**
     * Build the behavioural feature matrix used for clustering:
     * averaged rate/load metrics (no size metrics like IC/runtime,
     * which would cluster by length instead of behaviour),
     * normalized by column maxima.
     */
    static FeatureMatrix
    buildClusterFeatures(const std::vector<BenchmarkProfile> &profiles);

    /**
     * @return true when every CPU cluster spends at least
     * @p threshold of the run above 25% load.
     */
    static bool stressesAllCpuClusters(const BenchmarkProfile &profile,
                                       double threshold = 0.30);

    /** Build the subset-candidate list. */
    std::vector<SubsetCandidate>
    buildCandidates(const std::vector<BenchmarkProfile> &profiles,
                    const std::vector<int> &labels,
                    const std::vector<WorkloadInfo> &workloads) const;

    /** Convenience overload deriving WorkloadInfo from @p registry. */
    std::vector<SubsetCandidate>
    buildCandidates(const std::vector<BenchmarkProfile> &profiles,
                    const std::vector<int> &labels,
                    const WorkloadRegistry &registry) const;

  private:
    /** Declared before the session, which holds a pointer into it. */
    std::unique_ptr<ProfileStore> store;
    ProfilerSession session;
    PipelineOptions options;
};

} // namespace mbs

#endif // MBS_CORE_PIPELINE_HH
