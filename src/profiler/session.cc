#include "session.hh"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/strings.hh"
#include "exec/executor.hh"
#include "obs/events.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"

namespace mbs {

namespace {

/** Deterministic per-(benchmark, run) seed derivation. */
std::uint64_t
runSeed(std::uint64_t master, const std::string &bench_name, int run)
{
    std::uint64_t h = master;
    for (char c : bench_name)
        h = h * 1099511628211ULL + static_cast<unsigned char>(c);
    SplitMix64 sm(h ^ (0x9e3779b97f4a7c15ULL * std::uint64_t(run + 1)));
    return sm.next();
}

/**
 * Average one metric series across runs, accumulating in place.
 *
 * Replicates TimeSeries::average exactly (resample to the shortest
 * run, element-wise mean, mean interval) but reads each run's series
 * through @p proj instead of first copying every series into a
 * temporary vector — the only transient allocation is the occasional
 * resample when run lengths differ.
 */
template <typename Proj>
TimeSeries
averageSeries(const std::vector<BenchmarkProfile> &runs, Proj proj)
{
    std::size_t shortest = std::numeric_limits<std::size_t>::max();
    for (const auto &r : runs)
        shortest = std::min(shortest, proj(r).size());
    if (shortest == 0)
        return TimeSeries(proj(runs.front()).interval(), {});

    std::vector<double> acc(shortest, 0.0);
    double total_duration = 0.0;
    for (const auto &r : runs) {
        const TimeSeries &series = proj(r);
        total_duration += series.duration();
        if (series.size() == shortest) {
            for (std::size_t i = 0; i < shortest; ++i)
                acc[i] += series[i];
        } else {
            const TimeSeries resampled = series.resampled(shortest);
            for (std::size_t i = 0; i < shortest; ++i)
                acc[i] += resampled[i];
        }
    }
    const double n = double(runs.size());
    for (double &v : acc)
        v /= n;
    return TimeSeries(total_duration / (n * double(shortest)),
                      std::move(acc));
}

} // namespace

const char *
clusterLoadSeriesName(std::size_t cluster)
{
    switch (cluster) {
      case 0:
        return "cpu.little.load";
      case 1:
        return "cpu.mid.load";
      case 2:
        return "cpu.big.load";
      default:
        panic("cluster index out of range");
    }
}

/** One unit of profiling work: a benchmark, or a whole-run suite. */
struct ProfilerSession::ExecUnit
{
    /** Set for whole-suite execution (runsAsWhole); else null. */
    const Suite *suite = nullptr;
    /** Set for an individually profiled benchmark; else null. */
    const Benchmark *bench = nullptr;

    const std::string &name() const
    {
        return bench ? bench->name() : suite->name;
    }
};

ProfilerSession::ProfilerSession(const SocConfig &config,
                                 const ProfileOptions &options)
    : simulator(config), opts(options), counterCatalog(config)
{
    fatalIf(opts.runs < 1, "a session needs at least one run");
    fatalIf(opts.tickSeconds <= 0.0,
            "the sampling interval must be positive");
    fatalIf(opts.jobs < 0,
            "the job count must be >= 0 (0 = all cores)");
}

BenchmarkProfile
ProfilerSession::extractProfile(
    const Benchmark &benchmark,
    const std::vector<const CounterFrame *> &frames) const
{
    BenchmarkProfile p;
    p.name = benchmark.name();
    p.suite = benchmark.suiteName();
    p.runtimeSeconds = double(frames.size()) * opts.tickSeconds;

    const double idle = double(config().memory.idleBytes);
    const double total = double(config().memory.totalBytes);

    std::vector<double> cpu_load, gpu_load, shaders, bus, aie_load, mem;
    std::vector<double> storage_util, storage_read, storage_write;
    std::vector<double> gpu_util, gpu_freq, aie_util, aie_freq, tex;
    std::array<std::vector<double>, numClusters> cluster;
    cpu_load.reserve(frames.size());

    double cycles = 0.0;
    for (const CounterFrame *f : frames) {
        p.instructions += f->instructions;
        cycles += f->cycles;
        p.cacheMpki += f->cacheMisses;
        p.branchMpki += f->branchMispredicts;

        cpu_load.push_back(f->cpuLoad);
        gpu_load.push_back(f->gpu.load);
        shaders.push_back(f->gpu.shadersBusy);
        bus.push_back(f->gpu.busBusy);
        aie_load.push_back(f->aie.load);
        const double used =
            std::max(0.0, double(f->memory.usedBytes) - idle);
        mem.push_back(used / total);
        storage_util.push_back(f->storage.utilization);
        storage_read.push_back(f->storage.readBandwidth);
        storage_write.push_back(f->storage.writeBandwidth);
        gpu_util.push_back(f->gpu.utilization);
        gpu_freq.push_back(
            f->gpu.frequencyHz / config().gpu.maxFreqHz);
        aie_util.push_back(f->aie.utilization);
        aie_freq.push_back(
            f->aie.frequencyHz / config().aie.maxFreqHz);
        tex.push_back(double(f->gpu.textureBytes) / total);
        for (std::size_t c = 0; c < numClusters; ++c)
            cluster[c].push_back(f->clusterLoad[c]);
    }

    p.ipc = cycles > 0.0 ? p.instructions / cycles : 0.0;
    p.cacheMpki = p.instructions > 0.0
        ? p.cacheMpki / p.instructions * 1000.0 : 0.0;
    p.branchMpki = p.instructions > 0.0
        ? p.branchMpki / p.instructions * 1000.0 : 0.0;

    const double dt = opts.tickSeconds;
    p.series.cpuLoad = TimeSeries(dt, std::move(cpu_load));
    p.series.gpuLoad = TimeSeries(dt, std::move(gpu_load));
    p.series.shadersBusy = TimeSeries(dt, std::move(shaders));
    p.series.gpuBusBusy = TimeSeries(dt, std::move(bus));
    p.series.aieLoad = TimeSeries(dt, std::move(aie_load));
    p.series.usedMemory = TimeSeries(dt, std::move(mem));
    p.series.storageUtil = TimeSeries(dt, std::move(storage_util));
    p.series.storageReadBw = TimeSeries(dt, std::move(storage_read));
    p.series.storageWriteBw = TimeSeries(dt, std::move(storage_write));
    p.series.gpuUtilization = TimeSeries(dt, std::move(gpu_util));
    p.series.gpuFrequency = TimeSeries(dt, std::move(gpu_freq));
    p.series.aieUtilization = TimeSeries(dt, std::move(aie_util));
    p.series.aieFrequency = TimeSeries(dt, std::move(aie_freq));
    p.series.textureResidency = TimeSeries(dt, std::move(tex));
    for (std::size_t c = 0; c < numClusters; ++c)
        p.series.clusterLoad[c] = TimeSeries(dt, std::move(cluster[c]));
    return p;
}

BenchmarkProfile
ProfilerSession::averageRuns(const std::vector<BenchmarkProfile> &runs)
{
    panicIf(runs.empty(), "cannot average zero profiling runs");
    BenchmarkProfile out;
    out.name = runs.front().name;
    out.suite = runs.front().suite;

    const double n = double(runs.size());
    for (const auto &r : runs) {
        out.runtimeSeconds += r.runtimeSeconds / n;
        out.instructions += r.instructions / n;
        out.ipc += r.ipc / n;
        out.cacheMpki += r.cacheMpki / n;
        out.branchMpki += r.branchMpki / n;
    }

    const auto avg = [&runs](TimeSeries MetricSeries::*member) {
        return averageSeries(runs, [member](const BenchmarkProfile &r)
                             -> const TimeSeries & {
            return r.series.*member;
        });
    };
    out.series.cpuLoad = avg(&MetricSeries::cpuLoad);
    out.series.gpuLoad = avg(&MetricSeries::gpuLoad);
    out.series.shadersBusy = avg(&MetricSeries::shadersBusy);
    out.series.gpuBusBusy = avg(&MetricSeries::gpuBusBusy);
    out.series.aieLoad = avg(&MetricSeries::aieLoad);
    out.series.usedMemory = avg(&MetricSeries::usedMemory);
    out.series.storageUtil = avg(&MetricSeries::storageUtil);
    out.series.storageReadBw = avg(&MetricSeries::storageReadBw);
    out.series.storageWriteBw = avg(&MetricSeries::storageWriteBw);
    out.series.gpuUtilization = avg(&MetricSeries::gpuUtilization);
    out.series.gpuFrequency = avg(&MetricSeries::gpuFrequency);
    out.series.aieUtilization = avg(&MetricSeries::aieUtilization);
    out.series.aieFrequency = avg(&MetricSeries::aieFrequency);
    out.series.textureResidency = avg(&MetricSeries::textureResidency);
    for (std::size_t c = 0; c < numClusters; ++c) {
        out.series.clusterLoad[c] = averageSeries(
            runs, [c](const BenchmarkProfile &r) -> const TimeSeries & {
                return r.series.clusterLoad[c];
            });
    }
    return out;
}

std::vector<BenchmarkProfile>
ProfilerSession::profileUnits(const std::vector<ExecUnit> &units) const
{
    auto &metrics = obs::MetricsRegistry::instance();
    // Touch the simulation counters up front so a fully cached run
    // still exports them (as zero) instead of omitting them — the
    // warm/cold snapshot comparison relies on `sim.ticks` being
    // present either way.
    metrics.counter("sim.ticks", obs::Volatility::Stable,
                    "Simulator ticks evaluated");
    metrics.counter("profiler.benchmarks_profiled",
                    obs::Volatility::Stable,
                    "Benchmarks profiled (cache hits included)");
    metrics.counter("profiler.runs", obs::Volatility::Stable,
                    "Per-benchmark repetition runs requested");

    // Per-unit plan: what to simulate, how to slice it back into
    // benchmarks, and whether the cache already has the answer.
    struct UnitPlan
    {
        std::vector<TimedPhase> phases;
        /** Exclusive frame-phase end per segment (whole-suite). */
        std::vector<std::size_t> phaseEnd;
        ProfileKey key;
        std::optional<std::vector<BenchmarkProfile>> cached;
        /** Index of this unit's first task in the flat task list. */
        std::size_t firstTask = 0;
    };
    struct Task
    {
        std::size_t unit = 0;
        int run = 0;
    };

    const std::uint64_t soc_digest = config().digest();
    std::vector<UnitPlan> plans(units.size());
    std::vector<Task> tasks;
    for (std::size_t i = 0; i < units.size(); ++i) {
        const ExecUnit &u = units[i];
        UnitPlan &plan = plans[i];
        if (u.bench) {
            plan.phases = u.bench->toTimedPhases();
            plan.key = ProfileKey{soc_digest, u.bench->digest(),
                                  opts.seed, opts.runs,
                                  opts.tickSeconds};
        } else {
            for (const auto &bench : u.suite->benchmarks) {
                const auto phases = bench.toTimedPhases();
                plan.phases.insert(plan.phases.end(), phases.begin(),
                                   phases.end());
                plan.phaseEnd.push_back(plan.phases.size());
            }
            plan.key = ProfileKey{soc_digest, u.suite->digest(),
                                  opts.seed, opts.runs,
                                  opts.tickSeconds};
        }
        if (opts.cache)
            plan.cached = opts.cache->load(plan.key);
        if (!plan.cached) {
            plan.firstTask = tasks.size();
            for (int r = 0; r < opts.runs; ++r)
                tasks.push_back(Task{i, r});
        }
    }

    // Fan the remaining (unit x run) simulations out. Every task owns
    // its simulator and derives its seed from the unit identity, so
    // scheduling order cannot influence any result; the slot vector
    // realizes the merge-by-submission-index contract.
    std::vector<SimulationResult> results(tasks.size());
    if (!tasks.empty()) {
        std::optional<Executor> local;
        if (!opts.executor)
            local.emplace(opts.jobs);
        Executor &exec = opts.executor ? *opts.executor : *local;
        exec.parallelFor(tasks.size(), [&](std::size_t t) {
            const Task &task = tasks[t];
            const ExecUnit &u = units[task.unit];
            SimOptions sim_opts;
            sim_opts.tickSeconds = opts.tickSeconds;
            sim_opts.seed = runSeed(opts.seed, u.name(), task.run);
            // Registry flushes happen in the serial merge below, in
            // deterministic unit order, so sampled counter series are
            // identical for any job count.
            sim_opts.deferObs = true;
            const obs::ScopedSpan runSpan(
                strformat("%s run %d", u.name().c_str(), task.run),
                "run",
                {{"seed", strformat("%llu", (unsigned long long)
                                    sim_opts.seed)}});
            const SocSimulator sim(config());
            results[t] = sim.run(plans[task.unit].phases, sim_opts);
        });
    }

    // Serial merge in unit order: job count and worker scheduling are
    // invisible from here on.
    std::vector<BenchmarkProfile> out;
    auto &progress = obs::Progress::instance();
    for (std::size_t i = 0; i < units.size(); ++i) {
        const ExecUnit &u = units[i];
        UnitPlan &plan = plans[i];
        if (plan.cached) {
            progress.step(u.name() + " (cached)");
            for (auto &p : *plan.cached)
                out.push_back(std::move(p));
            // Cached units advance zero logical ticks but still leave
            // a checkpoint so warm and cold runs have the same sample
            // structure.
            obs::EventLog::instance().emit(
                "profiler.unit",
                {{"name", u.name()}, {"cached", "true"}});
            obs::TimeSeriesSampler::instance().sample(
                obs::ClockDomain::Logical, u.name());
            continue;
        }

        std::vector<BenchmarkProfile> profiles;
        if (u.bench) {
            const obs::ScopedSpan benchSpan(
                u.bench->name(), "benchmark",
                {{"suite", u.bench->suiteName()}});
            progress.step(u.bench->name());
            std::vector<BenchmarkProfile> per_run;
            for (int r = 0; r < opts.runs; ++r) {
                const SimulationResult &result =
                    results[plan.firstTask + std::size_t(r)];
                std::vector<const CounterFrame *> frames;
                frames.reserve(result.frames.size());
                for (const auto &f : result.frames)
                    frames.push_back(&f);
                per_run.push_back(extractProfile(*u.bench, frames));
            }
            profiles.push_back(averageRuns(per_run));
            metrics.counter("profiler.benchmarks_profiled").add();
        } else {
            // Whole-suite execution: split each run's frame stream
            // back into segments using the recorded phase indices.
            const obs::ScopedSpan suiteSpan(
                u.suite->name, "benchmark",
                {{"segments",
                  strformat("%zu", u.suite->benchmarks.size())}});
            progress.step(u.suite->name + " (whole suite)");
            std::vector<std::vector<BenchmarkProfile>>
                per_segment_runs(u.suite->benchmarks.size());
            for (int r = 0; r < opts.runs; ++r) {
                const SimulationResult &result =
                    results[plan.firstTask + std::size_t(r)];
                std::size_t segment = 0;
                std::vector<const CounterFrame *> frames;
                auto flush = [&]() {
                    per_segment_runs[segment].push_back(extractProfile(
                        u.suite->benchmarks[segment], frames));
                    frames.clear();
                };
                for (const auto &f : result.frames) {
                    while (f.phaseIndex >= plan.phaseEnd[segment]) {
                        flush();
                        ++segment;
                        panicIf(segment >= u.suite->benchmarks.size(),
                                "frame beyond the last suite segment");
                    }
                    frames.push_back(&f);
                }
                flush();
                panicIf(segment + 1 != u.suite->benchmarks.size(),
                        "whole-suite run did not cover every segment");
            }
            for (auto &runs : per_segment_runs)
                profiles.push_back(averageRuns(runs));
            metrics.counter("profiler.benchmarks_profiled")
                .add(u.suite->benchmarks.size());
        }
        metrics.counter("profiler.runs").add(std::uint64_t(opts.runs));

        // Deferred simulator stats flush: aggregate this unit's runs
        // in run order, flush once, then advance the logical clock and
        // snapshot. Identical for any job count by construction.
        SimStats unitStats;
        for (int r = 0; r < opts.runs; ++r)
            unitStats.add(results[plan.firstTask + std::size_t(r)].stats);
        unitStats.flushToRegistry();
        auto &sampler = obs::TimeSeriesSampler::instance();
        sampler.advance(unitStats.ticks);
        sampler.sample(obs::ClockDomain::Logical, u.name());
        obs::EventLog::instance().emit(
            "profiler.unit",
            {{"name", u.name()},
             {"runs", strformat("%d", opts.runs)},
             {"ticks", strformat("%llu",
                                 (unsigned long long)unitStats.ticks)},
             {"cached", "false"}});

        if (opts.cache)
            opts.cache->save(plan.key, profiles);
        for (auto &p : profiles)
            out.push_back(std::move(p));
    }
    return out;
}

BenchmarkProfile
ProfilerSession::profile(const Benchmark &benchmark) const
{
    ExecUnit unit;
    unit.bench = &benchmark;
    auto profiles = profileUnits({unit});
    panicIf(profiles.size() != 1,
            "profiling one benchmark yielded != 1 profile");
    return std::move(profiles.front());
}

std::vector<BenchmarkProfile>
ProfilerSession::profileSuite(const Suite &suite) const
{
    std::vector<ExecUnit> units;
    if (suite.runsAsWhole) {
        ExecUnit unit;
        unit.suite = &suite;
        units.push_back(unit);
    } else {
        for (const auto &bench : suite.benchmarks) {
            ExecUnit unit;
            unit.bench = &bench;
            units.push_back(unit);
        }
    }
    return profileUnits(units);
}

std::vector<BenchmarkProfile>
ProfilerSession::profileAll(const WorkloadRegistry &registry) const
{
    // Progress total counts one step per independently profiled
    // benchmark, or one per whole-suite execution.
    std::vector<ExecUnit> units;
    for (const auto &suite : registry.suites()) {
        if (suite.runsAsWhole) {
            ExecUnit unit;
            unit.suite = &suite;
            units.push_back(unit);
        } else {
            for (const auto &bench : suite.benchmarks) {
                ExecUnit unit;
                unit.bench = &bench;
                units.push_back(unit);
            }
        }
    }
    obs::Progress::instance().begin(units.size(),
                                    "profiling all suites");
    auto out = profileUnits(units);
    obs::Progress::instance().finish();
    return out;
}

std::map<std::string, TimeSeries>
ProfilerSession::sampleCounters(
    const Benchmark &benchmark,
    const std::vector<std::string> &counter_names) const
{
    const obs::ScopedSpan benchSpan(benchmark.name(), "benchmark",
                                    {{"suite", benchmark.suiteName()}});
    SimOptions sim_opts;
    sim_opts.tickSeconds = opts.tickSeconds;
    sim_opts.seed = runSeed(opts.seed, benchmark.name(), 0);
    const SimulationResult result =
        simulator.run(benchmark.toTimedPhases(), sim_opts);

    std::map<std::string, TimeSeries> out;
    for (const auto &name : counter_names) {
        const CounterDescriptor &desc = counterCatalog.find(name);
        std::vector<double> values;
        values.reserve(result.frames.size());
        for (const auto &f : result.frames)
            values.push_back(desc.extract(f));
        out.emplace(name,
                    TimeSeries(opts.tickSeconds, std::move(values)));
    }
    return out;
}

} // namespace mbs
