#include "session.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/strings.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/trace.hh"

namespace mbs {

namespace {

/** Deterministic per-(benchmark, run) seed derivation. */
std::uint64_t
runSeed(std::uint64_t master, const std::string &bench_name, int run)
{
    std::uint64_t h = master;
    for (char c : bench_name)
        h = h * 1099511628211ULL + static_cast<unsigned char>(c);
    SplitMix64 sm(h ^ (0x9e3779b97f4a7c15ULL * std::uint64_t(run + 1)));
    return sm.next();
}

} // namespace

ProfilerSession::ProfilerSession(const SocConfig &config,
                                 const ProfileOptions &options)
    : simulator(config), opts(options), counterCatalog(config)
{
    fatalIf(opts.runs < 1, "a session needs at least one run");
    fatalIf(opts.tickSeconds <= 0.0,
            "the sampling interval must be positive");
}

BenchmarkProfile
ProfilerSession::extractProfile(
    const Benchmark &benchmark,
    const std::vector<const CounterFrame *> &frames) const
{
    BenchmarkProfile p;
    p.name = benchmark.name();
    p.suite = benchmark.suiteName();
    p.runtimeSeconds = double(frames.size()) * opts.tickSeconds;

    const double idle = double(config().memory.idleBytes);
    const double total = double(config().memory.totalBytes);

    std::vector<double> cpu_load, gpu_load, shaders, bus, aie_load, mem;
    std::vector<double> storage_util;
    std::vector<double> gpu_util, gpu_freq, aie_util, aie_freq, tex;
    std::array<std::vector<double>, numClusters> cluster;
    cpu_load.reserve(frames.size());

    double cycles = 0.0;
    for (const CounterFrame *f : frames) {
        p.instructions += f->instructions;
        cycles += f->cycles;
        p.cacheMpki += f->cacheMisses;
        p.branchMpki += f->branchMispredicts;

        cpu_load.push_back(f->cpuLoad);
        gpu_load.push_back(f->gpu.load);
        shaders.push_back(f->gpu.shadersBusy);
        bus.push_back(f->gpu.busBusy);
        aie_load.push_back(f->aie.load);
        const double used =
            std::max(0.0, double(f->memory.usedBytes) - idle);
        mem.push_back(used / total);
        storage_util.push_back(f->storage.utilization);
        gpu_util.push_back(f->gpu.utilization);
        gpu_freq.push_back(
            f->gpu.frequencyHz / config().gpu.maxFreqHz);
        aie_util.push_back(f->aie.utilization);
        aie_freq.push_back(
            f->aie.frequencyHz / config().aie.maxFreqHz);
        tex.push_back(double(f->gpu.textureBytes) / total);
        for (std::size_t c = 0; c < numClusters; ++c)
            cluster[c].push_back(f->clusterLoad[c]);
    }

    p.ipc = cycles > 0.0 ? p.instructions / cycles : 0.0;
    p.cacheMpki = p.instructions > 0.0
        ? p.cacheMpki / p.instructions * 1000.0 : 0.0;
    p.branchMpki = p.instructions > 0.0
        ? p.branchMpki / p.instructions * 1000.0 : 0.0;

    const double dt = opts.tickSeconds;
    p.series.cpuLoad = TimeSeries(dt, std::move(cpu_load));
    p.series.gpuLoad = TimeSeries(dt, std::move(gpu_load));
    p.series.shadersBusy = TimeSeries(dt, std::move(shaders));
    p.series.gpuBusBusy = TimeSeries(dt, std::move(bus));
    p.series.aieLoad = TimeSeries(dt, std::move(aie_load));
    p.series.usedMemory = TimeSeries(dt, std::move(mem));
    p.series.storageUtil = TimeSeries(dt, std::move(storage_util));
    p.series.gpuUtilization = TimeSeries(dt, std::move(gpu_util));
    p.series.gpuFrequency = TimeSeries(dt, std::move(gpu_freq));
    p.series.aieUtilization = TimeSeries(dt, std::move(aie_util));
    p.series.aieFrequency = TimeSeries(dt, std::move(aie_freq));
    p.series.textureResidency = TimeSeries(dt, std::move(tex));
    for (std::size_t c = 0; c < numClusters; ++c)
        p.series.clusterLoad[c] = TimeSeries(dt, std::move(cluster[c]));
    return p;
}

BenchmarkProfile
ProfilerSession::averageRuns(const std::vector<BenchmarkProfile> &runs)
{
    panicIf(runs.empty(), "cannot average zero profiling runs");
    BenchmarkProfile out;
    out.name = runs.front().name;
    out.suite = runs.front().suite;

    const double n = double(runs.size());
    std::vector<TimeSeries> cpu, gpu, sh, bus, aie, mem, sto;
    std::vector<TimeSeries> gu, gf, au, af, tx;
    std::array<std::vector<TimeSeries>, numClusters> cluster;
    for (const auto &r : runs) {
        out.runtimeSeconds += r.runtimeSeconds / n;
        out.instructions += r.instructions / n;
        out.ipc += r.ipc / n;
        out.cacheMpki += r.cacheMpki / n;
        out.branchMpki += r.branchMpki / n;
        cpu.push_back(r.series.cpuLoad);
        gpu.push_back(r.series.gpuLoad);
        sh.push_back(r.series.shadersBusy);
        bus.push_back(r.series.gpuBusBusy);
        aie.push_back(r.series.aieLoad);
        mem.push_back(r.series.usedMemory);
        sto.push_back(r.series.storageUtil);
        gu.push_back(r.series.gpuUtilization);
        gf.push_back(r.series.gpuFrequency);
        au.push_back(r.series.aieUtilization);
        af.push_back(r.series.aieFrequency);
        tx.push_back(r.series.textureResidency);
        for (std::size_t c = 0; c < numClusters; ++c)
            cluster[c].push_back(r.series.clusterLoad[c]);
    }
    out.series.cpuLoad = TimeSeries::average(cpu);
    out.series.gpuLoad = TimeSeries::average(gpu);
    out.series.shadersBusy = TimeSeries::average(sh);
    out.series.gpuBusBusy = TimeSeries::average(bus);
    out.series.aieLoad = TimeSeries::average(aie);
    out.series.usedMemory = TimeSeries::average(mem);
    out.series.storageUtil = TimeSeries::average(sto);
    out.series.gpuUtilization = TimeSeries::average(gu);
    out.series.gpuFrequency = TimeSeries::average(gf);
    out.series.aieUtilization = TimeSeries::average(au);
    out.series.aieFrequency = TimeSeries::average(af);
    out.series.textureResidency = TimeSeries::average(tx);
    for (std::size_t c = 0; c < numClusters; ++c)
        out.series.clusterLoad[c] = TimeSeries::average(cluster[c]);
    return out;
}

BenchmarkProfile
ProfilerSession::profile(const Benchmark &benchmark) const
{
    const obs::ScopedSpan benchSpan(benchmark.name(), "benchmark",
                                    {{"suite", benchmark.suiteName()}});
    obs::Progress::instance().step(benchmark.name());
    std::vector<BenchmarkProfile> per_run;
    for (int r = 0; r < opts.runs; ++r) {
        SimOptions sim_opts;
        sim_opts.tickSeconds = opts.tickSeconds;
        sim_opts.seed = runSeed(opts.seed, benchmark.name(), r);
        const obs::ScopedSpan runSpan(
            strformat("run %d", r), "run",
            {{"seed", strformat("%llu",
                                (unsigned long long)sim_opts.seed)}});
        const SimulationResult result =
            simulator.run(benchmark.toTimedPhases(), sim_opts);
        std::vector<const CounterFrame *> frames;
        frames.reserve(result.frames.size());
        for (const auto &f : result.frames)
            frames.push_back(&f);
        per_run.push_back(extractProfile(benchmark, frames));
    }
    auto &metrics = obs::MetricsRegistry::instance();
    metrics.counter("profiler.benchmarks_profiled").add();
    metrics.counter("profiler.runs").add(std::uint64_t(opts.runs));
    return averageRuns(per_run);
}

std::vector<BenchmarkProfile>
ProfilerSession::profileSuite(const Suite &suite) const
{
    std::vector<BenchmarkProfile> out;
    if (!suite.runsAsWhole) {
        for (const auto &bench : suite.benchmarks)
            out.push_back(profile(bench));
        return out;
    }

    // Whole-suite execution: concatenate the segments' phases, run
    // once per repetition, then split the frame stream back into
    // segments using the recorded phase indices.
    const obs::ScopedSpan suiteSpan(
        suite.name, "benchmark",
        {{"segments", strformat("%zu", suite.benchmarks.size())}});
    obs::Progress::instance().step(suite.name + " (whole suite)");
    std::vector<TimedPhase> all_phases;
    std::vector<std::size_t> phase_end; // exclusive end per segment
    for (const auto &bench : suite.benchmarks) {
        const auto phases = bench.toTimedPhases();
        all_phases.insert(all_phases.end(), phases.begin(),
                          phases.end());
        phase_end.push_back(all_phases.size());
    }

    std::vector<std::vector<BenchmarkProfile>> per_segment_runs(
        suite.benchmarks.size());
    for (int r = 0; r < opts.runs; ++r) {
        SimOptions sim_opts;
        sim_opts.tickSeconds = opts.tickSeconds;
        sim_opts.seed = runSeed(opts.seed, suite.name, r);
        const obs::ScopedSpan runSpan(
            strformat("run %d", r), "run",
            {{"seed", strformat("%llu",
                                (unsigned long long)sim_opts.seed)}});
        const SimulationResult result =
            simulator.run(all_phases, sim_opts);

        std::size_t segment = 0;
        std::vector<const CounterFrame *> frames;
        auto flush = [&]() {
            per_segment_runs[segment].push_back(
                extractProfile(suite.benchmarks[segment], frames));
            frames.clear();
        };
        for (const auto &f : result.frames) {
            while (f.phaseIndex >= phase_end[segment]) {
                flush();
                ++segment;
                panicIf(segment >= suite.benchmarks.size(),
                        "frame beyond the last suite segment");
            }
            frames.push_back(&f);
        }
        flush();
        panicIf(segment + 1 != suite.benchmarks.size(),
                "whole-suite run did not cover every segment");
    }
    for (auto &runs : per_segment_runs)
        out.push_back(averageRuns(runs));
    auto &metrics = obs::MetricsRegistry::instance();
    metrics.counter("profiler.benchmarks_profiled")
        .add(suite.benchmarks.size());
    metrics.counter("profiler.runs").add(std::uint64_t(opts.runs));
    return out;
}

std::vector<BenchmarkProfile>
ProfilerSession::profileAll(const WorkloadRegistry &registry) const
{
    // Progress total counts one step per independently profiled
    // benchmark, or one per whole-suite execution.
    std::size_t steps = 0;
    for (const auto &suite : registry.suites())
        steps += suite.runsAsWhole ? 1 : suite.benchmarks.size();
    obs::Progress::instance().begin(steps, "profiling all suites");

    std::vector<BenchmarkProfile> out;
    for (const auto &suite : registry.suites()) {
        auto profiles = profileSuite(suite);
        for (auto &p : profiles)
            out.push_back(std::move(p));
    }
    obs::Progress::instance().finish();
    return out;
}

std::map<std::string, TimeSeries>
ProfilerSession::sampleCounters(
    const Benchmark &benchmark,
    const std::vector<std::string> &counter_names) const
{
    const obs::ScopedSpan benchSpan(benchmark.name(), "benchmark",
                                    {{"suite", benchmark.suiteName()}});
    SimOptions sim_opts;
    sim_opts.tickSeconds = opts.tickSeconds;
    sim_opts.seed = runSeed(opts.seed, benchmark.name(), 0);
    const SimulationResult result =
        simulator.run(benchmark.toTimedPhases(), sim_opts);

    std::map<std::string, TimeSeries> out;
    for (const auto &name : counter_names) {
        const CounterDescriptor &desc = counterCatalog.find(name);
        std::vector<double> values;
        values.reserve(result.frames.size());
        for (const auto &f : result.frames)
            values.push_back(desc.extract(f));
        out.emplace(name,
                    TimeSeries(opts.tickSeconds, std::move(values)));
    }
    return out;
}

} // namespace mbs
