/**
 * @file
 * Trace export: write profiled metric series to CSV for external
 * plotting (the repository's equivalent of the profiler's export).
 */

#ifndef MBS_PROFILER_TRACE_HH
#define MBS_PROFILER_TRACE_HH

#include <ostream>

#include "profiler/session.hh"

namespace mbs {

/**
 * Write one benchmark profile's key metric series as CSV.
 *
 * Columns: time_s, cpu_load, gpu_load, shaders_busy, gpu_bus_busy,
 * aie_load, used_memory, little_load, mid_load, big_load.
 */
void writeProfileCsv(std::ostream &out, const BenchmarkProfile &profile);

/**
 * Write the Fig.-1 style summary of many profiles as CSV.
 *
 * Columns: benchmark, suite, runtime_s, instructions, ipc,
 * cache_mpki, branch_mpki, avg_cpu_load, avg_gpu_load, avg_aie_load,
 * avg_used_memory.
 */
void writeSummaryCsv(std::ostream &out,
                     const std::vector<BenchmarkProfile> &profiles);

} // namespace mbs

#endif // MBS_PROFILER_TRACE_HH
