/**
 * @file
 * Hardware performance counter catalog.
 *
 * The real-time profiler the paper uses exposes 190+ metrics across
 * CPU (cores, caches, branch predictor), GPU (cores, shaders, memory,
 * stalls) and AIE/system-memory/temperature categories. This catalog
 * reproduces that surface: every counter has a name, category, unit
 * and an extractor that reads it out of a simulator CounterFrame.
 */

#ifndef MBS_PROFILER_CATALOG_HH
#define MBS_PROFILER_CATALOG_HH

#include <functional>
#include <string>
#include <vector>

#include "soc/config.hh"
#include "soc/counters.hh"

namespace mbs {

/** Top-level counter categories, mirroring the profiler's grouping. */
enum class CounterCategory
{
    Cpu,
    Gpu,
    Aie,
    Memory,
    Storage,
    Thermal,
};

/** @return printable category name. */
std::string counterCategoryName(CounterCategory category);

/** One hardware performance counter. */
struct CounterDescriptor
{
    /** Unique name, e.g. "cpu.big.core0.load". */
    std::string name;
    CounterCategory category = CounterCategory::Cpu;
    /** Unit string, e.g. "Hz", "ratio", "count", "bytes", "degC". */
    std::string unit;
    /** Reads the counter value out of one frame. */
    std::function<double(const CounterFrame &)> extract;
};

/**
 * Catalog of all counters available for a given SoC.
 *
 * Per-core counters are synthesized from cluster state (cores within
 * a cluster behave near-identically, as the paper notes); thermal
 * counters are crude activity proxies, present because the real tool
 * reports them, excluded from analysis as the paper's limitations
 * section explains.
 */
class CounterCatalog
{
  public:
    explicit CounterCatalog(const SocConfig &config);

    const std::vector<CounterDescriptor> &counters() const
    {
        return counterList;
    }

    std::size_t size() const { return counterList.size(); }

    /** @return the descriptor named @p name; fatal() if absent. */
    const CounterDescriptor &find(const std::string &name) const;

    /** @return true if a counter named @p name exists. */
    bool has(const std::string &name) const;

    /** @return all counters in @p category. */
    std::vector<const CounterDescriptor *>
    inCategory(CounterCategory category) const;

  private:
    void addCpuCounters(const SocConfig &config);
    void addGpuCounters(const SocConfig &config);
    void addAieCounters(const SocConfig &config);
    void addMemoryCounters(const SocConfig &config);
    void addStorageCounters(const SocConfig &config);
    void addThermalCounters(const SocConfig &config);

    void add(std::string name, CounterCategory category,
             std::string unit,
             std::function<double(const CounterFrame &)> extract);

    std::vector<CounterDescriptor> counterList;
};

} // namespace mbs

#endif // MBS_PROFILER_CATALOG_HH
