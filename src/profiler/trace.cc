#include "trace.hh"

#include "common/csv.hh"
#include "common/strings.hh"

namespace mbs {

void
writeProfileCsv(std::ostream &out, const BenchmarkProfile &profile)
{
    CsvWriter csv(out);
    csv.writeRow(std::vector<std::string>{
        "time_s", "cpu_load", "gpu_load", "shaders_busy",
        "gpu_bus_busy", "aie_load", "used_memory", "little_load",
        "mid_load", "big_load"});
    const MetricSeries &s = profile.series;
    const std::size_t n = s.cpuLoad.size();
    for (std::size_t i = 0; i < n; ++i) {
        csv.writeRow(std::vector<double>{
            double(i) * s.cpuLoad.interval(),
            s.cpuLoad[i],
            s.gpuLoad[i],
            s.shadersBusy[i],
            s.gpuBusBusy[i],
            s.aieLoad[i],
            s.usedMemory[i],
            s.clusterLoad[std::size_t(ClusterId::Little)][i],
            s.clusterLoad[std::size_t(ClusterId::Mid)][i],
            s.clusterLoad[std::size_t(ClusterId::Big)][i],
        });
    }
}

void
writeSummaryCsv(std::ostream &out,
                const std::vector<BenchmarkProfile> &profiles)
{
    CsvWriter csv(out);
    csv.writeRow(std::vector<std::string>{
        "benchmark", "suite", "runtime_s", "instructions", "ipc",
        "cache_mpki", "branch_mpki", "avg_cpu_load", "avg_gpu_load",
        "avg_aie_load", "avg_used_memory"});
    for (const auto &p : profiles) {
        csv.writeRow(std::vector<std::string>{
            p.name,
            p.suite,
            strformat("%.2f", p.runtimeSeconds),
            strformat("%.4g", p.instructions),
            strformat("%.4f", p.ipc),
            strformat("%.4f", p.cacheMpki),
            strformat("%.4f", p.branchMpki),
            strformat("%.4f", p.avgCpuLoad()),
            strformat("%.4f", p.avgGpuLoad()),
            strformat("%.4f", p.avgAieLoad()),
            strformat("%.4f", p.avgUsedMemory()),
        });
    }
}

} // namespace mbs
