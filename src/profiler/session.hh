/**
 * @file
 * Profiling sessions: run benchmarks on the simulated SoC, sample
 * counters, average across runs and package the metrics the paper's
 * analyses consume.
 *
 * Methodology mirrored from the paper (§IV): every benchmark is run
 * three times and metrics are averaged across runs; Antutu executes
 * as a whole suite and its statistics are segmented back into the
 * four constituent parts; memory usage has the measured idle baseline
 * subtracted.
 */

#ifndef MBS_PROFILER_SESSION_HH
#define MBS_PROFILER_SESSION_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/executor.hh"
#include "profiler/catalog.hh"
#include "profiler/profile_cache.hh"
#include "soc/simulator.hh"
#include "stats/time_series.hh"
#include "workload/benchmark.hh"
#include "workload/registry.hh"

namespace mbs {

/** Options of a profiling session. */
struct ProfileOptions
{
    /** Sampling interval in seconds (real-time profiler cadence). */
    double tickSeconds = 0.1;
    /** Runs per benchmark, averaged (the paper uses 3). */
    int runs = 3;
    /** Master seed; run r of benchmark b uses a derived substream. */
    std::uint64_t seed = 20240501;
    /**
     * Simulation worker threads; 1 runs serially, 0 uses all cores.
     * Results are merged by submission index, so every job count
     * produces bit-identical profiles.
     */
    int jobs = 1;
    /**
     * Optional memoization cache consulted per profiled unit
     * (non-owning; the caller keeps it alive for the session).
     */
    ProfileCache *cache = nullptr;
    /**
     * Optional pre-built executor to fan simulations across
     * (non-owning; the caller keeps it alive). When null, each
     * profiling call builds its own `jobs`-wide pool. The serve
     * daemon shares one pool across every job it runs so worker
     * threads are created once per process, not once per request.
     */
    Executor *executor = nullptr;
};

/** The six Fig.-2 metric series plus per-cluster loads (Fig. 3). */
struct MetricSeries
{
    TimeSeries cpuLoad;
    TimeSeries gpuLoad;
    TimeSeries shadersBusy;
    TimeSeries gpuBusBusy;
    TimeSeries aieLoad;
    /** Fraction of total memory used, idle baseline subtracted. */
    TimeSeries usedMemory;
    /** Flash-controller busy fraction. */
    TimeSeries storageUtil;
    /** Storage read bandwidth in bytes/s. */
    TimeSeries storageReadBw;
    /** Storage write bandwidth in bytes/s. */
    TimeSeries storageWriteBw;
    /** GPU busy fraction (utilization, unscaled by frequency). */
    TimeSeries gpuUtilization;
    /** GPU frequency as a fraction of its maximum. */
    TimeSeries gpuFrequency;
    /** AIE busy fraction. */
    TimeSeries aieUtilization;
    /** AIE frequency as a fraction of its maximum. */
    TimeSeries aieFrequency;
    /** GPU-resident texture bytes as a fraction of total memory. */
    TimeSeries textureResidency;
    /** Per-cluster loads indexed by ClusterId. */
    std::array<TimeSeries, numClusters> clusterLoad;
};

/** Number of series in a MetricSeries (fixed by the struct shape). */
constexpr std::size_t metricSeriesCount = 14 + numClusters;

/**
 * Canonical counter name of clusterLoad[@p cluster]
 * ("cpu.little.load", "cpu.mid.load", "cpu.big.load").
 */
const char *clusterLoadSeriesName(std::size_t cluster);

/**
 * Apply @p fn to every series of a MetricSeries in the one canonical
 * order, with its catalog counter name. This order is load-bearing:
 * the store serializer and the trace-bundle reader/writer all iterate
 * through here, so the cache format and the ingest schema can never
 * disagree about which series is which.
 */
template <typename Series, typename Fn>
void
forEachMetricSeries(Series &series, Fn fn)
{
    fn("cpu.load", series.cpuLoad);
    fn("gpu.load", series.gpuLoad);
    fn("gpu.shaders.busy", series.shadersBusy);
    fn("gpu.bus.busy", series.gpuBusBusy);
    fn("aie.load", series.aieLoad);
    fn("mem.used.minus.idle.fraction", series.usedMemory);
    fn("storage.utilization", series.storageUtil);
    fn("storage.read.bandwidth", series.storageReadBw);
    fn("storage.write.bandwidth", series.storageWriteBw);
    fn("gpu.utilization", series.gpuUtilization);
    fn("gpu.frequency.fraction", series.gpuFrequency);
    fn("aie.utilization", series.aieUtilization);
    fn("aie.frequency.fraction", series.aieFrequency);
    fn("gpu.texture.residency", series.textureResidency);
    for (std::size_t c = 0; c < numClusters; ++c)
        fn(clusterLoadSeriesName(c), series.clusterLoad[c]);
}

/** Averaged profile of one benchmark unit. */
struct BenchmarkProfile
{
    std::string name;
    std::string suite;

    /** Mean measured runtime in seconds. */
    double runtimeSeconds = 0.0;
    /** Mean dynamic instruction count. */
    double instructions = 0.0;
    /** Mean aggregate IPC. */
    double ipc = 0.0;
    /** Mean cache misses per kilo-instruction (all levels). */
    double cacheMpki = 0.0;
    /** Mean branch mispredicts per kilo-instruction. */
    double branchMpki = 0.0;

    MetricSeries series;

    /** Time-averaged value of each key metric series. */
    double avgCpuLoad() const { return series.cpuLoad.mean(); }
    double avgGpuLoad() const { return series.gpuLoad.mean(); }
    double avgShadersBusy() const { return series.shadersBusy.mean(); }
    double avgGpuBusBusy() const { return series.gpuBusBusy.mean(); }
    double avgAieLoad() const { return series.aieLoad.mean(); }
    double avgUsedMemory() const { return series.usedMemory.mean(); }
    double avgStorageUtil() const { return series.storageUtil.mean(); }
    double avgStorageReadBw() const
    {
        return series.storageReadBw.mean();
    }
    double avgStorageWriteBw() const
    {
        return series.storageWriteBw.mean();
    }
    double avgGpuUtilization() const
    {
        return series.gpuUtilization.mean();
    }
    double avgGpuFrequency() const { return series.gpuFrequency.mean(); }
    double avgAieUtilization() const
    {
        return series.aieUtilization.mean();
    }
    double avgAieFrequency() const { return series.aieFrequency.mean(); }
    double avgTextureResidency() const
    {
        return series.textureResidency.mean();
    }
};

/**
 * A profiling session against one SoC configuration.
 */
class ProfilerSession
{
  public:
    /**
     * @param config SoC to profile on (defaults match the paper's
     *        Snapdragon 888 HDK).
     * @param options Sampling cadence, run count, seed.
     */
    explicit ProfilerSession(const SocConfig &config,
                             const ProfileOptions &options = {});

    /** Profile one benchmark unit: @p runs simulations, averaged. */
    BenchmarkProfile profile(const Benchmark &benchmark) const;

    /**
     * Profile a whole suite. Suites flagged runsAsWhole (Antutu) are
     * executed as one concatenated run per repetition and segmented
     * back into units; others profile each benchmark independently.
     */
    std::vector<BenchmarkProfile> profileSuite(const Suite &suite) const;

    /** Profile every unit of every suite in the registry. */
    std::vector<BenchmarkProfile>
    profileAll(const WorkloadRegistry &registry) const;

    /**
     * Sample arbitrary catalog counters for one benchmark (single
     * run): counter name -> time series.
     */
    std::map<std::string, TimeSeries>
    sampleCounters(const Benchmark &benchmark,
                   const std::vector<std::string> &counter_names) const;

    const CounterCatalog &catalog() const { return counterCatalog; }
    const SocConfig &config() const { return simulator.config(); }
    const ProfileOptions &options() const { return opts; }

  private:
    /**
     * One unit of profiling work: either a single benchmark or a
     * whole-suite execution (defined in session.cc).
     */
    struct ExecUnit;

    /**
     * Profile a list of units: consult the cache, fan the remaining
     * (unit x run) simulations across `opts.jobs` workers, then merge
     * serially in unit order so the output is independent of the job
     * count.
     */
    std::vector<BenchmarkProfile>
    profileUnits(const std::vector<ExecUnit> &units) const;

    /** Extract one run's metric bundle from a frame range. */
    BenchmarkProfile extractProfile(
        const Benchmark &benchmark,
        const std::vector<const CounterFrame *> &frames) const;

    /** Average @p runs per-run profiles into one. */
    static BenchmarkProfile
    averageRuns(const std::vector<BenchmarkProfile> &runs);

    SocSimulator simulator;
    ProfileOptions opts;
    CounterCatalog counterCatalog;
};

} // namespace mbs

#endif // MBS_PROFILER_SESSION_HH
