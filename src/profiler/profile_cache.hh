/**
 * @file
 * Cache abstraction the profiler consults before simulating.
 *
 * The key captures everything a profiling result is a pure function
 * of: the SoC configuration digest, the benchmark (or whole-suite)
 * phase-table digest, the master seed, the run count and the sampling
 * cadence. Equal keys therefore imply bit-identical profiles, which
 * is what makes memoization safe. The concrete on-disk implementation
 * lives in src/store (ProfileStore); the profiler only sees this
 * interface, keeping the dependency one-directional
 * (store -> profiler).
 */

#ifndef MBS_PROFILER_PROFILE_CACHE_HH
#define MBS_PROFILER_PROFILE_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace mbs {

struct BenchmarkProfile;

/** Identity of one profiling result (one benchmark or whole suite). */
struct ProfileKey
{
    /** SocConfig::digest() of the simulated SoC. */
    std::uint64_t socDigest = 0;
    /** Benchmark::digest() or Suite::digest() of the workload. */
    std::uint64_t benchDigest = 0;
    /** Master seed of the session (per-run seeds derive from it). */
    std::uint64_t seed = 0;
    /** Runs averaged into the profile. */
    int runs = 0;
    /** Sampling interval in seconds. */
    double tickSeconds = 0.0;

    bool operator==(const ProfileKey &) const = default;
};

/**
 * Memoized profiles keyed by content identity.
 *
 * A load() miss returns nullopt; implementations must treat any
 * unreadable or stale entry as a miss, never as an error, so a
 * corrupt cache can only cost time, not correctness.
 */
class ProfileCache
{
  public:
    virtual ~ProfileCache() = default;

    /** @return the stored profiles for @p key, or nullopt on miss. */
    virtual std::optional<std::vector<BenchmarkProfile>>
    load(const ProfileKey &key) = 0;

    /** Store @p profiles under @p key, replacing any prior entry. */
    virtual void save(const ProfileKey &key,
                      const std::vector<BenchmarkProfile> &profiles) = 0;
};

} // namespace mbs

#endif // MBS_PROFILER_PROFILE_CACHE_HH
