#include "catalog.hh"

#include "common/logging.hh"
#include "common/strings.hh"

namespace mbs {

namespace {

/** Short cluster tag for counter names: "little", "mid", "big". */
const char *
clusterTag(std::size_t c)
{
    switch (c) {
      case 0:
        return "little";
      case 1:
        return "mid";
      case 2:
        return "big";
      default:
        panic("cluster index out of range");
    }
}

} // namespace

std::string
counterCategoryName(CounterCategory category)
{
    switch (category) {
      case CounterCategory::Cpu:
        return "CPU";
      case CounterCategory::Gpu:
        return "GPU";
      case CounterCategory::Aie:
        return "AIE";
      case CounterCategory::Memory:
        return "Memory";
      case CounterCategory::Storage:
        return "Storage";
      case CounterCategory::Thermal:
        return "Thermal";
    }
    panic("unknown counter category");
}

CounterCatalog::CounterCatalog(const SocConfig &config)
{
    addCpuCounters(config);
    addGpuCounters(config);
    addAieCounters(config);
    addMemoryCounters(config);
    addStorageCounters(config);
    addThermalCounters(config);
}

void
CounterCatalog::add(std::string name, CounterCategory category,
                    std::string unit,
                    std::function<double(const CounterFrame &)> extract)
{
    panicIf(has(name), "duplicate counter '" + name + "'");
    counterList.push_back(CounterDescriptor{
        std::move(name), category, std::move(unit), std::move(extract)});
}

void
CounterCatalog::addCpuCounters(const SocConfig &config)
{
    // Aggregate CPU counters.
    add("cpu.load", CounterCategory::Cpu, "ratio",
        [](const CounterFrame &f) { return f.cpuLoad; });
    add("cpu.instructions", CounterCategory::Cpu, "count",
        [](const CounterFrame &f) { return f.instructions; });
    add("cpu.cycles", CounterCategory::Cpu, "count",
        [](const CounterFrame &f) { return f.cycles; });
    add("cpu.ipc", CounterCategory::Cpu, "ratio",
        [](const CounterFrame &f) { return f.ipc; });
    add("cpu.cpi", CounterCategory::Cpu, "ratio",
        [](const CounterFrame &f) {
            return f.ipc > 0.0 ? 1.0 / f.ipc : 0.0;
        });
    add("cpu.branch.mispredicts", CounterCategory::Cpu, "count",
        [](const CounterFrame &f) { return f.branchMispredicts; });
    add("cpu.branch.mpki", CounterCategory::Cpu, "per-kiloinst",
        [](const CounterFrame &f) {
            return f.instructions > 0.0
                ? f.branchMispredicts / f.instructions * 1000.0 : 0.0;
        });

    // Cache counters per level plus totals.
    static const char *levels[] = {"l1", "l2", "l3", "slc"};
    for (std::size_t lvl = 0; lvl < 4; ++lvl) {
        add(strformat("cpu.cache.%s.misses", levels[lvl]),
            CounterCategory::Cpu, "count",
            [lvl](const CounterFrame &f) {
                return f.cacheMissesByLevel[lvl];
            });
        add(strformat("cpu.cache.%s.mpki", levels[lvl]),
            CounterCategory::Cpu, "per-kiloinst",
            [lvl](const CounterFrame &f) {
                return f.instructions > 0.0
                    ? f.cacheMissesByLevel[lvl] / f.instructions * 1000.0
                    : 0.0;
            });
    }
    add("cpu.cache.total.misses", CounterCategory::Cpu, "count",
        [](const CounterFrame &f) { return f.cacheMisses; });
    add("cpu.cache.total.mpki", CounterCategory::Cpu, "per-kiloinst",
        [](const CounterFrame &f) {
            return f.instructions > 0.0
                ? f.cacheMisses / f.instructions * 1000.0 : 0.0;
        });

    std::array<int, numClusters> core_counts{};
    for (std::size_t c = 0; c < numClusters; ++c)
        core_counts[c] = config.clusters[c].cores;
    add("cpu.utilization", CounterCategory::Cpu, "ratio",
        [core_counts](const CounterFrame &f) {
            double sum = 0.0;
            int cores = 0;
            for (std::size_t c = 0; c < numClusters; ++c) {
                sum += f.clusterUtilization[c] *
                    double(core_counts[c]);
                cores += core_counts[c];
            }
            return cores > 0 ? sum / double(cores) : 0.0;
        });
    add("cpu.mem.accesses", CounterCategory::Cpu, "count",
        [](const CounterFrame &f) { return f.instructions * 0.33; });
    add("cpu.branch.count", CounterCategory::Cpu, "count",
        [](const CounterFrame &f) { return f.instructions * 0.16; });
    add("cpu.mem.bandwidth.proxy", CounterCategory::Cpu, "bytes/s",
        [](const CounterFrame &f) { return f.cacheMisses * 64.0; });

    // Per-cluster counters.
    for (std::size_t c = 0; c < numClusters; ++c) {
        const std::string prefix = strformat("cpu.%s", clusterTag(c));
        const double max_freq = config.clusters[c].maxFreqHz;
        add(prefix + ".utilization", CounterCategory::Cpu, "ratio",
            [c](const CounterFrame &f) {
                return f.clusterUtilization[c];
            });
        add(prefix + ".frequency", CounterCategory::Cpu, "Hz",
            [c](const CounterFrame &f) {
                return f.clusterFrequencyHz[c];
            });
        add(prefix + ".load", CounterCategory::Cpu, "ratio",
            [c](const CounterFrame &f) { return f.clusterLoad[c]; });
        add(prefix + ".threads", CounterCategory::Cpu, "count",
            [c](const CounterFrame &f) {
                return double(f.clusterThreads[c]);
            });
        add(prefix + ".ipc", CounterCategory::Cpu, "ratio",
            [](const CounterFrame &f) { return f.ipc; });
        add(prefix + ".cpi", CounterCategory::Cpu, "ratio",
            [](const CounterFrame &f) {
                return f.ipc > 0.0 ? 1.0 / f.ipc : 0.0;
            });
        add(prefix + ".instructions", CounterCategory::Cpu, "count",
            [c](const CounterFrame &f) {
                return f.instructions * f.clusterUtilization[c];
            });
        add(prefix + ".cycles", CounterCategory::Cpu, "count",
            [c](const CounterFrame &f) {
                return f.cycles * f.clusterUtilization[c];
            });
        add(prefix + ".cache.misses", CounterCategory::Cpu, "count",
            [c](const CounterFrame &f) {
                return f.cacheMisses * f.clusterUtilization[c];
            });
        add(prefix + ".branch.mispredicts", CounterCategory::Cpu,
            "count",
            [c](const CounterFrame &f) {
                return f.branchMispredicts * f.clusterUtilization[c];
            });
        add(prefix + ".dvfs.at.max", CounterCategory::Cpu, "ratio",
            [c, max_freq](const CounterFrame &f) {
                return f.clusterFrequencyHz[c] >= max_freq * 0.999
                    ? 1.0 : 0.0;
            });
    }

    // Per-core counters, synthesized from cluster state: the paper
    // observes that cores in a cluster have near-identical loads.
    int core_id = 0;
    for (std::size_t c = 0; c < numClusters; ++c) {
        const int cores = config.clusters[c].cores;
        for (int k = 0; k < cores; ++k, ++core_id) {
            const std::string prefix =
                strformat("cpu.core%d", core_id);
            const double share = 1.0 / double(config.totalCores());
            add(prefix + ".utilization", CounterCategory::Cpu, "ratio",
                [c](const CounterFrame &f) {
                    return f.clusterUtilization[c];
                });
            add(prefix + ".frequency", CounterCategory::Cpu, "Hz",
                [c](const CounterFrame &f) {
                    return f.clusterFrequencyHz[c];
                });
            add(prefix + ".load", CounterCategory::Cpu, "ratio",
                [c](const CounterFrame &f) {
                    return f.clusterLoad[c];
                });
            add(prefix + ".instructions", CounterCategory::Cpu,
                "count",
                [share](const CounterFrame &f) {
                    return f.instructions * share;
                });
            add(prefix + ".cycles", CounterCategory::Cpu, "count",
                [share](const CounterFrame &f) {
                    return f.cycles * share;
                });
            add(prefix + ".ipc", CounterCategory::Cpu, "ratio",
                [](const CounterFrame &f) { return f.ipc; });
            add(prefix + ".cache.misses", CounterCategory::Cpu,
                "count",
                [share](const CounterFrame &f) {
                    return f.cacheMisses * share;
                });
            add(prefix + ".cache.l1.misses", CounterCategory::Cpu,
                "count",
                [share](const CounterFrame &f) {
                    return f.cacheMissesByLevel[0] * share;
                });
            add(prefix + ".cache.l2.misses", CounterCategory::Cpu,
                "count",
                [share](const CounterFrame &f) {
                    return f.cacheMissesByLevel[1] * share;
                });
            add(prefix + ".branch.mispredicts", CounterCategory::Cpu,
                "count",
                [share](const CounterFrame &f) {
                    return f.branchMispredicts * share;
                });
            add(prefix + ".branch.mpki", CounterCategory::Cpu,
                "per-kiloinst",
                [](const CounterFrame &f) {
                    return f.instructions > 0.0
                        ? f.branchMispredicts / f.instructions * 1000.0
                        : 0.0;
                });
        }
    }
}

void
CounterCatalog::addGpuCounters(const SocConfig &config)
{
    add("gpu.utilization", CounterCategory::Gpu, "ratio",
        [](const CounterFrame &f) { return f.gpu.utilization; });
    add("gpu.frequency", CounterCategory::Gpu, "Hz",
        [](const CounterFrame &f) { return f.gpu.frequencyHz; });
    add("gpu.load", CounterCategory::Gpu, "ratio",
        [](const CounterFrame &f) { return f.gpu.load; });
    add("gpu.shaders.busy", CounterCategory::Gpu, "ratio",
        [](const CounterFrame &f) { return f.gpu.shadersBusy; });
    add("gpu.shaders.stalled", CounterCategory::Gpu, "ratio",
        [](const CounterFrame &f) {
            return f.gpu.utilization - f.gpu.shadersBusy >= 0.0
                ? f.gpu.utilization - f.gpu.shadersBusy : 0.0;
        });
    add("gpu.bus.busy", CounterCategory::Gpu, "ratio",
        [](const CounterFrame &f) { return f.gpu.busBusy; });
    add("gpu.texture.bytes", CounterCategory::Gpu, "bytes",
        [](const CounterFrame &f) {
            return double(f.gpu.textureBytes);
        });
    add("gpu.l1tex.miss.proxy", CounterCategory::Gpu, "ratio",
        [](const CounterFrame &f) {
            // Texture L1 pressure follows streaming bandwidth.
            return f.gpu.busBusy * 0.8;
        });
    // Per-shader-core busy counters.
    for (int s = 0; s < config.gpu.shaderCores; ++s) {
        add(strformat("gpu.shader%d.busy", s), CounterCategory::Gpu,
            "ratio",
            [](const CounterFrame &f) { return f.gpu.shadersBusy; });
    }
    // Pipeline-stage utilization proxies the real tool exposes.
    static const char *stages[] = {
        "vertex.fetch", "tess", "fragment.alu", "fragment.tex",
        "rop", "dispatch"
    };
    for (const char *stage : stages) {
        add(strformat("gpu.stage.%s.busy", stage),
            CounterCategory::Gpu, "ratio",
            [](const CounterFrame &f) {
                return f.gpu.utilization;
            });
        add(strformat("gpu.stage.%s.stalled", stage),
            CounterCategory::Gpu, "ratio",
            [](const CounterFrame &f) {
                return f.gpu.busBusy * 0.3;
            });
    }
    add("gpu.bus.read.busy", CounterCategory::Gpu, "ratio",
        [](const CounterFrame &f) { return f.gpu.busBusy * 0.7; });
    add("gpu.bus.write.busy", CounterCategory::Gpu, "ratio",
        [](const CounterFrame &f) { return f.gpu.busBusy * 0.3; });
    add("gpu.frames.proxy", CounterCategory::Gpu, "count",
        [](const CounterFrame &f) { return f.gpu.load * 60.0; });
    add("gpu.drawcalls.proxy", CounterCategory::Gpu, "count",
        [](const CounterFrame &f) {
            return f.gpu.utilization * 500.0;
        });
}

void
CounterCatalog::addAieCounters(const SocConfig &)
{
    add("aie.utilization", CounterCategory::Aie, "ratio",
        [](const CounterFrame &f) { return f.aie.utilization; });
    add("aie.frequency", CounterCategory::Aie, "Hz",
        [](const CounterFrame &f) { return f.aie.frequencyHz; });
    add("aie.load", CounterCategory::Aie, "ratio",
        [](const CounterFrame &f) { return f.aie.load; });
    add("aie.cpu.bounce", CounterCategory::Aie, "ratio",
        [](const CounterFrame &f) { return f.aie.cpuBounceDemand; });
    // Execution-unit splits the real tool exposes for the DSP.
    add("aie.vector.utilization", CounterCategory::Aie, "ratio",
        [](const CounterFrame &f) {
            return f.aie.utilization * 0.7;
        });
    add("aie.scalar.utilization", CounterCategory::Aie, "ratio",
        [](const CounterFrame &f) {
            return f.aie.utilization * 0.25;
        });
    add("aie.tensor.utilization", CounterCategory::Aie, "ratio",
        [](const CounterFrame &f) {
            return f.aie.utilization * 0.5;
        });
}

void
CounterCatalog::addMemoryCounters(const SocConfig &config)
{
    add("mem.used.bytes", CounterCategory::Memory, "bytes",
        [](const CounterFrame &f) {
            return double(f.memory.usedBytes);
        });
    add("mem.used.fraction", CounterCategory::Memory, "ratio",
        [](const CounterFrame &f) { return f.memory.usedFraction; });
    const double idle = double(config.memory.idleBytes);
    const double total = double(config.memory.totalBytes);
    add("mem.used.minus.idle.bytes", CounterCategory::Memory, "bytes",
        [idle](const CounterFrame &f) {
            const double used = double(f.memory.usedBytes) - idle;
            return used > 0.0 ? used : 0.0;
        });
    add("mem.used.minus.idle.fraction", CounterCategory::Memory,
        "ratio",
        [idle, total](const CounterFrame &f) {
            const double used = double(f.memory.usedBytes) - idle;
            return used > 0.0 ? used / total : 0.0;
        });
    add("mem.free.bytes", CounterCategory::Memory, "bytes",
        [total](const CounterFrame &f) {
            return total - double(f.memory.usedBytes);
        });
    add("mem.idle.baseline.bytes", CounterCategory::Memory, "bytes",
        [idle](const CounterFrame &) { return idle; });
}

void
CounterCatalog::addStorageCounters(const SocConfig &)
{
    add("storage.bandwidth", CounterCategory::Storage, "bytes/s",
        [](const CounterFrame &f) { return f.storage.bandwidth; });
    add("storage.utilization", CounterCategory::Storage, "ratio",
        [](const CounterFrame &f) { return f.storage.utilization; });
    add("storage.read.bandwidth", CounterCategory::Storage, "bytes/s",
        [](const CounterFrame &f) { return f.storage.readBandwidth; });
    add("storage.write.bandwidth", CounterCategory::Storage, "bytes/s",
        [](const CounterFrame &f) { return f.storage.writeBandwidth; });
}

void
CounterCatalog::addThermalCounters(const SocConfig &)
{
    // Crude activity-proxy temperatures. Present because the real
    // tool reports them; the paper's limitations exclude them from
    // analysis (no battery/casing on the development board).
    add("thermal.cpu.degC", CounterCategory::Thermal, "degC",
        [](const CounterFrame &f) {
            return 35.0 + 40.0 * f.cpuLoad;
        });
    add("thermal.gpu.degC", CounterCategory::Thermal, "degC",
        [](const CounterFrame &f) {
            return 35.0 + 35.0 * f.gpu.load;
        });
    add("thermal.soc.degC", CounterCategory::Thermal, "degC",
        [](const CounterFrame &f) {
            return 35.0 + 25.0 * (f.cpuLoad + f.gpu.load +
                                  f.aie.load) / 3.0;
        });
    for (std::size_t c = 0; c < numClusters; ++c) {
        add(strformat("thermal.cpu.%s.degC", clusterTag(c)),
            CounterCategory::Thermal, "degC",
            [c](const CounterFrame &f) {
                return 35.0 + 42.0 * f.clusterLoad[c];
            });
    }
}

const CounterDescriptor &
CounterCatalog::find(const std::string &name) const
{
    for (const auto &c : counterList) {
        if (c.name == name)
            return c;
    }
    fatal("no counter named '" + name + "'");
}

bool
CounterCatalog::has(const std::string &name) const
{
    for (const auto &c : counterList) {
        if (c.name == name)
            return true;
    }
    return false;
}

std::vector<const CounterDescriptor *>
CounterCatalog::inCategory(CounterCategory category) const
{
    std::vector<const CounterDescriptor *> out;
    for (const auto &c : counterList) {
        if (c.category == category)
            out.push_back(&c);
    }
    return out;
}

} // namespace mbs
