/**
 * @file
 * The tick-based SoC performance simulator.
 *
 * Executes a sequence of timed workload phases against the hardware
 * model at a fixed tick (default 100 ms, matching a real-time profiler
 * cadence) and produces a stream of CounterFrames. All run-to-run
 * variation is driven by a caller-provided seed so runs are exactly
 * reproducible.
 */

#ifndef MBS_SOC_SIMULATOR_HH
#define MBS_SOC_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "soc/caches.hh"
#include "soc/config.hh"
#include "soc/counters.hh"
#include "soc/demand.hh"
#include "soc/dvfs.hh"
#include "soc/energy.hh"
#include "soc/scheduler.hh"
#include "soc/thermal.hh"

namespace mbs {

/** Tunables of a simulation run. */
struct SimOptions
{
    /** Seconds per tick (> 0). */
    double tickSeconds = 0.1;
    /** Relative run-to-run jitter of phase durations. */
    double durationJitter = 0.02;
    /** Relative per-tick jitter on demand levels. */
    double demandJitter = 0.03;
    /** Master seed; the run index should be folded in by the caller. */
    std::uint64_t seed = 1;
    /**
     * When true the run's SimStats are only returned in the result,
     * not flushed into the metrics registry. Callers that merge
     * parallel runs deterministically (the profiler) set this and
     * flush per merged unit instead, so sampled counter time series
     * advance in deterministic order for any worker count.
     */
    bool deferObs = false;
    /**
     * Thermal integration and throttling (extension). Disabled by
     * default so the calibrated reproduction is unaffected.
     */
    ThermalParams thermal;
};

/**
 * SoC simulator.
 *
 * Per tick: evaluate AIE offload (unsupported codecs bounce work back
 * to the CPU), place CPU threads on clusters (EAS-like), run DVFS,
 * evaluate the cache/branch models under GPU contention, retire the
 * phase's instruction budget across clusters, and sample every
 * counter into a frame.
 *
 * Each run() executes inside an obs "simulate" tracing span and
 * reports internal metrics (ticks, phases, DVFS transitions,
 * scheduler migrations, model invocations, wall-seconds per
 * simulated second) to the obs::MetricsRegistry.
 */
class SocSimulator
{
  public:
    explicit SocSimulator(const SocConfig &config);

    /**
     * Simulate @p phases start to finish.
     *
     * @param phases Timed workload phases, executed in order.
     * @param options Tick length, jitter magnitudes and seed.
     * @return the frame stream plus whole-run totals.
     */
    SimulationResult run(const std::vector<TimedPhase> &phases,
                         const SimOptions &options = {}) const;

    const SocConfig &config() const { return socConfig; }

  private:
    SocConfig socConfig;
    Scheduler scheduler;
    EnergyModel energy;
    std::vector<DvfsGovernor> clusterGovernors;
    std::vector<CacheModel> clusterCaches;
    BranchModel branches;
    GpuModel gpu;
    AieModel aie;
    MemorySystem memory;
    StorageModel storage;
};

} // namespace mbs

#endif // MBS_SOC_SIMULATOR_HH
