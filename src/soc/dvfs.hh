/**
 * @file
 * DVFS governor model (schedutil-like).
 *
 * Mobile kernels pick the lowest operating point whose capacity covers
 * the observed utilization plus headroom. The paper motivates using
 * Load = frequency x utilization instead of raw utilization; this
 * governor is what makes the two differ in the model.
 */

#ifndef MBS_SOC_DVFS_HH
#define MBS_SOC_DVFS_HH

#include <vector>

namespace mbs {

/**
 * A per-domain frequency governor over a discrete OPP table.
 */
class DvfsGovernor
{
  public:
    /**
     * Build a governor with @p opp_count evenly spaced operating
     * points between @p min_hz and @p max_hz (inclusive).
     *
     * @param min_hz Lowest operating frequency.
     * @param max_hz Highest operating frequency.
     * @param opp_count Number of operating points (>= 2).
     * @param headroom Utilization headroom factor; schedutil uses
     *        1.25 ("go faster when above 80% of current capacity").
     */
    DvfsGovernor(double min_hz, double max_hz, int opp_count = 8,
                 double headroom = 1.25);

    /**
     * Pick the operating frequency for a demand level.
     *
     * @param utilization Demand as a fraction of the domain's capacity
     *        at maximum frequency, in [0, 1].
     * @return the chosen frequency in Hz (an OPP table entry).
     */
    double frequencyFor(double utilization) const;

    /** @return the OPP table, ascending. */
    const std::vector<double> &operatingPoints() const { return opps; }

    double minFrequency() const { return opps.front(); }
    double maxFrequency() const { return opps.back(); }

  private:
    std::vector<double> opps;
    double headroom;
};

} // namespace mbs

#endif // MBS_SOC_DVFS_HH
