#include "caches.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mbs {

CacheModel::CacheModel(const CacheConfig &cache_,
                       const ClusterConfig &cluster_)
    : cache(cache_), cluster(cluster_)
{
}

double
CacheModel::missRatio(std::uint64_t working_set_bytes,
                      std::uint64_t capacity_bytes, double locality)
{
    panicIf(capacity_bytes == 0, "cache capacity must be non-zero");
    const double l = std::clamp(locality, 0.0, 1.0);
    // Compulsory floor: even fully resident working sets take cold and
    // coherence misses.
    constexpr double floor = 0.003;
    if (working_set_bytes <= capacity_bytes)
        return floor;
    // The hot (locality) fraction of accesses stays resident; the cold
    // fraction misses in proportion to the working-set overflow.
    const double overflow =
        1.0 - double(capacity_bytes) / double(working_set_bytes);
    return floor + (1.0 - floor) * (1.0 - l) * overflow;
}

CacheStats
CacheModel::evaluate(const CpuCharacter &cpu,
                     double shared_contention) const
{
    const double contention = std::clamp(shared_contention, 0.0, 0.95);
    const double accesses_pki =
        std::clamp(cpu.memIntensity, 0.0, 1.0) * 1000.0;

    const std::uint64_t ws = std::max<std::uint64_t>(
        cpu.workingSetBytes, 1);
    // Effective shared capacities shrink under contention from other
    // agents (GPU textures and other processes).
    const auto effective = [contention](std::uint64_t bytes) {
        return std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   double(bytes) * (1.0 - contention)));
    };

    const double l = cpu.locality;
    const double m1 = missRatio(ws, cache.l1Bytes, l);
    const double m2 = missRatio(ws, cluster.l2Bytes, l);
    const double m3 = missRatio(ws, effective(cache.l3Bytes), l);
    const double mslc = missRatio(ws, effective(cache.slcBytes), l);

    CacheStats out;
    out.l1Mpki = accesses_pki * m1;
    // Each level filters the misses of the previous one; the per-level
    // global miss ratios are monotonically ordered by capacity, so the
    // conditional ratios are ratios of globals.
    out.l2Mpki = out.l1Mpki * std::min(1.0, m2 / std::max(m1, 1e-9));
    out.l3Mpki = out.l2Mpki * std::min(1.0, m3 / std::max(m2, 1e-9));
    out.slcMpki = out.l3Mpki * std::min(1.0, mslc / std::max(m3, 1e-9));
    out.totalMpki = out.l1Mpki + out.l2Mpki + out.l3Mpki + out.slcMpki;

    // CPI contribution: each miss level adds its hit penalty at the
    // next level; SLC misses pay DRAM. Out-of-order cores overlap a
    // large share of miss latency; MLP rises with core width, and
    // low-locality (streaming) access patterns expose much more MLP
    // because hardware prefetchers keep many lines in flight.
    const double mlp = (1.0 + 2.0 * cluster.ipcScale) *
        (1.0 + 4.0 * (1.0 - cpu.locality));
    out.memoryCpi =
        (out.l1Mpki * cache.l2HitPenalty +
         out.l2Mpki * cache.l3HitPenalty +
         out.l3Mpki * cache.slcHitPenalty +
         out.slcMpki * cache.dramPenalty) / 1000.0 / mlp;
    return out;
}

BranchStats
BranchModel::evaluate(const CpuCharacter &cpu,
                      double predictor_quality) const
{
    fatalIf(predictor_quality <= 0.0 || predictor_quality > 1.0,
            "predictor quality must be in (0, 1]");
    const double branches_pki =
        std::clamp(cpu.branchFraction, 0.0, 1.0) * 1000.0;
    const double hit = std::clamp(cpu.branchPredictability, 0.0, 1.0) *
        predictor_quality;
    BranchStats out;
    out.mpki = branches_pki * (1.0 - hit);
    out.branchCpi = out.mpki * cache.branchPenalty / 1000.0;
    return out;
}

} // namespace mbs
