/**
 * @file
 * Lumped thermal model with frequency throttling.
 *
 * The paper notes that 3DMark Wild Life "measures a device's ability
 * to provide high levels of performance for short periods of time" —
 * short-burst benchmarks exist because sustained load throttles. The
 * development board's missing battery/casing kept thermal analysis
 * out of the paper; this extension models it: a first-order RC
 * thermal circuit driven by the power model, with a throttle factor
 * that caps operating frequency once the die crosses the throttling
 * threshold.
 *
 * Disabled by default so the calibrated reproduction is unaffected;
 * enable via SimOptions::thermal.
 */

#ifndef MBS_SOC_THERMAL_HH
#define MBS_SOC_THERMAL_HH

namespace mbs {

/** First-order thermal circuit and throttle parameters. */
struct ThermalParams
{
    /** Enable thermal integration and throttling. */
    bool enabled = false;
    /** Ambient / skin-contact temperature (deg C). */
    double ambientC = 25.0;
    /**
     * Junction temperature where throttling begins (deg C). Phone
     * governors throttle on skin temperature long before silicon
     * limits; 62 C junction corresponds to a ~42 C skin target.
     */
    double throttleC = 62.0;
    /** Junction-to-ambient thermal resistance (deg C per watt). */
    double thermalResistanceCperW = 8.0;
    /** Lumped heat capacity (joules per deg C). */
    double heatCapacityJperC = 8.0;
    /** Frequency cap lost per degree above the threshold. */
    double throttleSlopePerC = 0.04;
    /** Lowest frequency cap the governor may be pushed to. */
    double minThrottleFactor = 0.55;
};

/**
 * Thermal state integrator.
 *
 * dT/dt = (P * R - (T - T_ambient)) / (R * C): temperature relaxes
 * toward the steady state T_ambient + P*R with time constant R*C
 * (64 s with the defaults — a one-minute burst barely warms the die,
 * a twenty-minute GFXBench run reaches equilibrium).
 */
class ThermalModel
{
  public:
    explicit ThermalModel(const ThermalParams &params = {});

    /**
     * Advance the junction temperature by one tick.
     *
     * @param power_w Total SoC power during the tick.
     * @param dt_s Tick length in seconds.
     * @return the updated junction temperature (deg C).
     */
    double step(double power_w, double dt_s);

    /** Current junction temperature (deg C). */
    double temperatureC() const { return junctionC; }

    /**
     * Current frequency cap in (0, 1]: 1 below the throttle
     * threshold, decreasing linearly above it down to the configured
     * floor.
     */
    double throttleFactor() const;

    const ThermalParams &params() const { return thermalParams; }

  private:
    ThermalParams thermalParams;
    double junctionC;
};

} // namespace mbs

#endif // MBS_SOC_THERMAL_HH
