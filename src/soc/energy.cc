#include "energy.hh"

#include <cmath>

#include "common/logging.hh"

namespace mbs {

double
EnergyBreakdown::total() const
{
    double sum = gpuJ + aieJ + dramJ + storageJ;
    for (double j : cpuJ)
        sum += j;
    return sum;
}

EnergyModel::EnergyModel(const SocConfig &config_,
                         const PowerParams &params_)
    : config(config_), powerParams(params_)
{
    config.validate();
}

double
EnergyModel::framePowerW(const CounterFrame &frame) const
{
    double power = 0.0;
    for (std::size_t c = 0; c < numClusters; ++c) {
        const auto &cl = config.clusters[c];
        const double f = frame.clusterFrequencyHz[c] / cl.maxFreqHz;
        power += double(cl.cores) *
            (powerParams.cpuStaticW[c] +
             powerParams.cpuDynamicW[c] * f * f * f *
                 frame.clusterUtilization[c]);
    }
    {
        const double f = frame.gpu.frequencyHz / config.gpu.maxFreqHz;
        power += powerParams.gpuStaticW +
            powerParams.gpuDynamicW * f * f * f *
                frame.gpu.utilization;
    }
    {
        const double f = frame.aie.frequencyHz / config.aie.maxFreqHz;
        power += powerParams.aieStaticW +
            powerParams.aieDynamicW * f * f * f *
                frame.aie.utilization;
    }
    power += powerParams.dramStaticW;
    power += powerParams.storageActiveW * frame.storage.utilization;
    return power;
}

EnergyBreakdown
EnergyModel::energyOf(const SimulationResult &result) const
{
    fatalIf(result.frames.empty(), "cannot account an empty run");
    const double dt = result.tickSeconds;

    EnergyBreakdown out;
    for (const auto &frame : result.frames) {
        for (std::size_t c = 0; c < numClusters; ++c) {
            const auto &cl = config.clusters[c];
            const double f =
                frame.clusterFrequencyHz[c] / cl.maxFreqHz;
            out.cpuJ[c] += dt * double(cl.cores) *
                (powerParams.cpuStaticW[c] +
                 powerParams.cpuDynamicW[c] * f * f * f *
                     frame.clusterUtilization[c]);
        }
        {
            const double f =
                frame.gpu.frequencyHz / config.gpu.maxFreqHz;
            out.gpuJ += dt *
                (powerParams.gpuStaticW +
                 powerParams.gpuDynamicW * f * f * f *
                     frame.gpu.utilization);
        }
        {
            const double f =
                frame.aie.frequencyHz / config.aie.maxFreqHz;
            out.aieJ += dt *
                (powerParams.aieStaticW +
                 powerParams.aieDynamicW * f * f * f *
                     frame.aie.utilization);
        }
        out.dramJ += dt * powerParams.dramStaticW +
            frame.cacheMissesByLevel[3] *
                powerParams.dramNanojoulePerMiss * 1e-9;
        out.storageJ += dt * powerParams.storageActiveW *
            frame.storage.utilization;
    }
    return out;
}

} // namespace mbs
