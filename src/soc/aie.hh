/**
 * @file
 * AI-engine / DSP model (Hexagon-780-like).
 *
 * Handles offload demand (DSP-style tasks: FFT, image processing,
 * neural-network inference, PSNR computation) and the codec support
 * matrix: video decode demand for an unsupported codec (AV1 on the
 * SD888) bounces back to the CPU as extra thread demand, reproducing
 * the Antutu UX observation.
 */

#ifndef MBS_SOC_AIE_HH
#define MBS_SOC_AIE_HH

#include "soc/config.hh"
#include "soc/demand.hh"
#include "soc/dvfs.hh"

namespace mbs {

/** AIE counter values for one tick. */
struct AieState
{
    /** Busy fraction of the AIE in [0, 1]. */
    double utilization = 0.0;
    /** Operating frequency in Hz. */
    double frequencyHz = 0.0;
    /** Load = (freq / max freq) * utilization, the paper's metric. */
    double load = 0.0;
    /**
     * Extra CPU thread demand created by work the AIE could not
     * accept (unsupported codec), in big-core-equivalent units.
     */
    double cpuBounceDemand = 0.0;
};

/**
 * Analytical AIE model.
 */
class AieModel
{
  public:
    explicit AieModel(const AieConfig &config);

    /** Evaluate the AIE counters for one tick of @p demand. */
    AieState evaluate(const AieDemand &demand) const;

    /** @return true if the SoC hardware-decodes @p codec. */
    bool supportsCodec(MediaCodec codec) const;

    /**
     * CPU cost multiplier of software-decoding relative to offloaded
     * decode; software AV1 decode is famously expensive.
     */
    static constexpr double softwareDecodeFactor = 2.2;

  private:
    AieConfig config;
    DvfsGovernor governor;
};

} // namespace mbs

#endif // MBS_SOC_AIE_HH
