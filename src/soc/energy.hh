/**
 * @file
 * SoC power and energy model.
 *
 * The paper excludes power analysis because its development board
 * lacks a battery and power instrumentation (limitation 1). The
 * simulation substrate has no such constraint, so this extension
 * models per-component power from the counter frames the simulator
 * already produces: cubic dynamic CPU/GPU power in frequency, linear
 * in utilization, plus DRAM energy driven by last-level misses.
 */

#ifndef MBS_SOC_ENERGY_HH
#define MBS_SOC_ENERGY_HH

#include <array>

#include "soc/config.hh"
#include "soc/counters.hh"

namespace mbs {

/** Per-component power-model coefficients (watts). */
struct PowerParams
{
    /** Per-core static/leakage power by cluster. */
    std::array<double, numClusters> cpuStaticW{0.05, 0.10, 0.18};
    /**
     * Per-core dynamic power at maximum frequency and full
     * utilization, by cluster (little, mid, big).
     */
    std::array<double, numClusters> cpuDynamicW{0.35, 1.10, 2.30};
    /** GPU static and peak dynamic power. */
    double gpuStaticW = 0.15;
    double gpuDynamicW = 3.80;
    /** AIE static and peak dynamic power. */
    double aieStaticW = 0.05;
    double aieDynamicW = 1.30;
    /** DRAM background power and energy per last-level miss (nJ). */
    double dramStaticW = 0.30;
    double dramNanojoulePerMiss = 35.0;
    /** Flash controller peak active power. */
    double storageActiveW = 1.20;
};

/** Energy accounting for one simulated run. */
struct EnergyBreakdown
{
    /** Joules per CPU cluster. */
    std::array<double, numClusters> cpuJ{};
    double gpuJ = 0.0;
    double aieJ = 0.0;
    double dramJ = 0.0;
    double storageJ = 0.0;

    /** Total energy in joules. */
    double total() const;

    /** Mean power in watts given the run duration. */
    double
    averagePowerW(double runtime_seconds) const
    {
        return runtime_seconds > 0.0 ? total() / runtime_seconds : 0.0;
    }
};

/**
 * Power/energy model over simulator counter frames.
 */
class EnergyModel
{
  public:
    /**
     * @param config SoC description (frequencies, core counts).
     * @param params Power coefficients; defaults approximate a
     *        5 nm-class flagship phone SoC.
     */
    explicit EnergyModel(const SocConfig &config,
                         const PowerParams &params = {});

    /** Instantaneous power draw (watts) implied by one frame. */
    double framePowerW(const CounterFrame &frame) const;

    /** Integrate a whole run into a per-component breakdown. */
    EnergyBreakdown energyOf(const SimulationResult &result) const;

    const PowerParams &params() const { return powerParams; }

  private:
    SocConfig config;
    PowerParams powerParams;
};

} // namespace mbs

#endif // MBS_SOC_ENERGY_HH
