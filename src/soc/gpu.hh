/**
 * @file
 * GPU model (Adreno-660-like): utilization, load, shader occupancy and
 * memory-bus busy fraction from a phase's rendering demand.
 */

#ifndef MBS_SOC_GPU_HH
#define MBS_SOC_GPU_HH

#include <cstdint>

#include "soc/config.hh"
#include "soc/demand.hh"
#include "soc/dvfs.hh"

namespace mbs {

/** GPU counter values for one tick. */
struct GpuState
{
    /** Busy fraction of the GPU in [0, 1]. */
    double utilization = 0.0;
    /** Operating frequency in Hz. */
    double frequencyHz = 0.0;
    /** Load = (freq / max freq) * utilization, the paper's metric. */
    double load = 0.0;
    /** Fraction of time all shader cores are busy. */
    double shadersBusy = 0.0;
    /** Fraction of time the GPU<->memory bus is busy. */
    double busBusy = 0.0;
    /** Resident texture bytes. */
    std::uint64_t textureBytes = 0;
};

/**
 * Analytical GPU model.
 *
 * Work demand is scaled by resolution, API overhead (OpenGL costs more
 * than Vulkan for equal work, Observation #2) and display-pipeline
 * overhead for on-screen rendering; off-screen tests convert that
 * headroom into extra rendering load (the paper's +14.5%/+62.85%
 * off-screen observations).
 */
class GpuModel
{
  public:
    explicit GpuModel(const GpuConfig &config);

    /** Evaluate the GPU counters for one tick of @p demand. */
    GpuState evaluate(const GpuDemand &demand) const;

    /**
     * Effective work multiplier of @p demand: resolution x API
     * overhead x on/off-screen factor. Exposed for tests.
     */
    double workMultiplier(const GpuDemand &demand) const;

  private:
    GpuConfig config;
    DvfsGovernor governor;
};

} // namespace mbs

#endif // MBS_SOC_GPU_HH
