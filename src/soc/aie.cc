#include "aie.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mbs {

AieModel::AieModel(const AieConfig &config_)
    : config(config_),
      governor(config_.minFreqHz, config_.maxFreqHz, 6, 1.2)
{
}

bool
AieModel::supportsCodec(MediaCodec codec) const
{
    switch (codec) {
      case MediaCodec::None:
        return true;
      case MediaCodec::H264:
        return config.supportsH264;
      case MediaCodec::H265:
        return config.supportsH265;
      case MediaCodec::Vp9:
        return config.supportsVp9;
      case MediaCodec::Av1:
        return config.supportsAv1;
    }
    panic("unknown media codec");
}

AieState
AieModel::evaluate(const AieDemand &demand) const
{
    AieState out;
    double work = std::clamp(demand.workRate, 0.0, 1.0);

    if (demand.codec != MediaCodec::None &&
        !supportsCodec(demand.codec)) {
        // The offload request is refused; the CPU decodes in software
        // at a hefty multiplier. The AIE sees none of this work.
        out.cpuBounceDemand = work * softwareDecodeFactor;
        work = 0.0;
    }

    if (work <= 0.0) {
        out.frequencyHz = governor.minFrequency();
        return out;
    }

    out.frequencyHz = governor.frequencyFor(work);
    const double capacity = out.frequencyHz / governor.maxFrequency();
    out.utilization = std::clamp(work / std::max(capacity, 1e-9),
                                 0.0, 1.0);
    out.load = capacity * out.utilization;
    return out;
}

} // namespace mbs
