#include "dvfs.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mbs {

DvfsGovernor::DvfsGovernor(double min_hz, double max_hz, int opp_count,
                           double headroom_)
    : headroom(headroom_)
{
    fatalIf(min_hz <= 0.0 || max_hz < min_hz,
            "DVFS frequency range is invalid");
    fatalIf(opp_count < 2, "DVFS needs at least two operating points");
    fatalIf(headroom < 1.0, "DVFS headroom must be >= 1.0");
    opps.resize(static_cast<std::size_t>(opp_count));
    for (int i = 0; i < opp_count; ++i) {
        opps[std::size_t(i)] = min_hz +
            (max_hz - min_hz) * double(i) / double(opp_count - 1);
    }
}

double
DvfsGovernor::frequencyFor(double utilization) const
{
    const double u = std::clamp(utilization, 0.0, 1.0);
    // schedutil: next_freq = headroom * max_freq * util, then round up
    // to the next operating point.
    const double target = headroom * maxFrequency() * u;
    for (double opp : opps) {
        if (opp >= target)
            return opp;
    }
    return maxFrequency();
}

} // namespace mbs
