/**
 * @file
 * Hardware-facing workload demand descriptors.
 *
 * A workload phase tells the SoC model *what it asks of the hardware*
 * during an interval: CPU thread demands and instruction character, GPU
 * rendering demand, AIE offload demand and memory footprint. The SoC
 * model turns these into per-tick counter values. These types are the
 * interface between `src/workload` (which composes them into benchmark
 * definitions) and `src/soc` (which executes them).
 */

#ifndef MBS_SOC_DEMAND_HH
#define MBS_SOC_DEMAND_HH

#include <cstdint>
#include <vector>

namespace mbs {

/**
 * One group of identical software threads.
 *
 * `intensity` is the compute demand of a single thread expressed as the
 * fraction of a *big-core* it can keep busy (1.0 == saturates a Prime
 * core). The scheduler places threads on clusters based on this value,
 * which is how big.LITTLE placement effects (the paper's Observations
 * 7-9) emerge.
 */
struct ThreadDemand
{
    /** Number of identical threads in the group. */
    int count = 1;
    /** Per-thread demand in big-core-equivalent utilization [0, 1]. */
    double intensity = 0.5;
};

/** Instruction-stream character of a phase, independent of placement. */
struct CpuCharacter
{
    /**
     * Instructions the phase retires, in billions, spread uniformly
     * over the phase duration. The profiler's dynamic instruction
     * count is the sum of these budgets.
     */
    double instructionsBillions = 0.0;
    /** Ideal instructions-per-cycle at infinite cache (ILP ceiling). */
    double baseIpc = 2.0;
    /** Fraction of instructions that access memory. */
    double memIntensity = 0.30;
    /** Data working-set size in bytes. */
    std::uint64_t workingSetBytes = 1 << 20;
    /**
     * Temporal locality in [0, 1): the fraction of accesses that hit a
     * hot subset regardless of total working-set size. 0.95+ for
     * cache-friendly compute kernels, < 0.5 for pointer-chasing or
     * streaming memory tests.
     */
    double locality = 0.90;
    /** Fraction of instructions that are branches. */
    double branchFraction = 0.15;
    /** Probability a branch is predicted correctly. */
    double branchPredictability = 0.97;
};

/** Graphics APIs the GPU model distinguishes (Observation #2). */
enum class GraphicsApi { None, OpenGlEs, Vulkan };

/** GPU rendering/compute demand of a phase. */
struct GpuDemand
{
    /**
     * Raw rendering/compute work rate in [0, 1]: the fraction of the
     * GPU's peak throughput the phase asks for at 1080p with an ideal
     * API. API overhead and resolution scaling are applied on top.
     */
    double workRate = 0.0;
    GraphicsApi api = GraphicsApi::None;
    /** True when rendering bypasses the display (off-screen tests). */
    bool offscreen = false;
    /**
     * Rendered-pixel scale relative to Full HD 1920x1080 (1.0); e.g.
     * 2K QHD ~= 1.78, 4K ~= 4.0.
     */
    double resolutionScale = 1.0;
    /** Texture/geometry streaming demand in [0, 1] of peak bus. */
    double textureBandwidth = 0.0;
    /** Resident texture/buffer bytes while the phase runs. */
    std::uint64_t textureBytes = 0;
};

/** Media codecs relevant to AIE offload support (Antutu UX analysis). */
enum class MediaCodec { None, H264, H265, Vp9, Av1 };

/** AIE/DSP offload demand of a phase. */
struct AieDemand
{
    /** Offload work rate in [0, 1] of the AIE's peak. */
    double workRate = 0.0;
    /**
     * Codec the phase wants hardware-decoded; if the SoC does not
     * support it, the work bounces back to the CPU as extra thread
     * demand (the paper's AV1 observation).
     */
    MediaCodec codec = MediaCodec::None;
};

/** System-memory demand of a phase. */
struct MemoryDemand
{
    /** Process-resident bytes (excluding GPU textures). */
    std::uint64_t footprintBytes = 256ULL << 20;
};

/** Storage-subsystem demand (PCMark Storage, Antutu Mem). */
struct StorageDemand
{
    /** IO bandwidth demand in [0, 1] of the flash controller's peak. */
    double ioRate = 0.0;
    /**
     * Fraction of the IO bandwidth that is reads, in [0, 1]; the rest
     * is writes. Asset loading streams are read-heavy (~0.9) while
     * encryption/database commit phases skew toward writes.
     */
    double readFraction = 0.6;
};

/** Complete demand bundle for one workload phase. */
struct PhaseDemand
{
    std::vector<ThreadDemand> threads;
    CpuCharacter cpu;
    GpuDemand gpu;
    AieDemand aie;
    MemoryDemand memory;
    StorageDemand storage;
};

/** A demand bundle with a duration: what the simulator executes. */
struct TimedPhase
{
    /** Phase length in seconds. */
    double durationSeconds = 1.0;
    PhaseDemand demand;
};

} // namespace mbs

#endif // MBS_SOC_DEMAND_HH
