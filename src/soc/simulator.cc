#include "simulator.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/strings.hh"
#include "obs/events.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "soc/aie.hh"
#include "soc/gpu.hh"
#include "soc/memory.hh"

namespace mbs {

namespace {

/**
 * Per-run cap on detail events (sim.dvfs / sim.migration): a long
 * simulation has thousands of transitions and must not flood the
 * event log; overflow is reported in one sim.events_truncated event.
 */
constexpr std::uint64_t detailEventCap = 64;

} // namespace

void
SimStats::add(const SimStats &other)
{
    runs += other.runs;
    phases += other.phases;
    ticks += other.ticks;
    dvfsTransitions += other.dvfsTransitions;
    schedulerMigrations += other.schedulerMigrations;
    cacheEvals += other.cacheEvals;
    memoryEvals += other.memoryEvals;
    phaseTicks.insert(phaseTicks.end(), other.phaseTicks.begin(),
                      other.phaseTicks.end());
}

void
SimStats::flushToRegistry() const
{
    auto &metrics = obs::MetricsRegistry::instance();
    const auto stable = obs::Volatility::Stable;
    metrics.counter("sim.runs", stable,
                    "Simulated benchmark runs").add(runs);
    metrics.counter("sim.phases", stable,
                    "Workload phases simulated").add(phases);
    metrics.counter("sim.ticks", stable,
                    "Simulator ticks evaluated").add(ticks);
    metrics.counter("sim.dvfs_transitions", stable,
                    "DVFS operating-point changes across all "
                    "clusters").add(dvfsTransitions);
    metrics.counter("sim.scheduler_migrations", stable,
                    "Scheduler thread migrations between clusters")
        .add(schedulerMigrations);
    metrics.counter("sim.cache_evals", stable,
                    "Cache-hierarchy model evaluations")
        .add(cacheEvals);
    metrics.counter("sim.memory_evals", stable,
                    "Memory-subsystem model evaluations")
        .add(memoryEvals);
    auto &hist = metrics.histogram(
        "sim.phase_ticks",
        {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000},
        stable, "Ticks spent in each simulated workload phase");
    for (const std::uint64_t t : phaseTicks)
        hist.observe(double(t));
}

SocSimulator::SocSimulator(const SocConfig &config_)
    : socConfig(config_),
      scheduler(config_),
      energy(config_),
      branches(config_.cache),
      gpu(config_.gpu),
      aie(config_.aie),
      memory(config_.memory),
      storage(config_.storage)
{
    socConfig.validate();
    for (const auto &cluster : socConfig.clusters) {
        clusterGovernors.emplace_back(cluster.minFreqHz,
                                      cluster.maxFreqHz, 8, 1.25);
        clusterCaches.emplace_back(socConfig.cache, cluster);
    }
}

SimulationResult
SocSimulator::run(const std::vector<TimedPhase> &phases,
                  const SimOptions &options) const
{
    fatalIf(phases.empty(), "cannot simulate an empty phase list");
    fatalIf(options.tickSeconds <= 0.0, "tick length must be positive");

    const obs::ScopedSpan simSpan(
        "simulate", "sim",
        {{"phases", strformat("%zu", phases.size())},
         {"seed", strformat("%llu",
                            (unsigned long long)options.seed)}});
    const auto wallStart = std::chrono::steady_clock::now();

    // Instrumentation accumulates into the result's SimStats and is
    // flushed to the metrics registry once per run (or deferred to
    // the caller's merge), keeping atomics out of the tick loop.
    SimStats stats;
    stats.runs = 1;
    std::array<double, numClusters> prevFreq{};
    std::array<int, numClusters> prevThreads{};
    bool havePrevTick = false;

    auto &events = obs::EventLog::instance();
    std::uint64_t dvfsEvents = 0;
    std::uint64_t migrationEvents = 0;
    if (events.enabled()) {
        // "run_seed", not "seed": the envelope already carries the
        // session master seed as a common field.
        events.emit("sim.run.start",
                    {{"phases", strformat("%zu", phases.size())},
                     {"run_seed", strformat("%llu", (unsigned long long)
                                            options.seed)}});
    }

    Xoshiro256StarStar rng(options.seed);

    // Apply per-run duration jitter once, up front.
    std::vector<double> durations(phases.size());
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const double jitter =
            1.0 + rng.gaussian(0.0, options.durationJitter);
        durations[i] = std::max(options.tickSeconds,
                                phases[i].durationSeconds * jitter);
    }

    SimulationResult result;
    result.tickSeconds = options.tickSeconds;

    const double dt = options.tickSeconds;
    double backlog = 0.0; // instructions deferred by CPU saturation
    ThermalModel thermal(options.thermal);
    double throttle = 1.0; // frequency cap from the previous tick

    for (std::size_t p = 0; p < phases.size(); ++p) {
        const PhaseDemand &demand = phases[p].demand;
        const auto ticks = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::llround(durations[p] / dt)));
        // Budget is spread uniformly across the phase's ticks.
        const double inst_per_tick =
            demand.cpu.instructionsBillions * 1e9 / double(ticks);

        for (std::size_t t = 0; t < ticks; ++t) {
            CounterFrame frame;
            frame.phaseIndex = p;
            frame.timeSeconds =
                result.totals.runtimeSeconds + double(t) * dt;

            const double wobble =
                std::max(0.2, 1.0 + rng.gaussian(
                    0.0, options.demandJitter));

            // --- AIE first: unsupported codecs bounce to the CPU.
            AieDemand aie_demand = demand.aie;
            aie_demand.workRate =
                std::clamp(aie_demand.workRate * wobble, 0.0, 1.0);
            frame.aie = aie.evaluate(aie_demand);

            // --- CPU placement.
            std::vector<ThreadDemand> threads = demand.threads;
            for (auto &group : threads) {
                group.intensity =
                    std::clamp(group.intensity * wobble, 0.0, 1.0);
            }
            double bounce = frame.aie.cpuBounceDemand;
            while (bounce > 1e-6) {
                const double piece = std::min(bounce, 0.9);
                threads.push_back(ThreadDemand{1, piece});
                bounce -= piece;
            }
            const Placement placement = scheduler.place(threads);

            // --- GPU.
            GpuDemand gpu_demand = demand.gpu;
            gpu_demand.workRate *= wobble;
            frame.gpu = gpu.evaluate(gpu_demand);
            if (throttle < 1.0) {
                // Thermal cap: lower clock, higher occupancy, and
                // the load the profiler sees drops with the clock.
                frame.gpu.frequencyHz *= throttle;
                frame.gpu.utilization = std::min(
                    1.0, frame.gpu.utilization / throttle);
                frame.gpu.load =
                    frame.gpu.frequencyHz / socConfig.gpu.maxFreqHz *
                    frame.gpu.utilization;
            }

            // Graphics residency in the shared levels evicts CPU
            // lines; bus traffic is the visible proxy.
            const double shared_contention = std::clamp(
                0.45 * frame.gpu.busBusy + 0.10 * frame.gpu.utilization,
                0.0, 0.9);

            // --- Per-cluster frequency, IPC and load.
            double available_cycles = 0.0;
            std::array<double, numClusters> cluster_ipc{};
            std::array<double, numClusters> cluster_weight{};
            std::array<double, numClusters> cluster_cycles_cap{};
            CacheStats cache_sample{};
            for (std::size_t c = 0; c < numClusters; ++c) {
                const ClusterConfig &cl = socConfig.clusters[c];
                double util = placement.utilization[c];
                double freq =
                    clusterGovernors[c].frequencyFor(util);
                if (throttle < 1.0) {
                    // The capped clock must absorb the same demand:
                    // utilization rises until the core saturates.
                    freq *= throttle;
                    util = std::min(1.0, util / throttle);
                }
                frame.clusterUtilization[c] = util;
                frame.clusterFrequencyHz[c] = freq;
                frame.clusterLoad[c] = (freq / cl.maxFreqHz) * util;
                frame.clusterThreads[c] = placement.threads[c];

                const CacheStats cs =
                    clusterCaches[c].evaluate(demand.cpu,
                                              shared_contention);
                const BranchStats bs = branches.evaluate(
                    demand.cpu, 0.9 + 0.1 * cl.ipcScale);
                const double cpi0 = 1.0 /
                    std::max(0.1, demand.cpu.baseIpc * cl.ipcScale);
                cluster_ipc[c] =
                    1.0 / (cpi0 + cs.memoryCpi + bs.branchCpi);

                const double cap =
                    double(cl.cores) * freq * util * dt;
                cluster_cycles_cap[c] = cap;
                available_cycles += cap;
                cluster_weight[c] = cap * cluster_ipc[c];
                if (c == std::size_t(ClusterId::Big))
                    cache_sample = cs; // representative MPKI sample
            }

            stats.cacheEvals += numClusters;
            if (havePrevTick) {
                for (std::size_t c = 0; c < numClusters; ++c) {
                    if (frame.clusterFrequencyHz[c] != prevFreq[c]) {
                        ++stats.dvfsTransitions;
                        if (events.enabled() &&
                            dvfsEvents++ < detailEventCap) {
                            events.emit("sim.dvfs",
                                {{"cluster", strformat("%zu", c)},
                                 {"tick", strformat("%llu",
                                     (unsigned long long)stats.ticks)},
                                 {"from_hz", strformat("%.0f",
                                     prevFreq[c])},
                                 {"to_hz", strformat("%.0f",
                                     frame.clusterFrequencyHz[c])}});
                        }
                    }
                    if (frame.clusterThreads[c] != prevThreads[c]) {
                        ++stats.schedulerMigrations;
                        if (events.enabled() &&
                            migrationEvents++ < detailEventCap) {
                            events.emit("sim.migration",
                                {{"cluster", strformat("%zu", c)},
                                 {"tick", strformat("%llu",
                                     (unsigned long long)stats.ticks)},
                                 {"from_threads", strformat("%d",
                                     prevThreads[c])},
                                 {"to_threads", strformat("%d",
                                     frame.clusterThreads[c])}});
                        }
                    }
                }
            }
            for (std::size_t c = 0; c < numClusters; ++c) {
                prevFreq[c] = frame.clusterFrequencyHz[c];
                prevThreads[c] = frame.clusterThreads[c];
            }
            havePrevTick = true;

            // --- Retire the instruction budget (plus any backlog),
            // bounded by the cycles the placement actually provides.
            const double want = inst_per_tick * wobble + backlog;
            double weight_sum = 0.0;
            for (double w : cluster_weight)
                weight_sum += w;
            double retired = 0.0;
            if (weight_sum > 0.0 && want > 0.0) {
                // Max retireable given per-cluster IPC and cycles.
                double max_retire = 0.0;
                for (std::size_t c = 0; c < numClusters; ++c)
                    max_retire += cluster_cycles_cap[c] * cluster_ipc[c];
                retired = std::min(want, max_retire);
                for (std::size_t c = 0; c < numClusters; ++c) {
                    const double share =
                        retired * cluster_weight[c] / weight_sum;
                    frame.cycles += cluster_ipc[c] > 0.0
                        ? share / cluster_ipc[c] : 0.0;
                }
            }
            backlog = want - retired;
            frame.instructions = retired;
            frame.ipc = frame.cycles > 0.0
                ? frame.instructions / frame.cycles : 0.0;

            // --- Cache and branch events scale with instructions.
            const BranchStats bs_big = branches.evaluate(demand.cpu);
            frame.cacheMissesByLevel = {
                retired / 1000.0 * cache_sample.l1Mpki,
                retired / 1000.0 * cache_sample.l2Mpki,
                retired / 1000.0 * cache_sample.l3Mpki,
                retired / 1000.0 * cache_sample.slcMpki,
            };
            frame.cacheMisses = retired / 1000.0 *
                cache_sample.totalMpki;
            frame.branchMispredicts = retired / 1000.0 * bs_big.mpki;

            // --- Mean CPU load across all cores.
            double load_sum = 0.0;
            int cores = 0;
            for (std::size_t c = 0; c < numClusters; ++c) {
                load_sum += frame.clusterLoad[c] *
                    double(socConfig.clusters[c].cores);
                cores += socConfig.clusters[c].cores;
            }
            frame.cpuLoad = cores > 0 ? load_sum / double(cores) : 0.0;

            // --- Memory & storage.
            frame.memory = memory.evaluate(
                demand.memory, frame.gpu.textureBytes);
            ++stats.memoryEvals;
            StorageDemand st = demand.storage;
            st.ioRate = std::clamp(st.ioRate * wobble, 0.0, 1.0);
            frame.storage = storage.evaluate(st);

            // --- Thermal integration (extension; no-op when
            // disabled). The throttle acts on the *next* tick.
            if (options.thermal.enabled) {
                const double power = energy.framePowerW(frame);
                frame.socTemperatureC = thermal.step(power, dt);
                frame.throttleFactor = throttle;
                throttle = thermal.throttleFactor();
            }

            // --- Totals.
            result.totals.instructions += frame.instructions;
            result.totals.cycles += frame.cycles;
            result.totals.cacheMisses += frame.cacheMisses;
            result.totals.branchMispredicts += frame.branchMispredicts;

            result.frames.push_back(frame);
            ++stats.ticks;
        }
        result.totals.runtimeSeconds += double(ticks) * dt;
        stats.phaseTicks.push_back(ticks);
    }
    stats.phases = phases.size();

    if (backlog > 1e7) {
        warn(strformat("%.2fM instructions of budget never retired: "
                       "the workload saturates the CPU; consider "
                       "lowering the phase instruction budget or "
                       "raising thread demand", backlog / 1e6));
        obs::Tracer::instance().instant(
            "cpu-saturated", "sim",
            {{"unretired_instructions",
              strformat("%.0f", backlog)}});
        if (events.enabled()) {
            events.emit("sim.saturated",
                        {{"unretired_instructions",
                          strformat("%.0f", backlog)}});
        }
    }

    result.stats = std::move(stats);
    if (!options.deferObs)
        result.stats.flushToRegistry();

    if (events.enabled()) {
        if (dvfsEvents > detailEventCap ||
            migrationEvents > detailEventCap) {
            events.emit("sim.events_truncated",
                {{"dvfs_suppressed", strformat("%llu",
                     (unsigned long long)(dvfsEvents > detailEventCap
                         ? dvfsEvents - detailEventCap : 0))},
                 {"migrations_suppressed", strformat("%llu",
                     (unsigned long long)
                     (migrationEvents > detailEventCap
                         ? migrationEvents - detailEventCap : 0))}});
        }
        events.emit("sim.run.end",
            {{"ticks", strformat("%llu", (unsigned long long)
                                 result.stats.ticks)},
             {"dvfs_transitions", strformat("%llu", (unsigned long long)
                                  result.stats.dvfsTransitions)},
             {"migrations", strformat("%llu", (unsigned long long)
                            result.stats.schedulerMigrations)},
             {"simulated_seconds", strformat("%.3f",
                                   result.totals.runtimeSeconds)}});
    }

    const double wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wallStart).count();
    if (result.totals.runtimeSeconds > 0.0) {
        obs::MetricsRegistry::instance()
            .gauge("sim.wall_seconds_per_simulated_second",
                   obs::Volatility::Volatile,
                   "Wall-clock slowdown of the simulator relative "
                   "to simulated time")
            .set(wallSeconds / result.totals.runtimeSeconds);
    }
    return result;
}

} // namespace mbs
