/**
 * @file
 * SoC hardware configuration, defaulting to a Snapdragon-888-like
 * platform (the paper's Table II).
 */

#ifndef MBS_SOC_CONFIG_HH
#define MBS_SOC_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mbs {

/** Identifier of a CPU core cluster in a big.LITTLE topology. */
enum class ClusterId { Little = 0, Mid = 1, Big = 2 };

/** Number of clusters in the supported tri-cluster topology. */
constexpr std::size_t numClusters = 3;

/** @return "CPU Little" / "CPU Mid" / "CPU Big". */
std::string clusterName(ClusterId id);

/** Configuration of one CPU cluster. */
struct ClusterConfig
{
    std::string name;
    int cores = 1;
    /** Maximum clock in Hz. */
    double maxFreqHz = 2e9;
    /** Minimum clock in Hz. */
    double minFreqHz = 3e8;
    /**
     * Single-thread performance relative to the big cluster at max
     * frequency (capacity in EAS terms). Big == 1.0.
     */
    double relativePerf = 1.0;
    /**
     * Microarchitectural IPC scale relative to the big core: narrower
     * in-order cores achieve a smaller fraction of a workload's ILP.
     */
    double ipcScale = 1.0;
    /** Per-core private L2 size in bytes. */
    std::uint64_t l2Bytes = 512ULL << 10;
};

/** Cache hierarchy parameters shared across clusters. */
struct CacheConfig
{
    std::uint64_t l1Bytes = 64ULL << 10;
    /** Shared CPU L3 in bytes. */
    std::uint64_t l3Bytes = 4ULL << 20;
    /** System-level cache in bytes (SoC-wide). */
    std::uint64_t slcBytes = 3ULL << 20;
    /** Average extra cycles for an L1-miss/L2-hit access. */
    double l2HitPenalty = 10.0;
    /** Average extra cycles for an L2-miss/L3-hit access. */
    double l3HitPenalty = 30.0;
    /** Average extra cycles for an L3-miss/SLC-hit access. */
    double slcHitPenalty = 55.0;
    /** Average extra cycles for a DRAM access. */
    double dramPenalty = 160.0;
    /** Pipeline refill cycles for a branch mispredict. */
    double branchPenalty = 14.0;
};

/** GPU parameters (Adreno-660-like). */
struct GpuConfig
{
    std::string name = "Adreno 660";
    double maxFreqHz = 840e6;
    double minFreqHz = 180e6;
    int shaderCores = 3;
    /**
     * Relative cost multiplier of driving the display pipeline for
     * on-screen rendering; off-screen tests skip it and spend the
     * headroom on rendering (Fig. 2 off-screen observations).
     */
    double onscreenOverhead = 0.115;
    /**
     * GPU-load multiplier of OpenGL ES relative to Vulkan for equal
     * work (the paper measures +9.26% for OpenGL).
     */
    double openglOverhead = 0.0926;
};

/** AI-engine / DSP parameters (Hexagon-780-like). */
struct AieConfig
{
    std::string name = "Hexagon 780";
    double maxFreqHz = 1000e6;
    double minFreqHz = 300e6;
    /** Codecs with hardware decode support (AV1 is absent on SD888). */
    bool supportsH264 = true;
    bool supportsH265 = true;
    bool supportsVp9 = true;
    bool supportsAv1 = false;
};

/** System memory parameters. */
struct MemoryConfig
{
    /**
     * Total RAM bytes visible to the OS: 11.83 GB of the nominal
     * 12 GB LPDDR5, matching the paper's reported capacity.
     */
    std::uint64_t totalBytes = 12114ULL << 20;
    /** Idle OS + services resident bytes (subtracted by the profiler). */
    std::uint64_t idleBytes = 1300ULL << 20;
};

/** Storage subsystem parameters. */
struct StorageConfig
{
    std::uint64_t capacityBytes = 256ULL << 30;
    /** Peak sequential bandwidth in bytes/s. */
    double peakBandwidth = 1.9e9;
};

/** Complete SoC description. */
struct SocConfig
{
    std::string name;
    /** Clusters indexed by ClusterId (Little, Mid, Big). */
    std::vector<ClusterConfig> clusters;
    CacheConfig cache;
    GpuConfig gpu;
    AieConfig aie;
    MemoryConfig memory;
    StorageConfig storage;
    /**
     * Background OS demand placed on the little cluster at all times,
     * in little-core utilization units.
     */
    double osBackgroundLoad = 0.08;

    /** Total CPU core count across clusters. */
    int totalCores() const;

    /** Validate invariants; fatal() on a malformed configuration. */
    void validate() const;

    /**
     * Stable FNV-1a digest over every model parameter. Two configs
     * with equal fields produce equal digests, so the value
     * identifies the platform a trace or metrics snapshot was
     * captured on.
     */
    std::uint64_t digest() const;

    /**
     * The paper's evaluation platform: Snapdragon 888 Mobile HDK.
     * 1x Kryo 680 Prime @ 3.0 GHz, 3x Gold @ 2.42 GHz, 4x Silver
     * @ 1.8 GHz, Adreno 660, Hexagon 780, 12 GB LPDDR5.
     */
    static SocConfig snapdragon888();

    /**
     * A mid-range phone SoC: same tri-cluster topology at lower
     * clocks, half the L3/SLC, a smaller GPU and 6 GB of RAM. Used
     * by the platform-sensitivity ablation to check which of the
     * paper's conclusions transfer across devices.
     */
    static SocConfig midrange();
};

} // namespace mbs

#endif // MBS_SOC_CONFIG_HH
