#include "memory.hh"

#include <algorithm>

namespace mbs {

MemorySystem::MemorySystem(const MemoryConfig &config_)
    : config(config_)
{
}

MemoryState
MemorySystem::evaluate(const MemoryDemand &demand,
                       std::uint64_t texture_bytes) const
{
    MemoryState out;
    const std::uint64_t wanted =
        config.idleBytes + demand.footprintBytes + texture_bytes;
    out.usedBytes = std::min(wanted, config.totalBytes);
    out.usedFraction =
        double(out.usedBytes) / double(config.totalBytes);
    return out;
}

StorageModel::StorageModel(const StorageConfig &config_)
    : config(config_)
{
}

StorageState
StorageModel::evaluate(const StorageDemand &demand) const
{
    StorageState out;
    out.utilization = std::clamp(demand.ioRate, 0.0, 1.0);
    out.bandwidth = out.utilization * config.peakBandwidth;
    const double rf = std::clamp(demand.readFraction, 0.0, 1.0);
    out.readBandwidth = out.bandwidth * rf;
    out.writeBandwidth = out.bandwidth - out.readBandwidth;
    return out;
}

} // namespace mbs
