#include "gpu.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mbs {

GpuModel::GpuModel(const GpuConfig &config_)
    : config(config_),
      governor(config_.minFreqHz, config_.maxFreqHz, 8, 1.15)
{
}

double
GpuModel::workMultiplier(const GpuDemand &demand) const
{
    // Rendering cost grows sub-linearly with pixel count: shading is
    // per-pixel but geometry and CPU-side submission are not.
    double mult = std::pow(std::max(demand.resolutionScale, 0.01), 0.75);
    if (demand.api == GraphicsApi::OpenGlEs)
        mult *= 1.0 + config.openglOverhead;
    if (demand.offscreen) {
        // Not pacing to the display vsync lets off-screen tests run
        // frames back to back; the freed display overhead becomes
        // additional rendering throughput (higher measured load).
        mult *= 1.0 + config.onscreenOverhead;
    }
    return mult;
}

GpuState
GpuModel::evaluate(const GpuDemand &demand) const
{
    GpuState out;
    out.textureBytes = demand.textureBytes;
    const double work =
        std::clamp(demand.workRate, 0.0, 1.5) * workMultiplier(demand);
    if (work <= 0.0) {
        out.frequencyHz = config.minFreqHz;
        return out;
    }

    out.frequencyHz = governor.frequencyFor(std::min(work, 1.0));
    const double capacity = out.frequencyHz / config.maxFreqHz;
    out.utilization = std::clamp(work / std::max(capacity, 1e-9),
                                 0.0, 1.0);
    out.load = capacity * out.utilization;

    // All shader cores are simultaneously busy only when occupancy is
    // high; fragment-bound full-screen passes approach it, light UI
    // rendering does not.
    out.shadersBusy = std::clamp(
        std::pow(out.utilization, 1.5), 0.0, 1.0);

    // Bus busy follows texture/geometry streaming, amplified a little
    // at high resolutions where framebuffer traffic dominates.
    const double resolution_traffic =
        0.05 * std::max(0.0, demand.resolutionScale - 1.0);
    out.busBusy = std::clamp(
        demand.textureBandwidth * (0.6 + 0.4 * out.utilization) +
        resolution_traffic, 0.0, 1.0);
    return out;
}

} // namespace mbs
