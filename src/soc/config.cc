#include "config.hh"

#include "common/digest.hh"
#include "common/logging.hh"

namespace mbs {

std::string
clusterName(ClusterId id)
{
    switch (id) {
      case ClusterId::Little:
        return "CPU Little";
      case ClusterId::Mid:
        return "CPU Mid";
      case ClusterId::Big:
        return "CPU Big";
    }
    panic("unknown cluster id");
}

int
SocConfig::totalCores() const
{
    int n = 0;
    for (const auto &c : clusters)
        n += c.cores;
    return n;
}

void
SocConfig::validate() const
{
    fatalIf(clusters.size() != numClusters,
            "SocConfig requires exactly " + std::to_string(numClusters) +
            " clusters (Little, Mid, Big)");
    for (const auto &c : clusters) {
        fatalIf(c.cores <= 0, "cluster '" + c.name + "' has no cores");
        fatalIf(c.maxFreqHz <= 0.0 || c.minFreqHz <= 0.0 ||
                c.minFreqHz > c.maxFreqHz,
                "cluster '" + c.name + "' has an invalid frequency range");
        fatalIf(c.relativePerf <= 0.0 || c.relativePerf > 1.0,
                "cluster '" + c.name +
                "' relativePerf must be in (0, 1]");
        fatalIf(c.ipcScale <= 0.0 || c.ipcScale > 1.0,
                "cluster '" + c.name + "' ipcScale must be in (0, 1]");
    }
    fatalIf(clusters[std::size_t(ClusterId::Big)].relativePerf != 1.0,
            "the big cluster defines relativePerf == 1.0");
    fatalIf(memory.idleBytes >= memory.totalBytes,
            "idle memory exceeds total memory");
    fatalIf(gpu.shaderCores <= 0, "GPU needs at least one shader core");
}

std::uint64_t
SocConfig::digest() const
{
    Fnv1a d;
    d.mix(name);
    for (const auto &c : clusters) {
        d.mix(c.name);
        d.mix(c.cores);
        d.mix(c.maxFreqHz);
        d.mix(c.minFreqHz);
        d.mix(c.relativePerf);
        d.mix(c.ipcScale);
        d.mix(c.l2Bytes);
    }
    d.mix(cache.l1Bytes);
    d.mix(cache.l3Bytes);
    d.mix(cache.slcBytes);
    d.mix(cache.l2HitPenalty);
    d.mix(cache.l3HitPenalty);
    d.mix(cache.slcHitPenalty);
    d.mix(cache.dramPenalty);
    d.mix(cache.branchPenalty);
    d.mix(gpu.name);
    d.mix(gpu.maxFreqHz);
    d.mix(gpu.minFreqHz);
    d.mix(gpu.shaderCores);
    d.mix(gpu.onscreenOverhead);
    d.mix(gpu.openglOverhead);
    d.mix(aie.name);
    d.mix(aie.maxFreqHz);
    d.mix(aie.minFreqHz);
    d.mix(aie.supportsH264);
    d.mix(aie.supportsH265);
    d.mix(aie.supportsVp9);
    d.mix(aie.supportsAv1);
    d.mix(memory.totalBytes);
    d.mix(memory.idleBytes);
    d.mix(storage.capacityBytes);
    d.mix(storage.peakBandwidth);
    d.mix(osBackgroundLoad);
    return d.value();
}

SocConfig
SocConfig::snapdragon888()
{
    SocConfig cfg;
    cfg.name = "Qualcomm Snapdragon 888 Mobile HDK";

    ClusterConfig little;
    little.name = "CPU Little";
    little.cores = 4;
    little.maxFreqHz = 1.80e9;
    little.minFreqHz = 0.30e9;
    little.relativePerf = 0.35; // Cortex-A55-class in-order core
    little.ipcScale = 0.45;
    little.l2Bytes = 128ULL << 10;

    ClusterConfig mid;
    mid.name = "CPU Mid";
    mid.cores = 3;
    mid.maxFreqHz = 2.42e9;
    mid.minFreqHz = 0.50e9;
    mid.relativePerf = 0.70; // Cortex-A78-class
    mid.ipcScale = 0.80;
    mid.l2Bytes = 512ULL << 10;

    ClusterConfig big;
    big.name = "CPU Big";
    big.cores = 1;
    big.maxFreqHz = 3.00e9;
    big.minFreqHz = 0.70e9;
    big.relativePerf = 1.0; // Cortex-X1-class
    big.ipcScale = 1.0;
    big.l2Bytes = 1ULL << 20;

    cfg.clusters = {little, mid, big};
    cfg.validate();
    return cfg;
}

SocConfig
SocConfig::midrange()
{
    SocConfig cfg = snapdragon888();
    cfg.name = "Mid-range reference SoC";
    auto &little = cfg.clusters[std::size_t(ClusterId::Little)];
    little.maxFreqHz = 1.6e9;
    auto &mid = cfg.clusters[std::size_t(ClusterId::Mid)];
    mid.maxFreqHz = 2.0e9;
    mid.ipcScale = 0.72;
    auto &big = cfg.clusters[std::size_t(ClusterId::Big)];
    big.maxFreqHz = 2.4e9;
    cfg.cache.l3Bytes = 2ULL << 20;
    cfg.cache.slcBytes = 1536ULL << 10;
    cfg.gpu.maxFreqHz = 600e6;
    cfg.gpu.shaderCores = 2;
    cfg.memory.totalBytes = 6ULL << 30;
    cfg.memory.idleBytes = 1100ULL << 20;
    cfg.storage.peakBandwidth = 1.1e9;
    cfg.validate();
    return cfg;
}

} // namespace mbs
