/**
 * @file
 * Energy-aware task placement model (EAS-like).
 *
 * Android's scheduler places a task on the most energy-efficient
 * cluster whose capacity covers the task's demand, spilling upward when
 * a cluster is full. This single rule reproduces the paper's CPU
 * heterogeneity observations: light GPU-driver threads stay on the
 * little cores (Obs. #8), heavy single threads land on the big core
 * (Obs. #7), and only explicitly multi-core workloads load every
 * cluster at once (Obs. #9).
 */

#ifndef MBS_SOC_SCHEDULER_HH
#define MBS_SOC_SCHEDULER_HH

#include <array>
#include <vector>

#include "soc/config.hh"
#include "soc/demand.hh"

namespace mbs {

/** Result of placing one tick's thread demands onto the clusters. */
struct Placement
{
    /**
     * Average per-core utilization of each cluster in [0, 1],
     * indexed by ClusterId.
     */
    std::array<double, numClusters> utilization{};
    /** Threads assigned to each cluster. */
    std::array<int, numClusters> threads{};
    /**
     * Demand (big-core-equivalent) that exceeded total capacity and
     * was left unserved this tick; > 0 means the workload is
     * CPU-saturated.
     */
    double unservedDemand = 0.0;
};

/**
 * EAS-like scheduler model.
 */
class Scheduler
{
  public:
    explicit Scheduler(const SocConfig &config);

    /**
     * Place a set of thread demands onto the clusters.
     *
     * Placement rule per thread group, mirroring EAS wake-up path:
     * choose the lowest-energy cluster where the thread's demand fits
     * under a capacity margin, preferring Little, then Mid, then Big;
     * groups that exceed any single core's capacity run on the big
     * cluster at full utilization. OS background load is always
     * added to the little cluster.
     *
     * @param threads Thread groups demanding CPU time.
     * @return per-cluster utilizations and thread counts.
     */
    Placement place(const std::vector<ThreadDemand> &threads) const;

    /**
     * Capacity of one core of @p cluster in big-core-equivalent units.
     */
    double coreCapacity(ClusterId cluster) const;

  private:
    SocConfig config;
    /** EAS-style margin: a task fits if demand <= capacity * margin. */
    static constexpr double fitMargin = 0.8;
};

} // namespace mbs

#endif // MBS_SOC_SCHEDULER_HH
