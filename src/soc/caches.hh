/**
 * @file
 * Analytical cache-hierarchy and branch-predictor models.
 *
 * The model maps a phase's instruction character (memory intensity,
 * working-set size, branch behaviour) plus cross-component contention
 * (GPU texture residency in the shared levels) to per-level MPKI values
 * and a CPI penalty, from which the simulator derives IPC. This
 * captures the paper's key mechanisms: graphics-heavy workloads depress
 * CPU IPC through shared-cache contention, and cache/branch MPKI are
 * negatively correlated with IPC (Table III).
 */

#ifndef MBS_SOC_CACHES_HH
#define MBS_SOC_CACHES_HH

#include <cstdint>

#include "soc/config.hh"
#include "soc/demand.hh"

namespace mbs {

/** Per-level and aggregate cache statistics for one phase+cluster. */
struct CacheStats
{
    /** Misses per kilo-instruction leaving L1 (data + inst combined). */
    double l1Mpki = 0.0;
    /** Misses per kilo-instruction leaving the private L2. */
    double l2Mpki = 0.0;
    /** Misses per kilo-instruction leaving the shared L3. */
    double l3Mpki = 0.0;
    /** Misses per kilo-instruction leaving the system-level cache. */
    double slcMpki = 0.0;
    /**
     * Total cache MPKI "across all levels of the cache hierarchy",
     * which is what the paper reports in Fig. 1.
     */
    double totalMpki = 0.0;
    /** Average added cycles per instruction from the memory hierarchy. */
    double memoryCpi = 0.0;
};

/** Branch predictor statistics for one phase. */
struct BranchStats
{
    /** Mispredicted branches per kilo-instruction. */
    double mpki = 0.0;
    /** Average added cycles per instruction from mispredicts. */
    double branchCpi = 0.0;
};

/**
 * Analytical cache hierarchy model.
 */
class CacheModel
{
  public:
    /**
     * @param cache Hierarchy capacities and penalties.
     * @param cluster Per-cluster private-cache configuration.
     */
    CacheModel(const CacheConfig &cache, const ClusterConfig &cluster);

    /**
     * Evaluate cache behaviour of an instruction stream.
     *
     * @param cpu Phase instruction character.
     * @param shared_contention Fraction [0, 1] of the shared L3/SLC
     *        capacity occupied by other agents (GPU textures, other
     *        processes); shrinks the capacity seen by this stream.
     */
    CacheStats evaluate(const CpuCharacter &cpu,
                        double shared_contention) const;

    /**
     * Miss ratio of a capacity-C cache for a working set of W bytes
     * with temporal locality l.
     *
     * A compulsory floor plus a capacity term: the (1 - l) fraction of
     * accesses that leave the hot set miss in proportion to how much
     * of the working set does not fit.
     */
    static double missRatio(std::uint64_t working_set_bytes,
                            std::uint64_t capacity_bytes,
                            double locality);

  private:
    CacheConfig cache;
    ClusterConfig cluster;
};

/**
 * Branch predictor model: mispredict rate follows the phase's declared
 * predictability, modestly degraded on the little in-order cores.
 */
class BranchModel
{
  public:
    explicit BranchModel(const CacheConfig &cache) : cache(cache) {}

    /**
     * @param cpu Phase instruction character.
     * @param predictor_quality Relative predictor strength of the
     *        cluster in (0, 1]; 1.0 for the big core.
     */
    BranchStats evaluate(const CpuCharacter &cpu,
                         double predictor_quality = 1.0) const;

  private:
    CacheConfig cache;
};

} // namespace mbs

#endif // MBS_SOC_CACHES_HH
