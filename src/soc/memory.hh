/**
 * @file
 * System memory and storage models.
 */

#ifndef MBS_SOC_MEMORY_HH
#define MBS_SOC_MEMORY_HH

#include <cstdint>

#include "soc/config.hh"
#include "soc/demand.hh"

namespace mbs {

/** Memory counter values for one tick. */
struct MemoryState
{
    /** Total resident bytes including OS idle baseline. */
    std::uint64_t usedBytes = 0;
    /** usedBytes as a fraction of total system memory. */
    double usedFraction = 0.0;
};

/**
 * System memory model: process footprint + GPU texture residency on
 * top of the OS idle baseline, saturating at physical capacity.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemoryConfig &config);

    /**
     * @param demand Process footprint for the tick.
     * @param texture_bytes GPU-resident texture/buffer bytes.
     */
    MemoryState evaluate(const MemoryDemand &demand,
                         std::uint64_t texture_bytes) const;

    /** OS idle baseline in bytes (the profiler subtracts this). */
    std::uint64_t idleBytes() const { return config.idleBytes; }

    /** Total physical bytes. */
    std::uint64_t totalBytes() const { return config.totalBytes; }

  private:
    MemoryConfig config;
};

/** Storage counter values for one tick. */
struct StorageState
{
    /** Achieved IO bandwidth in bytes/s. */
    double bandwidth = 0.0;
    /** Read share of the achieved bandwidth in bytes/s. */
    double readBandwidth = 0.0;
    /** Write share of the achieved bandwidth in bytes/s. */
    double writeBandwidth = 0.0;
    /** Busy fraction of the flash controller. */
    double utilization = 0.0;
};

/**
 * Flash storage model: bandwidth demand saturates at the controller's
 * peak.
 */
class StorageModel
{
  public:
    explicit StorageModel(const StorageConfig &config);

    StorageState evaluate(const StorageDemand &demand) const;

  private:
    StorageConfig config;
};

} // namespace mbs

#endif // MBS_SOC_MEMORY_HH
