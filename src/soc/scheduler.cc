#include "scheduler.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mbs {

Scheduler::Scheduler(const SocConfig &config_)
    : config(config_)
{
    config.validate();
}

double
Scheduler::coreCapacity(ClusterId cluster) const
{
    return config.clusters[std::size_t(cluster)].relativePerf;
}

Placement
Scheduler::place(const std::vector<ThreadDemand> &threads) const
{
    // Per-core assigned demand, in big-core-equivalent units.
    std::array<std::vector<double>, numClusters> core_load;
    for (std::size_t c = 0; c < numClusters; ++c) {
        core_load[c].assign(
            static_cast<std::size_t>(config.clusters[c].cores), 0.0);
    }

    Placement out;

    // Expand thread groups and place heavy threads first, as a real
    // scheduler's load balancing converges to.
    std::vector<double> expanded;
    for (const auto &group : threads) {
        fatalIf(group.count < 0, "negative thread count");
        for (int i = 0; i < group.count; ++i)
            expanded.push_back(std::clamp(group.intensity, 0.0, 1.0));
    }
    std::sort(expanded.begin(), expanded.end(), std::greater<>());

    auto try_assign = [&](std::size_t cluster, double demand) -> bool {
        const double cap = config.clusters[cluster].relativePerf;
        for (auto &load : core_load[cluster]) {
            if (cap - load >= demand) {
                load += demand;
                ++out.threads[cluster];
                return true;
            }
        }
        return false;
    };

    for (double demand : expanded) {
        if (demand <= 0.0)
            continue;
        bool placed = false;
        // EAS wake-up path: smallest cluster whose core capacity covers
        // the demand under the margin, spilling upward when occupied.
        for (std::size_t c = 0; c < numClusters && !placed; ++c) {
            const double cap = config.clusters[c].relativePerf;
            if (demand <= cap * fitMargin)
                placed = try_assign(c, demand);
        }
        if (placed)
            continue;
        // Too heavy for any margin or every preferred core is busy:
        // give it to the core with the most remaining room and run it
        // as hard as that core allows.
        std::size_t best_cluster = 0;
        std::size_t best_core = 0;
        double best_room = -1.0;
        for (std::size_t c = 0; c < numClusters; ++c) {
            const double cap = config.clusters[c].relativePerf;
            for (std::size_t k = 0; k < core_load[c].size(); ++k) {
                const double room = cap - core_load[c][k];
                if (room > best_room) {
                    best_room = room;
                    best_cluster = c;
                    best_core = k;
                }
            }
        }
        const double served = std::clamp(best_room, 0.0, demand);
        core_load[best_cluster][best_core] += served;
        ++out.threads[best_cluster];
        out.unservedDemand += demand - served;
    }

    // Background OS services keep the little cluster lightly busy.
    for (auto &load : core_load[std::size_t(ClusterId::Little)]) {
        load += config.osBackgroundLoad *
            coreCapacity(ClusterId::Little);
    }

    for (std::size_t c = 0; c < numClusters; ++c) {
        const double cap = config.clusters[c].relativePerf;
        double util_sum = 0.0;
        for (double load : core_load[c])
            util_sum += std::min(1.0, load / cap);
        out.utilization[c] = core_load[c].empty()
            ? 0.0 : util_sum / double(core_load[c].size());
    }
    return out;
}

} // namespace mbs
