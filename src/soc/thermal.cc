#include "thermal.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mbs {

ThermalModel::ThermalModel(const ThermalParams &params_)
    : thermalParams(params_), junctionC(params_.ambientC)
{
    fatalIf(thermalParams.thermalResistanceCperW <= 0.0,
            "thermal resistance must be positive");
    fatalIf(thermalParams.heatCapacityJperC <= 0.0,
            "heat capacity must be positive");
    fatalIf(thermalParams.throttleC <= thermalParams.ambientC,
            "throttle threshold must exceed ambient");
    fatalIf(thermalParams.minThrottleFactor <= 0.0 ||
                thermalParams.minThrottleFactor > 1.0,
            "throttle floor must be in (0, 1]");
}

double
ThermalModel::step(double power_w, double dt_s)
{
    fatalIf(dt_s <= 0.0, "thermal step needs a positive dt");
    const double r = thermalParams.thermalResistanceCperW;
    const double c = thermalParams.heatCapacityJperC;
    const double steady = thermalParams.ambientC + power_w * r;
    // Exact solution of the first-order relaxation over dt.
    const double alpha = 1.0 - std::exp(-dt_s / (r * c));
    junctionC += (steady - junctionC) * alpha;
    return junctionC;
}

double
ThermalModel::throttleFactor() const
{
    if (junctionC <= thermalParams.throttleC)
        return 1.0;
    const double over = junctionC - thermalParams.throttleC;
    return std::max(thermalParams.minThrottleFactor,
                    1.0 - thermalParams.throttleSlopePerC * over);
}

} // namespace mbs
