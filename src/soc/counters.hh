/**
 * @file
 * Raw per-tick hardware counter frame produced by the SoC simulator.
 *
 * One CounterFrame is the model's equivalent of one real-time sample
 * from Snapdragon Profiler; the profiler layer maps frames to named
 * counters and time series.
 */

#ifndef MBS_SOC_COUNTERS_HH
#define MBS_SOC_COUNTERS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "soc/aie.hh"
#include "soc/config.hh"
#include "soc/gpu.hh"
#include "soc/memory.hh"

namespace mbs {

/** All hardware state sampled in one simulator tick. */
struct CounterFrame
{
    /** Sample timestamp (seconds since benchmark start). */
    double timeSeconds = 0.0;

    /** Per-cluster average core utilization in [0, 1]. */
    std::array<double, numClusters> clusterUtilization{};
    /** Per-cluster operating frequency in Hz. */
    std::array<double, numClusters> clusterFrequencyHz{};
    /**
     * Per-cluster load: (frequency / max frequency) x utilization,
     * the paper's Table IV "CPU Load" definition, per cluster.
     */
    std::array<double, numClusters> clusterLoad{};
    /** Threads resident on each cluster. */
    std::array<int, numClusters> clusterThreads{};

    /** Mean load across all CPU cores (core-count weighted). */
    double cpuLoad = 0.0;

    /** Instructions retired during this tick. */
    double instructions = 0.0;
    /** Active CPU cycles spent retiring them. */
    double cycles = 0.0;
    /** Instantaneous IPC (0 when no instructions retired). */
    double ipc = 0.0;

    /** Cache misses (all levels summed) during this tick. */
    double cacheMisses = 0.0;
    /** Per-level cache misses during this tick: L1, L2, L3, SLC. */
    std::array<double, 4> cacheMissesByLevel{};
    /** Branch mispredicts during this tick. */
    double branchMispredicts = 0.0;

    GpuState gpu;
    AieState aie;
    MemoryState memory;
    StorageState storage;

    /**
     * Junction temperature in deg C. Ambient unless the thermal
     * extension is enabled (SimOptions::thermal).
     */
    double socTemperatureC = 25.0;
    /** Frequency cap applied by thermal throttling ((0, 1]; 1 = none). */
    double throttleFactor = 1.0;

    /** Index of the workload phase active during this tick. */
    std::size_t phaseIndex = 0;
};

/** Whole-run aggregates derived from the frame sequence. */
struct RunTotals
{
    double runtimeSeconds = 0.0;
    double instructions = 0.0;
    double cycles = 0.0;
    double cacheMisses = 0.0;
    double branchMispredicts = 0.0;

    /** Aggregate IPC = instructions / cycles. */
    double ipc() const { return cycles > 0.0 ? instructions / cycles : 0.0; }

    /** Aggregate cache misses per kilo-instruction. */
    double
    cacheMpki() const
    {
        return instructions > 0.0
            ? cacheMisses / instructions * 1000.0 : 0.0;
    }

    /** Aggregate branch mispredicts per kilo-instruction. */
    double
    branchMpki() const
    {
        return instructions > 0.0
            ? branchMispredicts / instructions * 1000.0 : 0.0;
    }
};

/**
 * Simulator self-observation counts for one run. Kept in the result
 * (rather than flushed straight into the metrics registry) so callers
 * that merge parallel runs deterministically can also flush these in
 * deterministic merge order — the time-series sampler's logical-clock
 * contract depends on it.
 */
struct SimStats
{
    std::uint64_t runs = 0;
    std::uint64_t phases = 0;
    std::uint64_t ticks = 0;
    std::uint64_t dvfsTransitions = 0;
    std::uint64_t schedulerMigrations = 0;
    std::uint64_t cacheEvals = 0;
    std::uint64_t memoryEvals = 0;
    /** Tick count of each simulated phase, in phase order. */
    std::vector<std::uint64_t> phaseTicks;

    /** Accumulate another run's counts (phaseTicks appended). */
    void add(const SimStats &other);

    /** Add every count to the process-wide metrics registry. */
    void flushToRegistry() const;
};

/** Result of simulating one benchmark run. */
struct SimulationResult
{
    /** Seconds between consecutive frames. */
    double tickSeconds = 0.1;
    std::vector<CounterFrame> frames;
    RunTotals totals;
    /** Per-run simulator internals (see SimStats). */
    SimStats stats;
};

} // namespace mbs

#endif // MBS_SOC_COUNTERS_HH
