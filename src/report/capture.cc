#include "capture.hh"

#include "common/digest.hh"
#include "common/strings.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"

#ifndef MBS_BUILD_STAMP
#define MBS_BUILD_STAMP "unknown"
#endif

namespace mbs {
namespace report {

std::string
buildStamp()
{
    return MBS_BUILD_STAMP;
}

std::string
runIdFor(std::uint64_t socConfigDigest, std::uint64_t seed, int runs,
         double tickSeconds)
{
    Fnv1a h;
    h.mix(socConfigDigest);
    h.mix(seed);
    h.mix(runs);
    h.mix(tickSeconds);
    return strformat("%016llx", (unsigned long long)h.value());
}

std::string
ingestRunIdFor(std::uint64_t socConfigDigest, std::uint64_t bundleDigest,
               double tickSeconds)
{
    Fnv1a h;
    h.mix(socConfigDigest);
    h.mix(bundleDigest);
    h.mix(tickSeconds);
    return strformat("%016llx", (unsigned long long)h.value());
}

std::string
specRunIdFor(std::uint64_t socConfigDigest, std::uint64_t specDigest,
             std::uint64_t seed, int runs, double tickSeconds)
{
    Fnv1a h;
    h.mix(socConfigDigest);
    h.mix(specDigest);
    h.mix(seed);
    h.mix(runs);
    h.mix(tickSeconds);
    return strformat("%016llx", (unsigned long long)h.value());
}

LedgerRecord
captureRecord(const CaptureContext &context)
{
    LedgerRecord r;
    r.command = context.command;
    r.runId = context.runId;
    r.socName = context.socName;
    r.socConfigDigest = strformat(
        "%016llx", (unsigned long long)context.socConfigDigest);
    r.suiteDigest = context.suiteDigest != 0
        ? strformat("%016llx",
                    (unsigned long long)context.suiteDigest)
        : "";
    r.seed = context.seed;
    r.runs = context.runs;
    r.tickSeconds = context.tickSeconds;
    r.logicalTicks =
        obs::TimeSeriesSampler::instance().logicalTicks();

    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot(false);
    r.metrics.reserve(snap.samples.size());
    for (const auto &s : snap.samples) {
        LedgerMetric m;
        m.name = s.name;
        switch (s.kind) {
          case obs::MetricSample::Kind::Counter:
            m.type = "counter";
            m.value = s.value;
            break;
          case obs::MetricSample::Kind::Gauge:
            m.type = "gauge";
            m.value = s.value;
            break;
          case obs::MetricSample::Kind::Histogram:
            m.type = "histogram";
            m.observations = s.observations;
            m.sum = s.sum;
            break;
        }
        r.metrics.push_back(std::move(m));
    }

    r.jobs = context.jobs;
    r.buildStamp = buildStamp();
    r.wallSeconds = context.wallSeconds;
    r.telemetryDir = context.telemetryDir;
    return r;
}

} // namespace report
} // namespace mbs
