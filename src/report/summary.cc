#include "summary.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hh"
#include "common/sparkline.hh"
#include "common/strings.hh"
#include "common/table.hh"
#include "report/compare.hh"

namespace mbs {
namespace report {

namespace {

std::string
metricCell(const LedgerRecord &r, const std::string &name)
{
    const LedgerMetric *m = r.findMetric(name);
    if (m == nullptr)
        return "-";
    return strformat("%.6g", m->comparable());
}

std::string
wallCell(double seconds)
{
    if (seconds <= 0.0)
        return "-";
    return seconds >= 1.0 ? strformat("%.2f s", seconds)
                          : strformat("%.0f ms", seconds * 1e3);
}

} // namespace

std::string
renderLedgerSummary(const RunLedger &ledger, std::size_t lastN)
{
    const auto all = ledger.entries();
    fatalIf(all.empty(), "ledger '" +
            ledger.directory().string() + "' has no records yet");

    const std::size_t n = std::min(lastN, all.size());
    std::vector<LedgerRecord> records;
    records.reserve(n);
    for (std::size_t i = all.size() - n; i < all.size(); ++i)
        records.push_back(ledger.load(all[i]));

    std::string out = strformat(
        "ledger %s: %zu record%s (showing last %zu)\n",
        ledger.directory().string().c_str(), all.size(),
        all.size() == 1 ? "" : "s", n);

    TextTable t({"Seq", "Run id", "Command", "Build", "Ticks",
                 "sim.ticks", "exec.tasks", "Wall"});
    t.setAlign(0, Align::Right);
    t.setAlign(4, Align::Right);
    t.setAlign(5, Align::Right);
    t.setAlign(6, Align::Right);
    t.setAlign(7, Align::Right);
    for (const auto &r : records) {
        t.addRow({strformat("%llu", (unsigned long long)r.seq),
                  r.runId.substr(0, 8), r.command, r.buildStamp,
                  strformat("%llu",
                            (unsigned long long)r.logicalTicks),
                  metricCell(r, "sim.ticks"),
                  metricCell(r, "exec.tasks"),
                  wallCell(r.wallSeconds)});
    }
    out += t.render();

    // Sparklines: each counter's trajectory across the shown runs,
    // normalized to its own maximum. A flat line is an invariant; a
    // step is a behaviour change worth a `compare`.
    if (records.size() >= 2) {
        std::map<std::string, std::vector<double>> series;
        for (std::size_t i = 0; i < records.size(); ++i) {
            for (const auto &m : records[i].metrics) {
                auto &values = series[m.name];
                values.resize(records.size(), 0.0);
                values[i] = m.comparable();
            }
        }
        out += "\nmetric trajectories (last " +
            std::to_string(records.size()) + " runs)\n";
        for (const auto &[name, values] : series) {
            const double peak =
                *std::max_element(values.begin(), values.end());
            std::vector<double> normalized = values;
            if (peak > 0.0) {
                for (double &v : normalized)
                    v /= peak;
            }
            out += strformat(
                "%-44s %s  (max %.6g)\n", name.c_str(),
                sparkline(normalized,
                          std::max<std::size_t>(records.size(), 8))
                    .c_str(),
                peak);
        }
    }

    // Top regressions: the newest two records diffed at a tight
    // threshold so the report surfaces drifts a CI gate would not.
    if (records.size() >= 2) {
        const CompareResult diff = compareRecords(
            records[records.size() - 2], records.back(), 0.01);
        std::vector<MetricDelta> moved;
        for (const auto &row : diff.metrics) {
            if (row.verdict == "regression" ||
                row.verdict == "improved")
                moved.push_back(row);
        }
        std::sort(moved.begin(), moved.end(),
                  [](const MetricDelta &a, const MetricDelta &b) {
                      return std::fabs(a.delta) >
                          std::fabs(b.delta);
                  });
        out += "\ntop deltas, newest vs previous run\n";
        if (moved.empty()) {
            out += "  none (all metrics within 1%)\n";
        } else {
            const std::size_t top =
                std::min<std::size_t>(5, moved.size());
            for (std::size_t i = 0; i < top; ++i) {
                const auto &row = moved[i];
                out += strformat(
                    "  %-44s %14.6g -> %14.6g (%+.1f%%)\n",
                    row.name.c_str(), row.base, row.current,
                    row.delta * 100.0);
            }
        }
    }
    return out;
}

} // namespace report
} // namespace mbs
