/**
 * @file
 * Build a LedgerRecord from the live process: the Stable-class
 * metrics snapshot, the logical clock, and the identity fields the
 * CLI already computes for trace metadata. The build stamp is baked
 * in at compile time (git describe via CMake, "unknown" without a
 * git checkout).
 */

#ifndef MBS_REPORT_CAPTURE_HH
#define MBS_REPORT_CAPTURE_HH

#include <cstdint>
#include <string>

#include "report/ledger.hh"

namespace mbs {
namespace report {

/** Identity of the run being recorded; the CLI fills this. */
struct CaptureContext
{
    std::string command;
    std::string runId;
    std::string socName;
    std::uint64_t socConfigDigest = 0;
    /** 0 when the run has no registry suite digest (ingest). */
    std::uint64_t suiteDigest = 0;
    std::uint64_t seed = 0;
    int runs = 0;
    double tickSeconds = 0.0;
    int jobs = 0;
    double wallSeconds = 0.0;
    std::string telemetryDir;
};

/** The compile-time build stamp (git describe or "unknown"). */
std::string buildStamp();

/**
 * The 16-hex run id of a profiled run: an FNV-1a digest over the SoC
 * configuration digest and the profiling parameters. One definition
 * shared by the one-shot CLI and the serve daemon so the two can
 * never drift — identical ids is what makes their ledger records
 * byte-comparable.
 */
std::string runIdFor(std::uint64_t socConfigDigest, std::uint64_t seed,
                     int runs, double tickSeconds);

/**
 * The 16-hex run id of an ingest run: digest of the capture platform
 * and the bundle bytes (an ingested bundle has no profiler seed).
 */
std::string ingestRunIdFor(std::uint64_t socConfigDigest,
                           std::uint64_t bundleDigest,
                           double tickSeconds);

/**
 * The 16-hex run id of a spec-driven run: the spec digest joins the
 * profiling parameters so two different spec files can never share a
 * run identity. Shared by `run --spec` and serve spec jobs.
 */
std::string specRunIdFor(std::uint64_t socConfigDigest,
                         std::uint64_t specDigest, std::uint64_t seed,
                         int runs, double tickSeconds);

/**
 * Snapshot the current process state into a record. Metrics come
 * from MetricsRegistry (Stable instruments only) and the logical
 * duration from TimeSeriesSampler's logical clock.
 */
LedgerRecord captureRecord(const CaptureContext &context);

} // namespace report
} // namespace mbs

#endif // MBS_REPORT_CAPTURE_HH
