#include "compare.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>

#include "common/json_parse.hh"
#include "common/strings.hh"
#include "obs/json.hh"

namespace mbs {
namespace report {

namespace {

namespace fs = std::filesystem;

double
relativeDelta(double base, double current)
{
    return (current - base) / std::max(std::fabs(base), 1.0);
}

MetricDelta
alignedRow(const std::string &name, double base, double current,
           double threshold)
{
    MetricDelta row;
    row.name = name;
    row.base = base;
    row.current = current;
    row.delta = relativeDelta(base, current);
    if (row.delta > threshold)
        row.verdict = "regression";
    else if (row.delta < -threshold)
        row.verdict = "improved";
    return row;
}

/** Per-event-type counts from one events.jsonl, strict-parsed. */
std::map<std::string, double>
eventTypeCounts(const fs::path &path)
{
    std::map<std::string, double> out;
    std::ifstream in(path);
    if (!in)
        return out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const JsonValue event = parseJson(line);
        if (!event.isObject())
            continue;
        if (const JsonValue *type = event.find("type");
            type != nullptr && type->isString()) {
            out[type->str] += 1.0;
        }
    }
    return out;
}

/**
 * Final logical-domain value per metric from one timeseries.csv.
 * Logical rows are the deterministic prefix; the last sample per
 * metric is the run's end state in the logical clock.
 */
std::map<std::string, double>
finalLogicalValues(const fs::path &path)
{
    std::map<std::string, double> out;
    std::ifstream in(path);
    if (!in)
        return out;
    std::string line;
    while (std::getline(in, line)) {
        if (!startsWith(line, "logical,"))
            continue;
        // domain,sample,time,checkpoint,metric,value
        const auto fields = split(line, ',');
        if (fields.size() < 6)
            continue;
        double value = 0.0;
        try {
            value = std::stod(fields[5]);
        } catch (const std::exception &) {
            continue;
        }
        // Rows are ordered by sample index; later rows overwrite.
        out[fields[4]] = value;
    }
    return out;
}

/** Align two name->value maps into threshold-judged rows. */
std::vector<MetricDelta>
alignMaps(const std::map<std::string, double> &base,
          const std::map<std::string, double> &current,
          double threshold)
{
    std::vector<MetricDelta> out;
    for (const auto &[name, baseValue] : base) {
        const auto it = current.find(name);
        if (it == current.end()) {
            MetricDelta row;
            row.name = name;
            row.base = baseValue;
            row.verdict = "missing";
            out.push_back(std::move(row));
            continue;
        }
        out.push_back(
            alignedRow(name, baseValue, it->second, threshold));
    }
    for (const auto &[name, currentValue] : current) {
        if (base.find(name) != base.end())
            continue;
        MetricDelta row;
        row.name = name;
        row.current = currentValue;
        row.verdict = "new";
        out.push_back(std::move(row));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricDelta &a, const MetricDelta &b) {
                  return a.name < b.name;
              });
    return out;
}

void
appendRowsJson(std::string &out, const char *key,
               const std::vector<MetricDelta> &rows)
{
    out += std::string("  \"") + key + "\": [";
    bool first = true;
    for (const auto &r : rows) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"name\": \"" + obs::jsonEscape(r.name) +
            "\", \"base\": " + obs::jsonNumber(r.base) +
            ", \"current\": " + obs::jsonNumber(r.current) +
            ", \"delta\": " + obs::jsonNumber(r.delta) +
            ", \"verdict\": \"" + r.verdict + "\"}";
    }
    out += first ? "]" : "\n  ]";
}

void
appendRowsText(std::string &out,
               const std::vector<MetricDelta> &rows)
{
    for (const auto &r : rows) {
        if (r.verdict == "missing") {
            out += strformat("MISSING    %-44s (in baseline only)\n",
                             r.name.c_str());
            continue;
        }
        if (r.verdict == "new") {
            out += strformat("NEW        %-44s (no baseline yet)\n",
                             r.name.c_str());
            continue;
        }
        const char *verdict = r.verdict == "regression"
            ? "REGRESSION"
            : r.verdict.c_str();
        out += strformat("%-10s %-44s %14.6g -> %14.6g (%+.1f%%)\n",
                         verdict, r.name.c_str(), r.base, r.current,
                         r.delta * 100.0);
    }
}

} // namespace

std::string
CompareResult::toText() const
{
    std::string out;
    out += strformat("compare %s -> %s (threshold %+.0f%%)\n",
                     baseLabel.c_str(), currentLabel.c_str(),
                     threshold * 100.0);
    out += "metrics:\n";
    appendRowsText(out, metrics);
    appendRowsText(out, {logicalTicks});
    if (bundlesCompared) {
        if (!events.empty()) {
            out += "events:\n";
            appendRowsText(out, events);
        }
        if (!timeseries.empty()) {
            out += "timeseries (final logical values):\n";
            appendRowsText(out, timeseries);
        }
    }
    out += strformat("%zu regression%s\n", regressions.size(),
                     regressions.size() == 1 ? "" : "s");
    return out;
}

std::string
CompareResult::toJson() const
{
    std::string out = "{\n";
    out += "  \"base\": \"" + obs::jsonEscape(baseLabel) + "\",\n";
    out += "  \"current\": \"" + obs::jsonEscape(currentLabel) +
        "\",\n";
    out += "  \"threshold\": " + obs::jsonNumber(threshold) + ",\n";
    out += "  \"bundles_compared\": ";
    out += bundlesCompared ? "true" : "false";
    out += ",\n";
    appendRowsJson(out, "metrics", metrics);
    out += ",\n";
    appendRowsJson(out, "events", events);
    out += ",\n";
    appendRowsJson(out, "timeseries", timeseries);
    out += ",\n";
    out += "  \"regressions\": [";
    bool first = true;
    for (const auto &name : regressions) {
        out += first ? "" : ", ";
        first = false;
        out += "\"" + obs::jsonEscape(name) + "\"";
    }
    out += "],\n";
    out += std::string("  \"verdict\": \"") +
        (regression() ? "regression" : "ok") + "\"\n}\n";
    return out;
}

CompareResult
compareRecords(const LedgerRecord &base, const LedgerRecord &current,
               double threshold)
{
    CompareResult result;
    result.threshold = threshold;
    result.baseLabel = strformat(
        "seq %llu (%s)", (unsigned long long)base.seq,
        base.runId.substr(0, 8).c_str());
    result.currentLabel = strformat(
        "seq %llu (%s)", (unsigned long long)current.seq,
        current.runId.substr(0, 8).c_str());

    std::map<std::string, double> baseValues, currentValues;
    for (const auto &m : base.metrics)
        baseValues[m.name] = m.comparable();
    for (const auto &m : current.metrics)
        currentValues[m.name] = m.comparable();
    result.metrics = alignMaps(baseValues, currentValues, threshold);

    result.logicalTicks =
        alignedRow("logical_ticks", double(base.logicalTicks),
                   double(current.logicalTicks), threshold);

    // Event-log and time-series diffs need both runs' bundles on
    // disk; a pruned bundle degrades to a metrics-only comparison.
    const bool haveBundles = !base.telemetryDir.empty() &&
        !current.telemetryDir.empty() &&
        fs::exists(base.telemetryDir) &&
        fs::exists(current.telemetryDir);
    if (haveBundles) {
        result.bundlesCompared = true;
        result.events = alignMaps(
            eventTypeCounts(fs::path(base.telemetryDir) /
                            "events.jsonl"),
            eventTypeCounts(fs::path(current.telemetryDir) /
                            "events.jsonl"),
            threshold);
        result.timeseries = alignMaps(
            finalLogicalValues(fs::path(base.telemetryDir) /
                               "timeseries.csv"),
            finalLogicalValues(fs::path(current.telemetryDir) /
                               "timeseries.csv"),
            threshold);
    }

    // Regressions ranked worst-first; only the stable metrics and
    // the logical clock gate the verdict (event/series diffs are
    // advisory — they restate the same underlying counters).
    std::vector<const MetricDelta *> regressed;
    for (const auto &r : result.metrics) {
        if (r.verdict == "regression")
            regressed.push_back(&r);
    }
    if (result.logicalTicks.verdict == "regression")
        regressed.push_back(&result.logicalTicks);
    std::sort(regressed.begin(), regressed.end(),
              [](const MetricDelta *a, const MetricDelta *b) {
                  return a->delta > b->delta;
              });
    for (const auto *r : regressed)
        result.regressions.push_back(r->name);
    return result;
}

} // namespace report
} // namespace mbs
