#include "ledger.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/digest.hh"
#include "common/json_parse.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "obs/json.hh"
#include "store/atomic_write.hh"

namespace mbs {
namespace report {

namespace {

namespace fs = std::filesystem;

std::string
readFileBytes(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open ledger record '" + path.string() + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::uint64_t
asU64(const JsonValue &v, const std::string &where)
{
    fatalIf(!v.isNumber(), where + ": expected a number");
    fatalIf(v.number < 0, where + ": expected a non-negative number");
    return std::uint64_t(v.number);
}

const JsonValue &
member(const JsonValue &obj, const std::string &key,
       const std::string &where)
{
    const JsonValue *v = obj.find(key);
    fatalIf(v == nullptr, where + ": missing \"" + key + "\"");
    return *v;
}

std::string
stringMember(const JsonValue &obj, const std::string &key,
             const std::string &where)
{
    const JsonValue &v = member(obj, key, where);
    fatalIf(!v.isString(), where + ": \"" + key + "\" not a string");
    return v.str;
}

} // namespace

std::string
LedgerRecord::stableJson() const
{
    std::string out = "{\n";
    out += "    \"command\": \"" + obs::jsonEscape(command) + "\",\n";
    out += "    \"run_id\": \"" + obs::jsonEscape(runId) + "\",\n";
    out += "    \"soc\": \"" + obs::jsonEscape(socName) + "\",\n";
    out += "    \"soc_config_digest\": \"" +
        obs::jsonEscape(socConfigDigest) + "\",\n";
    out += "    \"suite_digest\": \"" + obs::jsonEscape(suiteDigest) +
        "\",\n";
    out += "    \"seed\": " +
        strformat("%llu", (unsigned long long)seed) + ",\n";
    out += "    \"runs\": " + strformat("%d", runs) + ",\n";
    out += "    \"tick_seconds\": " + obs::jsonNumber(tickSeconds) +
        ",\n";
    out += "    \"logical_ticks\": " +
        strformat("%llu", (unsigned long long)logicalTicks) + ",\n";
    out += "    \"metrics\": [";
    bool first = true;
    for (const auto &m : metrics) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "      {\"name\": \"" + obs::jsonEscape(m.name) +
            "\", \"type\": \"" + obs::jsonEscape(m.type) + "\", ";
        if (m.type == "histogram") {
            out += "\"count\": " +
                strformat("%llu",
                          (unsigned long long)m.observations) +
                ", \"sum\": " + obs::jsonNumber(m.sum);
        } else {
            out += "\"value\": " + obs::jsonNumber(m.value);
        }
        out += "}";
    }
    out += first ? "]\n" : "\n    ]\n";
    out += "  }";
    return out;
}

std::string
LedgerRecord::toPayload() const
{
    std::string out = "{\n";
    out += "  \"schema_version\": " +
        strformat("%d", schemaVersion) + ",\n";
    out += "  \"stable\": " + stableJson() + ",\n";
    out += "  \"volatile\": {\n";
    out += "    \"seq\": " +
        strformat("%llu", (unsigned long long)seq) + ",\n";
    out += "    \"jobs\": " + strformat("%d", jobs) + ",\n";
    out += "    \"build_stamp\": \"" + obs::jsonEscape(buildStamp) +
        "\",\n";
    out += "    \"wall_seconds\": " + obs::jsonNumber(wallSeconds) +
        ",\n";
    out += "    \"telemetry_dir\": \"" +
        obs::jsonEscape(telemetryDir) + "\"\n";
    out += "  }\n}\n";
    return out;
}

LedgerRecord
LedgerRecord::fromPayload(const std::string &payload,
                          const std::string &where)
{
    const JsonValue doc = parseJson(payload);
    fatalIf(!doc.isObject(), where + ": record is not an object");

    LedgerRecord r;
    r.schemaVersion = int(
        asU64(member(doc, "schema_version", where), where));
    fatalIf(r.schemaVersion > kLedgerSchemaVersion,
            where + ": schema version " +
                std::to_string(r.schemaVersion) +
                " is newer than this build understands (" +
                std::to_string(kLedgerSchemaVersion) + ")");

    const JsonValue &stable = member(doc, "stable", where);
    fatalIf(!stable.isObject(), where + ": \"stable\" not an object");
    r.command = stringMember(stable, "command", where);
    r.runId = stringMember(stable, "run_id", where);
    r.socName = stringMember(stable, "soc", where);
    r.socConfigDigest =
        stringMember(stable, "soc_config_digest", where);
    r.suiteDigest = stringMember(stable, "suite_digest", where);
    r.seed = asU64(member(stable, "seed", where), where);
    r.runs = int(asU64(member(stable, "runs", where), where));
    r.tickSeconds = member(stable, "tick_seconds", where).number;
    r.logicalTicks =
        asU64(member(stable, "logical_ticks", where), where);
    const JsonValue &metrics = member(stable, "metrics", where);
    fatalIf(!metrics.isArray(), where + ": \"metrics\" not an array");
    for (const JsonValue &m : metrics.array) {
        fatalIf(!m.isObject(), where + ": metric not an object");
        LedgerMetric lm;
        lm.name = stringMember(m, "name", where);
        lm.type = stringMember(m, "type", where);
        if (lm.type == "histogram") {
            lm.observations =
                asU64(member(m, "count", where), where);
            lm.sum = member(m, "sum", where).number;
        } else {
            lm.value = member(m, "value", where).number;
        }
        r.metrics.push_back(std::move(lm));
    }

    const JsonValue &vol = member(doc, "volatile", where);
    fatalIf(!vol.isObject(), where + ": \"volatile\" not an object");
    r.seq = asU64(member(vol, "seq", where), where);
    r.jobs = int(asU64(member(vol, "jobs", where), where));
    r.buildStamp = stringMember(vol, "build_stamp", where);
    r.wallSeconds = member(vol, "wall_seconds", where).number;
    r.telemetryDir = stringMember(vol, "telemetry_dir", where);
    return r;
}

const LedgerMetric *
LedgerRecord::findMetric(const std::string &name) const
{
    for (const auto &m : metrics) {
        if (m.name == name)
            return &m;
    }
    return nullptr;
}

RunLedger::RunLedger(const std::filesystem::path &directory)
    : root(directory)
{
    std::error_code ec;
    fs::create_directories(root / "records", ec);
    fatalIf(bool(ec), "cannot create ledger directory '" +
            (root / "records").string() + "': " + ec.message());
}

std::filesystem::path
RunLedger::recordsDir() const
{
    return root / "records";
}

std::string
RunLedger::checksumHeader(const std::string &payload)
{
    Fnv1a h;
    h.mix(payload);
    return strformat("{\"mbs_ledger_checksum\": \"%016llx\", "
                     "\"bytes\": %zu}",
                     (unsigned long long)h.value(), payload.size());
}

std::string
RunLedger::verifiedPayload(const std::string &fileBytes,
                           const std::string &where)
{
    const std::size_t nl = fileBytes.find('\n');
    fatalIf(nl == std::string::npos,
            where + ": not a ledger record (no checksum header)");
    const std::string header = fileBytes.substr(0, nl);
    const std::string payload = fileBytes.substr(nl + 1);

    const JsonValue doc = parseJson(header);
    fatalIf(!doc.isObject(),
            where + ": malformed checksum header");
    const std::string expected =
        stringMember(doc, "mbs_ledger_checksum", where);
    const std::uint64_t expectedBytes =
        asU64(member(doc, "bytes", where), where);
    fatalIf(payload.size() != expectedBytes,
            where + ": truncated record (" +
                std::to_string(payload.size()) + " of " +
                std::to_string(expectedBytes) + " payload bytes)");
    Fnv1a h;
    h.mix(payload);
    const std::string actual =
        strformat("%016llx", (unsigned long long)h.value());
    fatalIf(actual != expected,
            where + ": checksum mismatch (record corrupt): "
                "expected " + expected + ", computed " + actual);
    return payload;
}

std::uint64_t
RunLedger::append(LedgerRecord &record)
{
    const auto existing = entries();
    std::uint64_t seq =
        existing.empty() ? 1 : existing.back().seq + 1;
    const std::string prefix =
        record.runId.substr(0, std::min<std::size_t>(
                                   8, record.runId.size()));

    // Claim the sequence number with an exclusive publish of an
    // empty slot marker (`.seq-NNNNNN`, no .json extension so the
    // directory scan ignores it). Concurrent appenders — other
    // processes; the scan above races — collide on the *marker*
    // even when their run ids (and so their record file names)
    // differ, so each writer ends up with a unique seq and its own
    // record file: no append is ever silently replaced or torn. A
    // crashed claimer leaves a harmless gap in the numbering.
    AtomicWriteOptions exclusive;
    exclusive.exclusive = true;
    for (;; ++seq) {
        const fs::path slot =
            recordsDir() /
            strformat(".seq-%06llu", (unsigned long long)seq);
        const AtomicWriteResult claimed =
            atomicWriteFile(slot, "", exclusive);
        if (claimed.ok)
            break;
        fatalIf(!claimed.existed, "cannot claim ledger sequence "
                "number in '" + recordsDir().string() + "': " +
                claimed.error);
    }
    record.seq = seq;

    const fs::path path = recordsDir() /
        strformat("%06llu-%s.json", (unsigned long long)seq,
                  prefix.c_str());
    const std::string payload = record.toPayload();
    const std::string bytes =
        checksumHeader(payload) + "\n" + payload;
    const AtomicWriteResult written = atomicWriteFile(path, bytes);
    fatalIf(!written.ok, "cannot append ledger record '" +
            path.string() + "': " + written.error);

    // The index is an accelerator for humans and CI artifact
    // uploads; record files remain the source of truth, so a lost
    // index line is harmless.
    std::ofstream index(root / "index.jsonl", std::ios::app);
    if (index) {
        index << strformat(
            "{\"seq\": %llu, \"run_id\": \"%s\", \"command\": "
            "\"%s\", \"logical_ticks\": %llu, \"wall_seconds\": %s, "
            "\"build_stamp\": \"%s\"}\n",
            (unsigned long long)seq,
            obs::jsonEscape(record.runId).c_str(),
            obs::jsonEscape(record.command).c_str(),
            (unsigned long long)record.logicalTicks,
            obs::jsonNumber(record.wallSeconds).c_str(),
            obs::jsonEscape(record.buildStamp).c_str());
    }
    return seq;
}

std::vector<LedgerEntry>
RunLedger::entries() const
{
    std::vector<LedgerEntry> out;
    std::error_code ec;
    for (const auto &de :
         fs::directory_iterator(recordsDir(), ec)) {
        const fs::path p = de.path();
        if (p.extension() != ".json")
            continue;
        const std::string stem = p.stem().string();
        const std::size_t dash = stem.find('-');
        if (dash == std::string::npos || dash == 0)
            continue;
        const std::string seqPart = stem.substr(0, dash);
        if (seqPart.find_first_not_of("0123456789") !=
            std::string::npos)
            continue;
        LedgerEntry e;
        e.seq = std::stoull(seqPart);
        e.runIdPrefix = stem.substr(dash + 1);
        e.path = p;
        out.push_back(std::move(e));
    }
    std::sort(out.begin(), out.end(),
              [](const LedgerEntry &a, const LedgerEntry &b) {
                  return a.seq < b.seq;
              });
    return out;
}

LedgerRecord
RunLedger::load(const LedgerEntry &entry) const
{
    const std::string where = entry.path.string();
    return LedgerRecord::fromPayload(
        verifiedPayload(readFileBytes(entry.path), where), where);
}

LedgerRecord
RunLedger::resolve(const std::string &selector) const
{
    // A path to a record file works from any ledger.
    if (fs::exists(selector) && fs::is_regular_file(selector)) {
        return LedgerRecord::fromPayload(
            verifiedPayload(readFileBytes(selector), selector),
            selector);
    }

    const auto all = entries();
    fatalIf(all.empty(), "ledger '" + root.string() +
            "' has no records yet");

    if (selector == "last" || startsWith(selector, "last~")) {
        std::size_t back = 0;
        if (startsWith(selector, "last~")) {
            const std::string n = selector.substr(5);
            fatalIf(n.empty() || n.find_first_not_of("0123456789") !=
                        std::string::npos,
                    "bad selector '" + selector +
                        "'; use last~<n>");
            back = std::stoull(n);
        }
        fatalIf(back >= all.size(),
                "selector '" + selector + "' reaches past the " +
                    std::to_string(all.size()) +
                    " record(s) in the ledger");
        return load(all[all.size() - 1 - back]);
    }

    if (!selector.empty() &&
        selector.find_first_not_of("0123456789") ==
            std::string::npos) {
        const std::uint64_t seq = std::stoull(selector);
        for (const auto &e : all) {
            if (e.seq == seq)
                return load(e);
        }
        fatal("no ledger record with sequence number " + selector);
    }

    if (selector.size() >= 4 &&
        selector.find_first_not_of("0123456789abcdef") ==
            std::string::npos) {
        const LedgerEntry *match = nullptr;
        for (const auto &e : all) {
            if (!startsWith(e.runIdPrefix, selector) &&
                !startsWith(selector, e.runIdPrefix))
                continue;
            // Same run id can recur (repeated identical runs);
            // prefer the newest, but a prefix matching different
            // run ids is ambiguous.
            if (match != nullptr &&
                match->runIdPrefix != e.runIdPrefix) {
                fatal("run-id prefix '" + selector +
                      "' is ambiguous in ledger '" + root.string() +
                      "'");
            }
            match = &e;
        }
        if (match != nullptr)
            return load(*match);
    }

    fatal("cannot resolve '" + selector +
          "' in ledger '" + root.string() +
          "'; use last, last~<n>, a sequence number, a run-id "
          "prefix, or a record path");
}

} // namespace report
} // namespace mbs
