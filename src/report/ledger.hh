/**
 * @file
 * The run ledger: a durable, indexed, append-only record of every
 * characterization run, so runs can be compared across time instead
 * of evaporating with their terminal output.
 *
 * Each `pipeline` / `ingest` / `chaos` invocation appends one
 * schema-versioned record. A record splits into two blocks:
 *
 *  - **stable** — everything reproducible under a fixed seed: the
 *    command, run id, SoC/suite digests, seed/runs/tick, logical
 *    duration in simulator ticks, and the full Stable-class metrics
 *    snapshot. Two identical runs (any `--jobs` count) serialize
 *    this block byte-identically; goldens diff it directly.
 *
 *  - **volatile** — wall-clock and environment facts: the ledger
 *    sequence number, jobs, build stamp, wall seconds, telemetry
 *    bundle path. Never part of byte-identity comparisons.
 *
 * On disk a record file is one header line
 * `{"mbs_ledger_checksum": "<16-hex>", "bytes": N}` followed by the
 * payload document; the checksum is the FNV-1a of the raw payload
 * bytes, so verification never depends on JSON re-serialization.
 * Records are published with the store's atomic write-rename
 * (store/atomic_write.hh); `index.jsonl` is a best-effort
 * convenience index that is always rebuildable from the record
 * files, which remain the source of truth.
 */

#ifndef MBS_REPORT_LEDGER_HH
#define MBS_REPORT_LEDGER_HH

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace mbs {
namespace report {

constexpr int kLedgerSchemaVersion = 1;

/** One metric's value inside a ledger record. */
struct LedgerMetric
{
    std::string name;
    /** "counter", "gauge" or "histogram". */
    std::string type;
    /** Counter or gauge value. */
    double value = 0.0;
    /** Histogram observation count and sum. */
    std::uint64_t observations = 0;
    double sum = 0.0;

    /** The scalar compare aligns on: value, or count for histograms. */
    double comparable() const
    {
        return type == "histogram" ? double(observations) : value;
    }
};

/** One run's durable record. */
struct LedgerRecord
{
    int schemaVersion = kLedgerSchemaVersion;

    // --- stable block (deterministic under a fixed seed) ---
    std::string command;
    /** 16-hex digest of the run configuration. */
    std::string runId;
    std::string socName;
    /** 16-hex SoC config digest. */
    std::string socConfigDigest;
    /** 16-hex workload-suite digest; empty when not applicable. */
    std::string suiteDigest;
    std::uint64_t seed = 0;
    int runs = 0;
    double tickSeconds = 0.0;
    /** Logical duration: simulator ticks merged over the run. */
    std::uint64_t logicalTicks = 0;
    /** Stable-class metrics snapshot, sorted by name. */
    std::vector<LedgerMetric> metrics;

    // --- volatile block (wall clock / environment) ---
    /** Ledger-assigned sequence number (1-based; 0 = unassigned). */
    std::uint64_t seq = 0;
    int jobs = 0;
    /** git-describe-style build stamp ("unknown" without git). */
    std::string buildStamp;
    double wallSeconds = 0.0;
    /** Telemetry bundle directory of this run; may be empty. */
    std::string telemetryDir;

    /** Deterministic serialization of the stable block only. */
    std::string stableJson() const;
    /** The full record payload (schema version + both blocks). */
    std::string toPayload() const;
    /**
     * Parse @p payload (the document after the checksum header).
     * @p where names the source in diagnostics. Throws FatalError
     * on malformed or version-mismatched input.
     */
    static LedgerRecord fromPayload(const std::string &payload,
                                    const std::string &where);

    /** The metric named @p name, or nullptr. */
    const LedgerMetric *findMetric(const std::string &name) const;
};

/** Directory-scan info about one record file. */
struct LedgerEntry
{
    std::uint64_t seq = 0;
    /** The 8-hex run-id prefix embedded in the filename. */
    std::string runIdPrefix;
    std::filesystem::path path;
};

/**
 * The on-disk ledger: `<dir>/records/NNNNNN-<runid8>.json` plus a
 * best-effort `<dir>/index.jsonl`.
 */
class RunLedger
{
  public:
    /**
     * Open (creating if needed) the ledger rooted at @p directory;
     * fatal() when it cannot be created.
     */
    explicit RunLedger(const std::filesystem::path &directory);

    /**
     * Append @p record, assigning the next sequence number (returned
     * and stored into the record's seq). The write is atomic; a
     * failed write is fatal() — losing a ledger record silently
     * would defeat the ledger.
     */
    std::uint64_t append(LedgerRecord &record);

    /** Record files found on disk, ordered by sequence number. */
    std::vector<LedgerEntry> entries() const;

    /** Load and checksum-verify one record; throws FatalError. */
    LedgerRecord load(const LedgerEntry &entry) const;

    /**
     * Resolve a user-facing selector to a record:
     *   "last"      the newest record
     *   "last~N"    N records before the newest
     *   "<seq>"     a decimal sequence number
     *   "<hex...>"  a unique run-id prefix (4+ hex digits)
     *   "<path>"    a record file path
     * Throws FatalError when nothing (or more than one run-id
     * candidate) matches.
     */
    LedgerRecord resolve(const std::string &selector) const;

    const std::filesystem::path &directory() const { return root; }

    /** The checksum header line (no trailing newline). */
    static std::string checksumHeader(const std::string &payload);
    /**
     * Split a record file's bytes into header + payload, verify the
     * checksum and byte count; throws FatalError on corruption.
     */
    static std::string verifiedPayload(const std::string &fileBytes,
                                       const std::string &where);

  private:
    std::filesystem::path recordsDir() const;

    std::filesystem::path root;
};

} // namespace report
} // namespace mbs

#endif // MBS_REPORT_LEDGER_HH
