/**
 * @file
 * Aligned diff of two ledger records: per-counter deltas over the
 * stable metrics snapshot, plus event-log and time-series diffs when
 * both runs kept their telemetry bundles. Same contract as
 * tools/perf_compare: metrics present on only one side are reported
 * but never fail; a delta beyond the threshold is a regression and
 * makes the overall verdict (and the CLI's exit status) non-zero.
 *
 * The delta denominator is max(|base|, 1), so a counter growing from
 * 0 to 5 reports +5.0 rather than being skipped — a fault counter
 * appearing from nothing is exactly the kind of change a cross-run
 * gate must flag.
 */

#ifndef MBS_REPORT_COMPARE_HH
#define MBS_REPORT_COMPARE_HH

#include <string>
#include <vector>

#include "report/ledger.hh"

namespace mbs {
namespace report {

/** One aligned row of the diff. */
struct MetricDelta
{
    std::string name;
    double base = 0.0;
    double current = 0.0;
    /** (current - base) / max(|base|, 1). */
    double delta = 0.0;
    /** "ok", "regression", "improved", "missing" or "new". */
    std::string verdict = "ok";
};

/** The full comparison outcome. */
struct CompareResult
{
    std::string baseLabel;
    std::string currentLabel;
    double threshold = 0.25;
    /** Stable-metric rows, name order; missing/new rows included. */
    std::vector<MetricDelta> metrics;
    /** logical_ticks compared like a metric. */
    MetricDelta logicalTicks;
    /** Per-event-type counts from events.jsonl (when available). */
    std::vector<MetricDelta> events;
    /** Final logical time-series value per metric (when available). */
    std::vector<MetricDelta> timeseries;
    /** True when the two runs' bundle artifacts were diffed. */
    bool bundlesCompared = false;
    /** Names of regressed metrics, worst first. */
    std::vector<std::string> regressions;

    bool regression() const { return !regressions.empty(); }
    /** Human-readable table (perf_compare style). */
    std::string toText() const;
    /** Machine-readable verdict document for CI. */
    std::string toJson() const;
};

/**
 * Diff @p current against @p base at @p threshold. When both records
 * carry an existing telemetry bundle directory, events.jsonl and
 * timeseries.csv are diffed too (strict JSON parsing per event
 * line); a missing bundle degrades to a metrics-only comparison.
 */
CompareResult compareRecords(const LedgerRecord &base,
                             const LedgerRecord &current,
                             double threshold);

} // namespace report
} // namespace mbs

#endif // MBS_REPORT_COMPARE_HH
