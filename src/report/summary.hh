/**
 * @file
 * `mobilebench report`: summarize a run ledger — a last-N run
 * table, per-metric sparklines across those runs, and the top
 * regressions between the two newest records.
 */

#ifndef MBS_REPORT_SUMMARY_HH
#define MBS_REPORT_SUMMARY_HH

#include <cstddef>
#include <string>

#include "report/ledger.hh"

namespace mbs {
namespace report {

/**
 * Render the ledger summary over the newest @p lastN records:
 * run table (seq, run id, command, build, logical ticks, key
 * counters, wall time), one sparkline per counter showing its
 * trajectory across those runs, and the top metric deltas between
 * the newest two records. Fatal when the ledger is empty.
 */
std::string renderLedgerSummary(const RunLedger &ledger,
                                std::size_t lastN);

} // namespace report
} // namespace mbs

#endif // MBS_REPORT_SUMMARY_HH
