/**
 * @file
 * Fixed-size thread-pool executor with a deterministic merge contract.
 *
 * The executor exists so the profiler and pipeline can fan
 * embarrassingly parallel work (benchmark x run simulations, the
 * cluster-validation sweep) across cores without giving up the
 * framework's reproducibility guarantee. The contract:
 *
 *  - Tasks are pure functions of their inputs (each simulation task
 *    owns its own SocSimulator and derives its seed from the task
 *    identity, never from scheduling order).
 *  - Results are collected *by submission index* — `parallelFor`
 *    waits on its tasks in order and callers write into pre-sized
 *    slots — so the merged output of `--jobs N` is bit-identical to
 *    a serial run for every N.
 *
 * With `jobs == 1` no threads are spawned and every task executes
 * inline at submission, which is exactly the serial loop the rest of
 * the framework had before the executor existed.
 *
 * Observability: every executed task increments the `exec.tasks`
 * counter and the pending-task count is mirrored into the
 * `exec.queue_depth` gauge (both updated under the queue lock, so
 * the drained gauge deterministically reads 0).
 */

#ifndef MBS_EXEC_EXECUTOR_HH
#define MBS_EXEC_EXECUTOR_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mbs {

/**
 * A fixed-size worker pool.
 *
 * Construction spawns the workers (none for a single job); the
 * destructor drains the queue and joins them. The executor itself is
 * thread-compatible: submit from one thread, execute on many.
 */
class Executor
{
  public:
    /**
     * @param jobs Worker count; 0 picks the hardware concurrency.
     *        fatal() on a negative count.
     */
    explicit Executor(int jobs = 0);
    ~Executor();

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /** @return the resolved worker count (>= 1). */
    int jobs() const { return jobCount; }

    /** Map a user-facing `--jobs` value (0 = all cores) to a count. */
    static int resolveJobs(int requested);

    /**
     * Submit one task; the future carries its result or exception.
     * With one job the task runs inline and the future is already
     * resolved on return.
     */
    template <typename F>
    auto submit(F &&fn)
        -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /**
     * Run `body(0) .. body(n-1)`, blocking until all complete.
     * Tasks may run in any order on any worker; completion is awaited
     * in index order, and the exception of the lowest failing index
     * (if any) is rethrown after every task has finished.
     *
     * Under an armed fault plan (src/fault), a task the plan kills is
     * resubmitted inline up to kTaskResubmits times; the kill/retry
     * decisions are taken on the submitting thread in index order, so
     * injected failures — like everything else about parallelFor —
     * are independent of the worker count.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /** Resubmission budget for injected task failures. */
    static constexpr int kTaskResubmits = 3;

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    int jobCount;
    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mtx;
    std::condition_variable cv;
    bool stopping = false;
};

} // namespace mbs

#endif // MBS_EXEC_EXECUTOR_HH
