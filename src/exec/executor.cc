#include "exec/executor.hh"

#include "common/logging.hh"
#include "fault/fault.hh"
#include "obs/events.hh"
#include "obs/metrics.hh"

#include <atomic>
#include <exception>
#include <string>
#include <utility>

namespace mbs {

namespace {

// Looked up per call, not cached in a function-local static: the
// serve daemon resets the registry between jobs, which would leave a
// cached reference dangling.
obs::Counter &taskCounter()
{
    return obs::MetricsRegistry::instance().counter(
        "exec.tasks", obs::Volatility::Stable,
        "Tasks executed by the deterministic executor");
}

obs::Gauge &queueDepthGauge()
{
    return obs::MetricsRegistry::instance().gauge(
        "exec.queue_depth", obs::Volatility::Stable,
        "Tasks submitted and not yet retired");
}

/**
 * Run one task bracketed by exec.task.start / exec.task.end events.
 * The sequence number is assigned at execution, so it orders events
 * within one worker's stream, not across workers.
 */
void runTask(const std::function<void()> &task)
{
    auto &log = obs::EventLog::instance();
    if (!log.enabled()) {
        task();
        return;
    }
    static std::atomic<std::uint64_t> nextSeq{0};
    const std::string seq = std::to_string(nextSeq.fetch_add(1));
    log.emit("exec.task.start", {{"seq", seq}});
    task();
    log.emit("exec.task.end", {{"seq", seq}});
}

} // namespace

int Executor::resolveJobs(int requested)
{
    fatalIf(requested < 0, "executor job count must be >= 0, got " +
                               std::to_string(requested));
    if (requested == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : int(hw);
    }
    return requested;
}

Executor::Executor(int jobs) : jobCount(resolveJobs(jobs))
{
    // Touch both instruments so a serial run still snapshots
    // exec.tasks = 0 / exec.queue_depth = 0 instead of omitting them.
    taskCounter();
    queueDepthGauge().set(0.0);
    if (jobCount > 1) {
        workers.reserve(std::size_t(jobCount));
        for (int i = 0; i < jobCount; ++i)
            workers.emplace_back([this]() { workerLoop(); });
    }
}

Executor::~Executor()
{
    if (workers.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void Executor::enqueue(std::function<void()> task)
{
    taskCounter().add(1);
    if (workers.empty()) {
        // Single-job mode: run inline, preserving the exact serial
        // execution order the framework had before the executor.
        runTask(task);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mtx);
        queue.push_back(std::move(task));
        queueDepthGauge().set(double(queue.size()));
    }
    cv.notify_one();
}

void Executor::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock, [this]() { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
            queueDepthGauge().set(double(queue.size()));
        }
        runTask(task); // packaged_task captures exceptions in its future
    }
}

void Executor::parallelFor(std::size_t n,
                           const std::function<void(std::size_t)> &body)
{
    // Fault-injection decisions are taken here on the submitting
    // thread, in submission-index order, so an armed plan kills the
    // same task indices at every --jobs count and determinism holds
    // under chaos runs too. A doomed task dies before touching its
    // result slot, simulating a worker failure.
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const bool doomed = fault::check("exec.task").has_value();
        futures.push_back(submit([&body, i, doomed]() {
            if (doomed)
                throw fault::InjectedFault("exec.task");
            body(i);
        }));
    }

    // Await in submission order; surface the lowest failing index's
    // exception only after every task has finished so no task is left
    // running with dangling references. Injected worker deaths are
    // resubmitted inline (still in index order, so the merge-by-
    // submission-index contract is untouched) within a bounded budget.
    std::exception_ptr first;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        try {
            futures[i].get();
            continue;
        } catch (const fault::InjectedFault &) {
        } catch (...) {
            if (!first)
                first = std::current_exception();
            continue;
        }

        bool succeeded = false;
        bool realError = false;
        for (int retry = 0;
             retry < kTaskResubmits && !succeeded && !realError;
             ++retry) {
            const bool doomed =
                fault::check("exec.task").has_value();
            try {
                submit([&body, i, doomed]() {
                    if (doomed)
                        throw fault::InjectedFault("exec.task");
                    body(i);
                }).get();
                succeeded = true;
            } catch (const fault::InjectedFault &) {
            } catch (...) {
                if (!first)
                    first = std::current_exception();
                realError = true;
            }
        }
        auto &injector = fault::Injector::instance();
        if (succeeded) {
            injector.recovered("exec.task", "resubmitted");
        } else if (!realError) {
            injector.degraded("exec.task",
                              "task resubmission budget exhausted");
            if (!first)
                first = std::make_exception_ptr(FatalError(
                    "task " + std::to_string(i) +
                    " kept failing under fault injection "
                    "(resubmission budget exhausted)"));
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace mbs
