#include "histogram.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/strings.hh"

namespace mbs {

Histogram::Histogram(double lo_, double hi_, std::size_t bins)
    : lo(lo_), hi(hi_)
{
    fatalIf(bins == 0, "histogram needs at least one bin");
    fatalIf(hi <= lo, "histogram range must have hi > lo");
    counts.assign(bins, 0);
}

std::size_t
Histogram::binOf(double value) const
{
    if (value <= lo)
        return 0;
    if (value >= hi)
        return counts.size() - 1;
    const double frac = (value - lo) / (hi - lo);
    const auto idx = static_cast<std::size_t>(
        frac * double(counts.size()));
    return std::min(idx, counts.size() - 1);
}

void
Histogram::add(double value)
{
    ++counts[binOf(value)];
    ++totalCount;
}

void
Histogram::addAll(const std::vector<double> &values)
{
    for (double v : values)
        add(v);
}

std::size_t
Histogram::count(std::size_t i) const
{
    fatalIf(i >= counts.size(), "histogram bin out of range");
    return counts[i];
}

double
Histogram::fraction(std::size_t i) const
{
    if (totalCount == 0)
        return 0.0;
    return double(count(i)) / double(totalCount);
}

std::vector<double>
Histogram::fractions() const
{
    std::vector<double> out(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i)
        out[i] = fraction(i);
    return out;
}

std::string
Histogram::binLabel(std::size_t i) const
{
    fatalIf(i >= counts.size(), "histogram bin out of range");
    const double width = (hi - lo) / double(counts.size());
    return strformat("[%.2f, %.2f)", lo + width * double(i),
                     lo + width * double(i + 1));
}

LoadLevel
loadLevelOf(double normalized_load)
{
    if (normalized_load < 0.25)
        return LoadLevel::Low;
    if (normalized_load < 0.50)
        return LoadLevel::MediumLow;
    if (normalized_load < 0.75)
        return LoadLevel::MediumHigh;
    return LoadLevel::High;
}

std::string
loadLevelName(LoadLevel level)
{
    switch (level) {
      case LoadLevel::Low:
        return "0%-25%";
      case LoadLevel::MediumLow:
        return "25%-50%";
      case LoadLevel::MediumHigh:
        return "50%-75%";
      case LoadLevel::High:
        return "75%-100%";
    }
    panic("unknown load level");
}

} // namespace mbs
