#include "feature_matrix.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mbs {

FeatureMatrix::FeatureMatrix(std::vector<std::string> column_names)
    : columnNames(std::move(column_names))
{
    fatalIf(columnNames.empty(), "a feature matrix needs >= 1 column");
}

void
FeatureMatrix::addRow(const std::string &name, std::vector<double> values)
{
    fatalIf(values.size() != columnNames.size(),
            "row '" + name + "' has " + std::to_string(values.size()) +
            " values, matrix has " + std::to_string(columnNames.size()) +
            " columns");
    fatalIf(hasRow(name), "duplicate row name '" + name + "'");
    names.push_back(name);
    data.push_back(std::move(values));
}

std::size_t
FeatureMatrix::rowIndex(const std::string &name) const
{
    const auto it = std::find(names.begin(), names.end(), name);
    fatalIf(it == names.end(), "no row named '" + name + "'");
    return static_cast<std::size_t>(it - names.begin());
}

bool
FeatureMatrix::hasRow(const std::string &name) const
{
    return std::find(names.begin(), names.end(), name) != names.end();
}

std::size_t
FeatureMatrix::colIndex(const std::string &name) const
{
    const auto it = std::find(columnNames.begin(), columnNames.end(), name);
    fatalIf(it == columnNames.end(), "no column named '" + name + "'");
    return static_cast<std::size_t>(it - columnNames.begin());
}

double
FeatureMatrix::at(std::size_t row, std::size_t col) const
{
    fatalIf(row >= rows() || col >= cols(),
            "feature matrix index out of range");
    return data[row][col];
}

const std::vector<double> &
FeatureMatrix::row(std::size_t r) const
{
    fatalIf(r >= rows(), "feature matrix row out of range");
    return data[r];
}

std::vector<double>
FeatureMatrix::column(std::size_t col) const
{
    fatalIf(col >= cols(), "feature matrix column out of range");
    std::vector<double> out(rows());
    for (std::size_t r = 0; r < rows(); ++r)
        out[r] = data[r][col];
    return out;
}

FeatureMatrix
FeatureMatrix::normalizedByColumnMax() const
{
    FeatureMatrix out(columnNames);
    std::vector<double> max_abs(cols(), 0.0);
    for (const auto &r : data) {
        for (std::size_t c = 0; c < cols(); ++c)
            max_abs[c] = std::max(max_abs[c], std::fabs(r[c]));
    }
    for (std::size_t i = 0; i < rows(); ++i) {
        std::vector<double> r = data[i];
        for (std::size_t c = 0; c < cols(); ++c) {
            if (max_abs[c] > 0.0)
                r[c] /= max_abs[c];
        }
        out.addRow(names[i], std::move(r));
    }
    return out;
}

FeatureMatrix
FeatureMatrix::normalizedMinMax() const
{
    FeatureMatrix out(columnNames);
    std::vector<double> lo(cols(), 0.0), hi(cols(), 0.0);
    for (std::size_t c = 0; c < cols(); ++c) {
        const auto col = column(c);
        lo[c] = *std::min_element(col.begin(), col.end());
        hi[c] = *std::max_element(col.begin(), col.end());
    }
    for (std::size_t i = 0; i < rows(); ++i) {
        std::vector<double> r = data[i];
        for (std::size_t c = 0; c < cols(); ++c) {
            const double range = hi[c] - lo[c];
            r[c] = range > 0.0 ? (r[c] - lo[c]) / range : 0.0;
        }
        out.addRow(names[i], std::move(r));
    }
    return out;
}

FeatureMatrix
FeatureMatrix::normalizedZScore() const
{
    FeatureMatrix out(columnNames);
    std::vector<double> mean(cols(), 0.0), sd(cols(), 0.0);
    for (std::size_t c = 0; c < cols(); ++c) {
        const auto col = column(c);
        double sum = 0.0;
        for (double v : col)
            sum += v;
        mean[c] = col.empty() ? 0.0 : sum / double(col.size());
        double sq = 0.0;
        for (double v : col)
            sq += (v - mean[c]) * (v - mean[c]);
        sd[c] = col.empty() ? 0.0 : std::sqrt(sq / double(col.size()));
    }
    for (std::size_t i = 0; i < rows(); ++i) {
        std::vector<double> r = data[i];
        for (std::size_t c = 0; c < cols(); ++c)
            r[c] = sd[c] > 0.0 ? (r[c] - mean[c]) / sd[c] : 0.0;
        out.addRow(names[i], std::move(r));
    }
    return out;
}

FeatureMatrix
FeatureMatrix::withoutColumn(std::size_t col) const
{
    fatalIf(col >= cols(), "feature matrix column out of range");
    fatalIf(cols() < 2, "cannot remove the only column");
    std::vector<std::string> kept_names;
    for (std::size_t c = 0; c < cols(); ++c) {
        if (c != col)
            kept_names.push_back(columnNames[c]);
    }
    FeatureMatrix out(std::move(kept_names));
    for (std::size_t i = 0; i < rows(); ++i) {
        std::vector<double> r;
        for (std::size_t c = 0; c < cols(); ++c) {
            if (c != col)
                r.push_back(data[i][c]);
        }
        out.addRow(names[i], std::move(r));
    }
    return out;
}

FeatureMatrix
FeatureMatrix::selectRows(const std::vector<std::size_t> &keep) const
{
    FeatureMatrix out(columnNames);
    for (std::size_t idx : keep) {
        fatalIf(idx >= rows(), "selectRows index out of range");
        out.addRow(names[idx], data[idx]);
    }
    return out;
}

double
euclideanDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    return std::sqrt(squaredEuclideanDistance(a, b));
}

double
squaredEuclideanDistance(const std::vector<double> &a,
                         const std::vector<double> &b)
{
    fatalIf(a.size() != b.size(), "distance between unequal-length vectors");
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += (a[i] - b[i]) * (a[i] - b[i]);
    return sum;
}

double
manhattanDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    fatalIf(a.size() != b.size(), "distance between unequal-length vectors");
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += std::fabs(a[i] - b[i]);
    return sum;
}

} // namespace mbs
