#include "feature_matrix.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/simd.hh"

namespace mbs {

FeatureMatrix::FeatureMatrix(std::vector<std::string> column_names)
    : columnNames(std::move(column_names))
{
    fatalIf(columnNames.empty(), "a feature matrix needs >= 1 column");
}

void
FeatureMatrix::addRow(const std::string &name, std::vector<double> values)
{
    fatalIf(values.size() != columnNames.size(),
            "row '" + name + "' has " + std::to_string(values.size()) +
            " values, matrix has " + std::to_string(columnNames.size()) +
            " columns");
    fatalIf(hasRow(name), "duplicate row name '" + name + "'");
    names.push_back(name);
    cells.insert(cells.end(), values.begin(), values.end());
}

std::size_t
FeatureMatrix::rowIndex(const std::string &name) const
{
    const auto it = std::find(names.begin(), names.end(), name);
    fatalIf(it == names.end(), "no row named '" + name + "'");
    return static_cast<std::size_t>(it - names.begin());
}

bool
FeatureMatrix::hasRow(const std::string &name) const
{
    return std::find(names.begin(), names.end(), name) != names.end();
}

std::size_t
FeatureMatrix::colIndex(const std::string &name) const
{
    const auto it = std::find(columnNames.begin(), columnNames.end(), name);
    fatalIf(it == columnNames.end(), "no column named '" + name + "'");
    return static_cast<std::size_t>(it - columnNames.begin());
}

double
FeatureMatrix::at(std::size_t row, std::size_t col) const
{
    fatalIf(row >= rows() || col >= cols(),
            "feature matrix index out of range");
    return cells[row * cols() + col];
}

std::span<const double>
FeatureMatrix::row(std::size_t r) const
{
    fatalIf(r >= rows(), "feature matrix row out of range");
    return {rowPtr(r), cols()};
}

std::vector<double>
FeatureMatrix::column(std::size_t col) const
{
    fatalIf(col >= cols(), "feature matrix column out of range");
    std::vector<double> out(rows());
    for (std::size_t r = 0; r < rows(); ++r)
        out[r] = cells[r * cols() + col];
    return out;
}

FeatureMatrix
FeatureMatrix::normalizedByColumnMax() const
{
    FeatureMatrix out(columnNames);
    std::vector<double> max_abs(cols(), 0.0);
    for (std::size_t i = 0; i < rows(); ++i) {
        const double *r = rowPtr(i);
        for (std::size_t c = 0; c < cols(); ++c)
            max_abs[c] = std::max(max_abs[c], std::fabs(r[c]));
    }
    std::vector<double> r(cols());
    for (std::size_t i = 0; i < rows(); ++i) {
        const double *src = rowPtr(i);
        for (std::size_t c = 0; c < cols(); ++c)
            r[c] = max_abs[c] > 0.0 ? src[c] / max_abs[c] : src[c];
        out.addRow(names[i], r);
    }
    return out;
}

FeatureMatrix
FeatureMatrix::normalizedMinMax() const
{
    FeatureMatrix out(columnNames);
    const FeatureColumns soa(*this);
    std::vector<double> lo(cols(), 0.0), hi(cols(), 0.0);
    for (std::size_t c = 0; c < cols(); ++c) {
        if (rows() > 0) {
            lo[c] = simd::minValue(soa.col(c), rows());
            hi[c] = simd::maxValue(soa.col(c), rows());
        }
    }
    std::vector<double> r(cols());
    for (std::size_t i = 0; i < rows(); ++i) {
        const double *src = rowPtr(i);
        for (std::size_t c = 0; c < cols(); ++c) {
            const double range = hi[c] - lo[c];
            r[c] = range > 0.0 ? (src[c] - lo[c]) / range : 0.0;
        }
        out.addRow(names[i], r);
    }
    return out;
}

FeatureMatrix
FeatureMatrix::normalizedZScore() const
{
    FeatureMatrix out(columnNames);
    const FeatureColumns soa(*this);
    std::vector<double> mean(cols(), 0.0), sd(cols(), 0.0);
    for (std::size_t c = 0; c < cols(); ++c) {
        if (rows() == 0)
            continue;
        mean[c] = simd::sum(soa.col(c), rows()) / double(rows());
        double sxy = 0.0, sq = 0.0, syy = 0.0;
        simd::pearsonMoments(soa.col(c), soa.col(c), rows(), mean[c],
                             mean[c], sxy, sq, syy);
        sd[c] = std::sqrt(sq / double(rows()));
    }
    std::vector<double> r(cols());
    for (std::size_t i = 0; i < rows(); ++i) {
        const double *src = rowPtr(i);
        for (std::size_t c = 0; c < cols(); ++c)
            r[c] = sd[c] > 0.0 ? (src[c] - mean[c]) / sd[c] : 0.0;
        out.addRow(names[i], r);
    }
    return out;
}

FeatureMatrix
FeatureMatrix::withoutColumn(std::size_t col) const
{
    fatalIf(col >= cols(), "feature matrix column out of range");
    fatalIf(cols() < 2, "cannot remove the only column");
    std::vector<std::string> kept_names;
    for (std::size_t c = 0; c < cols(); ++c) {
        if (c != col)
            kept_names.push_back(columnNames[c]);
    }
    FeatureMatrix out(std::move(kept_names));
    std::vector<double> r;
    r.reserve(cols() - 1);
    for (std::size_t i = 0; i < rows(); ++i) {
        const double *src = rowPtr(i);
        r.clear();
        for (std::size_t c = 0; c < cols(); ++c) {
            if (c != col)
                r.push_back(src[c]);
        }
        out.addRow(names[i], r);
    }
    return out;
}

FeatureMatrix
FeatureMatrix::selectRows(const std::vector<std::size_t> &keep) const
{
    FeatureMatrix out(columnNames);
    for (std::size_t idx : keep) {
        fatalIf(idx >= rows(), "selectRows index out of range");
        const auto sp = row(idx);
        out.addRow(names[idx],
                   std::vector<double>(sp.begin(), sp.end()));
    }
    return out;
}

FeatureColumns::FeatureColumns(const FeatureMatrix &m)
    : nRows(m.rows()), nCols(m.cols()), cells(nRows * nCols)
{
    // One transpose pass; afterwards every column is contiguous.
    for (std::size_t r = 0; r < nRows; ++r) {
        const double *src = m.rowPtr(r);
        for (std::size_t c = 0; c < nCols; ++c)
            cells[c * nRows + r] = src[c];
    }
}

double
euclideanDistance(const double *a, const double *b, std::size_t n)
{
    return std::sqrt(simd::sumSqDiff(a, b, n));
}

double
squaredEuclideanDistance(const double *a, const double *b,
                         std::size_t n)
{
    return simd::sumSqDiff(a, b, n);
}

double
manhattanDistance(const double *a, const double *b, std::size_t n)
{
    return simd::sumAbsDiff(a, b, n);
}

double
euclideanDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    return std::sqrt(squaredEuclideanDistance(a, b));
}

double
squaredEuclideanDistance(const std::vector<double> &a,
                         const std::vector<double> &b)
{
    fatalIf(a.size() != b.size(), "distance between unequal-length vectors");
    return simd::sumSqDiff(a.data(), b.data(), a.size());
}

double
manhattanDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    fatalIf(a.size() != b.size(), "distance between unequal-length vectors");
    return simd::sumAbsDiff(a.data(), b.data(), a.size());
}

} // namespace mbs
