#include "correlation.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/simd.hh"
#include "common/strings.hh"
#include "common/table.hh"

namespace mbs {

double
pearson(const double *x, const double *y, std::size_t n)
{
    if (n < 2)
        return 0.0;

    double sx = 0.0, sy = 0.0;
    simd::sum2(x, y, n, sx, sy);
    const double mx = sx / double(n);
    const double my = sy / double(n);

    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    simd::pearsonMoments(x, y, n, mx, my, sxy, sxx, syy);
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    fatalIf(x.size() != y.size(),
            "pearson() requires equal-length samples");
    return pearson(x.data(), y.data(), x.size());
}

CorrelationStrength
classifyCorrelation(double r)
{
    const double a = std::fabs(r);
    if (a >= 0.8)
        return CorrelationStrength::Strong;
    if (a >= 0.4)
        return CorrelationStrength::Moderate;
    return CorrelationStrength::None;
}

std::string
correlationStrengthName(CorrelationStrength s)
{
    switch (s) {
      case CorrelationStrength::Strong:
        return "strong";
      case CorrelationStrength::Moderate:
        return "moderate";
      case CorrelationStrength::None:
        return "none";
    }
    panic("unknown correlation strength");
}

CorrelationMatrix::CorrelationMatrix(const FeatureMatrix &features)
    : labels(features.colNames())
{
    const std::size_t n = labels.size();
    r.assign(n, std::vector<double>(n, 0.0));
    // One SoA snapshot instead of n per-column heap copies; every
    // pearson() then streams two contiguous columns.
    const FeatureColumns cols(features);
    for (std::size_t a = 0; a < n; ++a) {
        r[a][a] = 1.0;
        for (std::size_t b = a + 1; b < n; ++b) {
            const double v =
                pearson(cols.col(a), cols.col(b), cols.rows());
            r[a][b] = v;
            r[b][a] = v;
        }
    }
}

double
CorrelationMatrix::at(std::size_t a, std::size_t b) const
{
    fatalIf(a >= size() || b >= size(),
            "correlation matrix index out of range");
    return r[a][b];
}

double
CorrelationMatrix::at(const std::string &a, const std::string &b) const
{
    const auto find = [this](const std::string &name) {
        for (std::size_t i = 0; i < labels.size(); ++i) {
            if (labels[i] == name)
                return i;
        }
        fatal("no metric named '" + name + "' in correlation matrix");
    };
    return at(find(a), find(b));
}

std::string
CorrelationMatrix::renderLowerTriangle() const
{
    std::vector<std::string> headers = {""};
    headers.insert(headers.end(), labels.begin(), labels.end());
    TextTable table(headers);
    for (std::size_t c = 1; c < headers.size(); ++c)
        table.setAlign(c, Align::Right);
    for (std::size_t i = 0; i < size(); ++i) {
        std::vector<std::string> row = {labels[i]};
        for (std::size_t j = 0; j < size(); ++j) {
            if (j < i)
                row.push_back(strformat("%.3f", r[i][j]));
            else if (j == i)
                row.push_back("1");
            else
                row.push_back("");
        }
        table.addRow(std::move(row));
    }
    return table.render();
}

} // namespace mbs
