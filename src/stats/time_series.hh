/**
 * @file
 * Uniformly sampled time series, the fundamental datum produced by the
 * profiler: one value per sampling tick for one hardware counter.
 */

#ifndef MBS_STATS_TIME_SERIES_HH
#define MBS_STATS_TIME_SERIES_HH

#include <cstddef>
#include <vector>

namespace mbs {

/**
 * A uniformly sampled series of doubles.
 *
 * The sample interval is carried with the data so durations and
 * normalized-time positions can be recovered.
 */
class TimeSeries
{
  public:
    TimeSeries() = default;

    /**
     * @param interval_s Seconds between consecutive samples (> 0).
     * @param values Sample values, earliest first.
     */
    TimeSeries(double interval_s, std::vector<double> values);

    /** @return seconds between consecutive samples. */
    double interval() const { return intervalS; }

    /** @return number of samples. */
    std::size_t size() const { return samples.size(); }

    bool empty() const { return samples.empty(); }

    /** @return total covered duration in seconds. */
    double duration() const { return intervalS * double(samples.size()); }

    /** @return sample at index @p i (bounds-checked). */
    double at(std::size_t i) const;

    double operator[](std::size_t i) const { return samples[i]; }

    /** @return the underlying sample vector. */
    const std::vector<double> &values() const { return samples; }

    /** Append one sample. */
    void push(double value) { samples.push_back(value); }

    /** Arithmetic mean; 0 for an empty series. */
    double mean() const;

    /** Smallest sample; 0 for an empty series. */
    double min() const;

    /** Largest sample; 0 for an empty series. */
    double max() const;

    /** Sum of all samples. */
    double sum() const;

    /**
     * Value at a normalized time position.
     * @param t Position in [0, 1]; clamped.
     */
    double atNormalizedTime(double t) const;

    /**
     * Fraction of samples strictly above @p threshold.
     */
    double fractionAbove(double threshold) const;

    /**
     * Scale every sample by 1/@p bound (no-op when bound == 0).
     * Used to normalize against the global per-metric maximum, as the
     * paper does for Fig. 2.
     */
    TimeSeries normalizedBy(double bound) const;

    /** Resample to exactly @p n points by bucket-averaging. */
    TimeSeries resampled(std::size_t n) const;

    /**
     * Element-wise mean of several equally long series.
     * Series of different lengths are first resampled to the shortest
     * length (run-to-run durations differ slightly on real devices).
     */
    static TimeSeries average(const std::vector<TimeSeries> &runs);

    /** Subtract @p baseline from every sample, clamping at zero. */
    TimeSeries minusBaseline(double baseline) const;

  private:
    double intervalS = 0.1;
    std::vector<double> samples;
};

} // namespace mbs

#endif // MBS_STATS_TIME_SERIES_HH
