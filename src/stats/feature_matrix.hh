/**
 * @file
 * Named observation-by-feature matrix, the hand-off format between the
 * characterization pipeline and the clustering/subsetting analyses.
 *
 * Storage is one flat row-major buffer: profiles are batched into
 * contiguous rows so the distance and assignment kernels in
 * common/simd.hh stream them without pointer chasing. FeatureColumns
 * is the structure-of-arrays twin — a column-major snapshot for the
 * per-feature passes (Pearson correlation, normalization stats).
 */

#ifndef MBS_STATS_FEATURE_MATRIX_HH
#define MBS_STATS_FEATURE_MATRIX_HH

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace mbs {

/**
 * A dense matrix with named rows (observations, e.g. benchmarks) and
 * named columns (features, e.g. averaged performance metrics).
 */
class FeatureMatrix
{
  public:
    FeatureMatrix() = default;

    /** @param column_names Feature labels; fixes the column count. */
    explicit FeatureMatrix(std::vector<std::string> column_names);

    /**
     * Append an observation.
     * @param name Row label; must be unique.
     * @param values One value per column.
     */
    void addRow(const std::string &name, std::vector<double> values);

    std::size_t rows() const { return names.size(); }
    std::size_t cols() const { return columnNames.size(); }

    const std::vector<std::string> &rowNames() const { return names; }
    const std::vector<std::string> &colNames() const { return columnNames; }

    /** @return index of the row named @p name; fatal() if absent. */
    std::size_t rowIndex(const std::string &name) const;

    /** @return true if a row named @p name exists. */
    bool hasRow(const std::string &name) const;

    /** @return index of the column named @p name; fatal() if absent. */
    std::size_t colIndex(const std::string &name) const;

    double at(std::size_t row, std::size_t col) const;

    /** @return the row at index @p row as a contiguous view. */
    std::span<const double> row(std::size_t row) const;

    /** @return unchecked pointer to row @p row's first value. */
    const double *rowPtr(std::size_t row) const
    {
        return cells.data() + row * cols();
    }

    /** @return one column as a vector (strided copy). */
    std::vector<double> column(std::size_t col) const;

    /**
     * Normalize each column by its maximum absolute value (the paper's
     * normalization for subsetting: "normalize the performance metrics
     * to the maximum recorded value of each").
     * Columns whose maximum is zero are left unchanged.
     */
    FeatureMatrix normalizedByColumnMax() const;

    /** Min-max normalize each column to [0, 1]. */
    FeatureMatrix normalizedMinMax() const;

    /** Z-score normalize each column (population stddev). */
    FeatureMatrix normalizedZScore() const;

    /** Copy with column @p col removed (for stability validation). */
    FeatureMatrix withoutColumn(std::size_t col) const;

    /** Copy with only the rows whose indices are in @p keep. */
    FeatureMatrix selectRows(const std::vector<std::size_t> &keep) const;

  private:
    std::vector<std::string> columnNames;
    std::vector<std::string> names;
    /** rows() x cols(), row-major, rows contiguous. */
    std::vector<double> cells;
};

/**
 * Structure-of-arrays snapshot of a FeatureMatrix: every feature
 * column materialized contiguously (column-major) in one buffer, so
 * column-wise kernels (Pearson, column stats) run at stride 1
 * without a per-column heap allocation.
 */
class FeatureColumns
{
  public:
    explicit FeatureColumns(const FeatureMatrix &m);

    std::size_t rows() const { return nRows; }
    std::size_t cols() const { return nCols; }

    /** @return pointer to column @p c's first value. */
    const double *col(std::size_t c) const
    {
        return cells.data() + c * nRows;
    }

    /** @return column @p c as a contiguous view. */
    std::span<const double> column(std::size_t c) const
    {
        return {col(c), nRows};
    }

  private:
    std::size_t nRows = 0;
    std::size_t nCols = 0;
    /** cols x rows, column-major. */
    std::vector<double> cells;
};

/** Euclidean distance between two n-element buffers. */
double euclideanDistance(const double *a, const double *b,
                         std::size_t n);

/** Squared Euclidean distance between two n-element buffers. */
double squaredEuclideanDistance(const double *a, const double *b,
                                std::size_t n);

/** Manhattan (L1) distance between two n-element buffers. */
double manhattanDistance(const double *a, const double *b,
                         std::size_t n);

/** Euclidean distance between two equal-length vectors. */
double euclideanDistance(const std::vector<double> &a,
                         const std::vector<double> &b);

/** Squared Euclidean distance between two equal-length vectors. */
double squaredEuclideanDistance(const std::vector<double> &a,
                                const std::vector<double> &b);

/** Manhattan (L1) distance between two equal-length vectors. */
double manhattanDistance(const std::vector<double> &a,
                         const std::vector<double> &b);

} // namespace mbs

#endif // MBS_STATS_FEATURE_MATRIX_HH
