/**
 * @file
 * Named observation-by-feature matrix, the hand-off format between the
 * characterization pipeline and the clustering/subsetting analyses.
 */

#ifndef MBS_STATS_FEATURE_MATRIX_HH
#define MBS_STATS_FEATURE_MATRIX_HH

#include <cstddef>
#include <string>
#include <vector>

namespace mbs {

/**
 * A dense matrix with named rows (observations, e.g. benchmarks) and
 * named columns (features, e.g. averaged performance metrics).
 */
class FeatureMatrix
{
  public:
    FeatureMatrix() = default;

    /** @param column_names Feature labels; fixes the column count. */
    explicit FeatureMatrix(std::vector<std::string> column_names);

    /**
     * Append an observation.
     * @param name Row label; must be unique.
     * @param values One value per column.
     */
    void addRow(const std::string &name, std::vector<double> values);

    std::size_t rows() const { return data.size(); }
    std::size_t cols() const { return columnNames.size(); }

    const std::vector<std::string> &rowNames() const { return names; }
    const std::vector<std::string> &colNames() const { return columnNames; }

    /** @return index of the row named @p name; fatal() if absent. */
    std::size_t rowIndex(const std::string &name) const;

    /** @return true if a row named @p name exists. */
    bool hasRow(const std::string &name) const;

    /** @return index of the column named @p name; fatal() if absent. */
    std::size_t colIndex(const std::string &name) const;

    double at(std::size_t row, std::size_t col) const;

    /** @return the full row vector at index @p row. */
    const std::vector<double> &row(std::size_t row) const;

    /** @return one column as a vector. */
    std::vector<double> column(std::size_t col) const;

    /**
     * Normalize each column by its maximum absolute value (the paper's
     * normalization for subsetting: "normalize the performance metrics
     * to the maximum recorded value of each").
     * Columns whose maximum is zero are left unchanged.
     */
    FeatureMatrix normalizedByColumnMax() const;

    /** Min-max normalize each column to [0, 1]. */
    FeatureMatrix normalizedMinMax() const;

    /** Z-score normalize each column (population stddev). */
    FeatureMatrix normalizedZScore() const;

    /** Copy with column @p col removed (for stability validation). */
    FeatureMatrix withoutColumn(std::size_t col) const;

    /** Copy with only the rows whose indices are in @p keep. */
    FeatureMatrix selectRows(const std::vector<std::size_t> &keep) const;

  private:
    std::vector<std::string> columnNames;
    std::vector<std::string> names;
    std::vector<std::vector<double>> data;
};

/** Euclidean distance between two equal-length vectors. */
double euclideanDistance(const std::vector<double> &a,
                         const std::vector<double> &b);

/** Squared Euclidean distance between two equal-length vectors. */
double squaredEuclideanDistance(const std::vector<double> &a,
                                const std::vector<double> &b);

/** Manhattan (L1) distance between two equal-length vectors. */
double manhattanDistance(const std::vector<double> &a,
                         const std::vector<double> &b);

} // namespace mbs

#endif // MBS_STATS_FEATURE_MATRIX_HH
