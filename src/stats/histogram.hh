/**
 * @file
 * Fixed-bin histograms; used to bin normalized CPU-cluster loads into
 * the paper's four load levels (Fig. 3 / Table V).
 */

#ifndef MBS_STATS_HISTOGRAM_HH
#define MBS_STATS_HISTOGRAM_HH

#include <cstddef>
#include <string>
#include <vector>

namespace mbs {

/**
 * Equal-width histogram over a closed range.
 *
 * Values below the range go to the first bin, values above to the last
 * (saturating), matching how load fractions are binned in the paper.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the range.
     * @param hi Upper edge of the range (> lo).
     * @param bins Number of equal-width bins (> 0).
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one observation. */
    void add(double value);

    /** Add every value in @p values. */
    void addAll(const std::vector<double> &values);

    std::size_t binCount() const { return counts.size(); }
    std::size_t total() const { return totalCount; }

    /** @return raw count in bin @p i. */
    std::size_t count(std::size_t i) const;

    /** @return fraction of observations in bin @p i (0 when empty). */
    double fraction(std::size_t i) const;

    /** @return all bin fractions. */
    std::vector<double> fractions() const;

    /** @return "[lo, hi)" label of bin @p i. */
    std::string binLabel(std::size_t i) const;

    /** @return the bin index @p value falls into (saturating). */
    std::size_t binOf(double value) const;

  private:
    double lo;
    double hi;
    std::vector<std::size_t> counts;
    std::size_t totalCount = 0;
};

/**
 * The paper's four CPU load levels, each spanning 25% of [0, 1].
 */
enum class LoadLevel { Low, MediumLow, MediumHigh, High };

/** @return the load level a normalized load in [0, 1] falls into. */
LoadLevel loadLevelOf(double normalized_load);

/** @return e.g. "0%-25%" for Low. */
std::string loadLevelName(LoadLevel level);

} // namespace mbs

#endif // MBS_STATS_HISTOGRAM_HH
