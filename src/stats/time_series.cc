#include "time_series.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.hh"
#include "common/simd.hh"
#include "common/sparkline.hh"

namespace mbs {

TimeSeries::TimeSeries(double interval_s, std::vector<double> values)
    : intervalS(interval_s), samples(std::move(values))
{
    fatalIf(interval_s <= 0.0, "sample interval must be positive");
}

double
TimeSeries::at(std::size_t i) const
{
    fatalIf(i >= samples.size(), "TimeSeries index out of range");
    return samples[i];
}

double
TimeSeries::mean() const
{
    if (samples.empty())
        return 0.0;
    return sum() / double(samples.size());
}

double
TimeSeries::min() const
{
    if (samples.empty())
        return 0.0;
    return simd::minValue(samples.data(), samples.size());
}

double
TimeSeries::max() const
{
    if (samples.empty())
        return 0.0;
    return simd::maxValue(samples.data(), samples.size());
}

double
TimeSeries::sum() const
{
    return simd::sum(samples.data(), samples.size());
}

double
TimeSeries::atNormalizedTime(double t) const
{
    if (samples.empty())
        return 0.0;
    const double clamped = std::clamp(t, 0.0, 1.0);
    auto idx = static_cast<std::size_t>(
        clamped * double(samples.size() - 1) + 0.5);
    idx = std::min(idx, samples.size() - 1);
    return samples[idx];
}

double
TimeSeries::fractionAbove(double threshold) const
{
    if (samples.empty())
        return 0.0;
    const std::size_t n =
        simd::countGreater(samples.data(), samples.size(), threshold);
    return double(n) / double(samples.size());
}

TimeSeries
TimeSeries::normalizedBy(double bound) const
{
    if (bound == 0.0)
        return *this;
    std::vector<double> scaled(samples.size());
    simd::divScalar(scaled.data(), samples.data(), samples.size(), bound);
    return TimeSeries(intervalS, std::move(scaled));
}

TimeSeries
TimeSeries::resampled(std::size_t n) const
{
    fatalIf(n == 0, "cannot resample to zero points");
    // Keep the covered duration constant; the interval stretches.
    const double new_interval =
        samples.empty() ? intervalS : duration() / double(n);
    return TimeSeries(new_interval, resampleMean(samples, n));
}

TimeSeries
TimeSeries::average(const std::vector<TimeSeries> &runs)
{
    fatalIf(runs.empty(), "cannot average zero runs");
    std::size_t shortest = std::numeric_limits<std::size_t>::max();
    for (const auto &run : runs)
        shortest = std::min(shortest, run.size());
    if (shortest == 0 ||
        shortest == std::numeric_limits<std::size_t>::max()) {
        return TimeSeries(runs.front().interval(), {});
    }

    std::vector<double> acc(shortest, 0.0);
    for (const auto &run : runs) {
        const TimeSeries r = run.size() == shortest
            ? run : run.resampled(shortest);
        simd::addAssign(acc.data(), r.values().data(), shortest);
    }
    simd::divScalar(acc.data(), acc.data(), shortest,
                    double(runs.size()));

    double interval = 0.0;
    for (const auto &run : runs)
        interval += run.duration();
    interval /= double(runs.size()) * double(shortest);
    return TimeSeries(interval, std::move(acc));
}

TimeSeries
TimeSeries::minusBaseline(double baseline) const
{
    std::vector<double> adjusted(samples.size());
    simd::subBaselineClamp(adjusted.data(), samples.data(),
                           samples.size(), baseline);
    return TimeSeries(intervalS, std::move(adjusted));
}

} // namespace mbs
