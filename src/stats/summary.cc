#include "summary.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mbs {

SummaryStats::SummaryStats(const std::vector<double> &samples)
    : sorted(samples)
{
    std::sort(sorted.begin(), sorted.end());
    if (sorted.empty())
        return;
    double sum = 0.0;
    for (double v : sorted)
        sum += v;
    meanValue = sum / double(sorted.size());
    double sq = 0.0;
    for (double v : sorted)
        sq += (v - meanValue) * (v - meanValue);
    stddevValue = std::sqrt(sq / double(sorted.size()));
}

double
SummaryStats::min() const
{
    return sorted.empty() ? 0.0 : sorted.front();
}

double
SummaryStats::max() const
{
    return sorted.empty() ? 0.0 : sorted.back();
}

double
SummaryStats::cv() const
{
    if (meanValue == 0.0)
        return 0.0;
    return stddevValue / std::fabs(meanValue);
}

double
SummaryStats::percentile(double p) const
{
    fatalIf(p < 0.0 || p > 100.0, "percentile must be in [0, 100]");
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted.front();
    const double rank = p / 100.0 * double(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - double(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double
SummaryStats::percentileRank(double value) const
{
    if (sorted.empty())
        return 0.0;
    const auto n = std::upper_bound(sorted.begin(), sorted.end(), value) -
        sorted.begin();
    return 100.0 * double(n) / double(sorted.size());
}

} // namespace mbs
