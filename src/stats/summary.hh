/**
 * @file
 * Scalar summary statistics over a sample vector.
 */

#ifndef MBS_STATS_SUMMARY_HH
#define MBS_STATS_SUMMARY_HH

#include <cstddef>
#include <vector>

namespace mbs {

/**
 * One-pass-computed summary of a sample set.
 *
 * Construction copies and sorts the data once so that median and
 * percentile queries are cheap afterwards.
 */
class SummaryStats
{
  public:
    /** @param samples Data to summarize; may be empty. */
    explicit SummaryStats(const std::vector<double> &samples);

    std::size_t count() const { return sorted.size(); }
    double mean() const { return meanValue; }
    double min() const;
    double max() const;

    /** Population standard deviation. */
    double stddev() const { return stddevValue; }

    /** Coefficient of variation (stddev / |mean|); 0 when mean is 0. */
    double cv() const;

    /** Median (linear-interpolated). */
    double median() const { return percentile(50.0); }

    /**
     * Linear-interpolated percentile.
     * @param p Percentile in [0, 100].
     */
    double percentile(double p) const;

    /**
     * Percentile rank of @p value: the percentage of samples <= value.
     * The paper quotes e.g. "the 32.5% percentile" for subset distances.
     */
    double percentileRank(double value) const;

  private:
    std::vector<double> sorted;
    double meanValue = 0.0;
    double stddevValue = 0.0;
};

} // namespace mbs

#endif // MBS_STATS_SUMMARY_HH
