/**
 * @file
 * Pearson correlation and correlation matrices (the paper's Table III).
 */

#ifndef MBS_STATS_CORRELATION_HH
#define MBS_STATS_CORRELATION_HH

#include <string>
#include <vector>

#include "stats/feature_matrix.hh"

namespace mbs {

/**
 * Pearson product-moment correlation coefficient of two samples.
 *
 * @return r in [-1, 1]; 0 when either sample has zero variance.
 */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/** Pearson correlation over two n-element buffers. */
double pearson(const double *x, const double *y, std::size_t n);

/** Qualitative strength bands used in the paper's discussion. */
enum class CorrelationStrength { None, Moderate, Strong };

/**
 * Classify |r| per the paper: >= 0.8 strong, 0.4-0.8 moderate,
 * otherwise none.
 */
CorrelationStrength classifyCorrelation(double r);

/** @return "strong" / "moderate" / "none". */
std::string correlationStrengthName(CorrelationStrength s);

/**
 * Symmetric correlation matrix over the columns of a feature matrix.
 */
class CorrelationMatrix
{
  public:
    /** An empty matrix (size() == 0), to be assigned later. */
    CorrelationMatrix() = default;

    /** Compute pairwise Pearson correlations of @p features columns. */
    explicit CorrelationMatrix(const FeatureMatrix &features);

    std::size_t size() const { return labels.size(); }
    const std::vector<std::string> &names() const { return labels; }

    /** @return r between columns @p a and @p b. */
    double at(std::size_t a, std::size_t b) const;

    /** @return r between named columns. */
    double at(const std::string &a, const std::string &b) const;

    /** Render the lower triangle like the paper's Table III. */
    std::string renderLowerTriangle() const;

  private:
    std::vector<std::string> labels;
    std::vector<std::vector<double>> r;
};

} // namespace mbs

#endif // MBS_STATS_CORRELATION_HH
