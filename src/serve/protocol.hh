/**
 * @file
 * The mobilebench serve wire protocol: length-prefixed JSON frames.
 *
 * Every frame on the socket is a 4-byte big-endian payload length
 * followed by exactly that many bytes of one JSON object. The object
 * always carries `"v"` (the protocol version) and `"type"`; everything
 * else depends on the type:
 *
 *   client -> server
 *     hello      {v, type, tenant}            open a session
 *     ping       {v, type}                    liveness probe
 *     submit     {v, type, job, options{},    enqueue one job; job is
 *                 bundle{files[{path,         "pipeline", "spec",
 *                 content}]}?}                "ingest" or "noop";
 *                                            bundle only for ingest
 *                                            uploads; a spec job
 *                                            ships the JSON spec body
 *                                            in options.spec; options
 *                                            may carry trace_id /
 *                                            parent_span for
 *                                            cross-process stitching
 *     stats      {v, type, volatile}          one live metrics scrape
 *     watch      {v, type, interval_seconds,  periodic scrapes;
 *                 count, volatile}            count 0 = forever
 *     shutdown   {v, type}                    request graceful stop
 *
 *   server -> client
 *     welcome    {v, type, server, build,     hello reply
 *                 max_frame_bytes}
 *     pong       {v, type, uptime_seconds,    liveness + health
 *                 build, jobs_in_queue}
 *     accepted   {v, type, job_id, queue_depth}
 *     rejected   {v, type, reason}            admission refused
 *     progress   {v, type, job_id, done, total, label}
 *     stats_ok   {v, type, prometheus,        stats reply; prometheus
 *                 uptime_seconds, build,      is text exposition of
 *                 jobs_in_queue}              the daemon domain
 *     stats_event {v, type, seq, prometheus,  one watch tick
 *                 uptime_seconds, build,
 *                 jobs_in_queue}
 *     result     {v, type, job_id, status,    status "ok"/"failed";
 *                 report, run_id, ledger_seq, report is the full
 *                 ledger_stable, wall_seconds, rendered text; the
 *                 queue_seconds, exec_seconds, stable block is the
 *                 job_dir, error}             byte-identity golden
 *     error      {v, type, message}           protocol-level fault
 *     shutdown_ok {v, type}
 *
 * Frames are parsed with the strict RFC-8259 parser
 * (common/json_parse.hh); a frame that fails to parse or validate is
 * answered with an `error` frame and the connection is closed. The
 * payload length is bounded (kMaxFrameBytes) so a garbage length
 * prefix cannot ask the peer to allocate gigabytes.
 */

#ifndef MBS_SERVE_PROTOCOL_HH
#define MBS_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json_parse.hh"

namespace mbs {
namespace serve {

/** Protocol version spoken by this build. */
constexpr int kProtocolVersion = 1;

/** Hard upper bound on one frame's JSON payload. */
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/** Encode @p payloadJson as one wire frame (length prefix + bytes). */
std::string encodeFrame(const std::string &payloadJson);

/**
 * Decode the 4-byte big-endian length prefix. fatal() when the
 * announced length exceeds @p maxBytes (a corrupt or hostile peer).
 */
std::uint32_t decodeFrameLength(const unsigned char header[4],
                                std::uint32_t maxBytes);

/**
 * One parsed frame: the validated envelope plus the raw document for
 * type-specific field access.
 */
struct Frame
{
    std::string type;
    JsonValue doc;

    /**
     * Parse and validate @p payload: strict JSON, an object, a
     * numeric "v" equal to kProtocolVersion, a string "type".
     * @throws FatalError naming the defect.
     */
    static Frame parse(const std::string &payload);

    /** String member @p key; fatal() when absent or not a string. */
    std::string str(const std::string &key) const;
    /** String member @p key, or @p fallback when absent. */
    std::string strOr(const std::string &key,
                      const std::string &fallback) const;
    /** Number member @p key; fatal() when absent or not a number. */
    double num(const std::string &key) const;
    /** Number member @p key, or @p fallback when absent. */
    double numOr(const std::string &key, double fallback) const;
    /** Bool member @p key, or @p fallback when absent. */
    bool boolOr(const std::string &key, bool fallback) const;
};

/** One uploaded file of an ingest bundle. */
struct BundleFile
{
    /** Bundle-relative path ("manifest.json", "traces/x.csv"). */
    std::string path;
    std::string content;
};

/**
 * Validate @p path as a safe bundle-relative path: non-empty,
 * relative, no "." or ".." segments, no backslashes or NULs. A
 * daemon writes uploaded files under a spool directory, so the
 * client must not be able to point one outside it.
 */
bool safeBundlePath(const std::string &path);

// --- frame builders (client -> server) ---

std::string helloFrame(const std::string &tenant);
std::string pingFrame();
std::string shutdownFrame();

/** One live scrape; @p includeVolatile adds uptime/latency series. */
std::string statsFrame(bool includeVolatile);

/** Periodic scrape request parsed from a watch frame. */
struct WatchRequest
{
    double intervalSeconds = 2.0;
    /** Number of stats_event frames to stream; 0 = until the client
     *  disconnects or the daemon stops. */
    std::uint64_t count = 0;
    bool includeVolatile = true;
};

std::string watchFrame(const WatchRequest &request);
WatchRequest watchRequestFrom(const Frame &frame);

/** Options of one submitted job, mirroring the one-shot CLI flags. */
struct JobOptions
{
    /** "pipeline", "spec", "ingest" or "noop". */
    std::string job = "pipeline";
    /**
     * spec: the full JSON spec document, shipped inline over the
     * wire (no filename crosses the trust boundary; diagnostics use
     * the fixed name "<spec>"). A hostile body fails the job with a
     * positioned compile error; the daemon lives on.
     */
    std::string spec;
    std::string faultSpec;
    double faultRate = 0.0;
    std::uint64_t faultSeed = 1;
    /** ingest: run the full pipeline on the ingested profiles. */
    bool ingestPipeline = false;
    /** ingest: tolerate malformed rows / salvage benchmarks. */
    bool lax = false;
    /** ingest: resampling tick override; 0 = bundle period. */
    double tick = 0.0;
    /** noop: payload echoed back in the result report. */
    std::string payload;
    /**
     * Client-generated trace id (16 hex chars by convention). When
     * non-empty the job runner roots the job's span tree under it
     * and emits flow events keyed off it, so the client can stitch
     * its trace and the server's into one timeline (serve/stitch.hh).
     */
    std::string traceId;
    /** Client span the job is a child of (informational). */
    std::string parentSpan;
};

std::string submitFrame(const JobOptions &options,
                        const std::vector<BundleFile> &bundle = {});

/** Parse the options of a validated submit frame. */
JobOptions jobOptionsFrom(const Frame &frame);

/**
 * The flow-event chain id derived from @p traceId (FNV-1a over the
 * id string; never 0 so it stays distinguishable from "no flow").
 * Client and daemon derive it independently from the trace id in the
 * submit frame: the submit->job-begin arrow uses this id, the
 * job-end->result arrow uses id + 1.
 */
std::uint64_t traceFlowId(const std::string &traceId);

/** Parse the bundle files of a validated submit frame (may be empty;
 *  fatal() on unsafe paths or malformed entries). */
std::vector<BundleFile> bundleFilesFrom(const Frame &frame);

// --- frame builders (server -> client) ---

std::string welcomeFrame(const std::string &server,
                         const std::string &build);

/** Daemon health at a glance, carried by pong. */
struct PongInfo
{
    double uptimeSeconds = 0.0;
    std::string build;
    std::uint64_t jobsInQueue = 0;
};

std::string pongFrame(const PongInfo &info);
/** Tolerates bare pongs from older daemons (fields default to 0/""). */
PongInfo pongInfoFrom(const Frame &frame);

/** Payload of stats_ok and stats_event frames. */
struct StatsInfo
{
    /** Prometheus text exposition of the daemon metric domain. */
    std::string prometheus;
    double uptimeSeconds = 0.0;
    std::string build;
    std::uint64_t jobsInQueue = 0;
    /** stats_event only: 0-based index within the watch stream. */
    std::uint64_t seq = 0;
};

std::string statsOkFrame(const StatsInfo &info);
std::string statsEventFrame(const StatsInfo &info);
/** Parse a stats_ok or stats_event frame. */
StatsInfo statsInfoFrom(const Frame &frame);

std::string acceptedFrame(std::uint64_t jobId,
                          std::size_t queueDepth);
std::string rejectedFrame(const std::string &reason);
std::string progressFrame(std::uint64_t jobId, std::size_t done,
                          std::size_t total,
                          const std::string &label);

/** Terminal frame of one job. */
struct ResultInfo
{
    std::uint64_t jobId = 0;
    /** "ok" or "failed". */
    std::string status = "ok";
    /** The full rendered report text (empty when failed). */
    std::string report;
    /** Run id of the ledger record ("" when none was appended). */
    std::string runId;
    /** Ledger sequence number (0 when none was appended). */
    std::uint64_t ledgerSeq = 0;
    /** Deterministic stable-block JSON of the ledger record. */
    std::string ledgerStable;
    double wallSeconds = 0.0;
    /** Seconds the job waited in the queue before dispatch. */
    double queueSeconds = 0.0;
    /** Seconds the job spent executing (excluding queue wait). */
    double execSeconds = 0.0;
    /**
     * The job's artifact directory on the daemon's filesystem
     * (trace.json, events.jsonl, ...). Meaningful to clients sharing
     * that filesystem — the loopback stitching case.
     */
    std::string jobDir;
    /** Failure message when status is "failed". */
    std::string error;
};

std::string resultFrame(const ResultInfo &info);
ResultInfo resultInfoFrom(const Frame &frame);

std::string errorFrame(const std::string &message);
std::string shutdownOkFrame();

} // namespace serve
} // namespace mbs

#endif // MBS_SERVE_PROTOCOL_HH
