/**
 * @file
 * Client side of the serve protocol: one blocking connection that
 * submits jobs and waits for their result frames. Used by the
 * `mobilebench submit` subcommand, the load generator, and the
 * serve tests.
 */

#ifndef MBS_SERVE_CLIENT_HH
#define MBS_SERVE_CLIENT_HH

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "serve/net.hh"
#include "serve/protocol.hh"

namespace mbs {
namespace serve {

class Client
{
  public:
    /** Server identity returned by the hello/welcome handshake. */
    struct Welcome
    {
        std::string server;
        std::string build;
    };

    /**
     * Connect to 127.0.0.1:@p port and perform the handshake.
     * @throws FatalError when the connection or handshake fails.
     */
    explicit Client(std::uint16_t port,
                    const std::string &tenant = "default");

    const Welcome &welcome() const { return greeting; }

    /** Ping/pong round trip; fatal() on a protocol violation. */
    void ping();

    /**
     * Submit one job and block until its result frame. Progress
     * frames invoke @p onProgress (when set) as they arrive.
     * @throws FatalError when the server rejects the submission
     *         (queue full / shutting down) or breaks protocol. A
     *         job that *ran* and failed returns normally with
     *         status "failed".
     */
    ResultInfo
    submit(const JobOptions &options,
           const std::vector<BundleFile> &bundle = {},
           const std::function<void(std::size_t, std::size_t,
                                    const std::string &)> &onProgress =
               {});

    /** Ask the daemon to stop; waits for the shutdown_ok frame. */
    void shutdownServer();

  private:
    Frame roundTrip(const std::string &frame);

    Socket sock;
    Welcome greeting;
};

/**
 * Read a trace bundle from disk into protocol BundleFiles: every
 * regular file under @p bundleDir, paths relative to it. fatal()
 * when the directory does not exist or a path is not expressible as
 * a safe bundle path.
 */
std::vector<BundleFile>
readBundleDir(const std::filesystem::path &bundleDir);

} // namespace serve
} // namespace mbs

#endif // MBS_SERVE_CLIENT_HH
