/**
 * @file
 * Client side of the serve protocol: one blocking connection that
 * submits jobs and waits for their result frames. Used by the
 * `mobilebench submit` subcommand, the load generator, and the
 * serve tests.
 */

#ifndef MBS_SERVE_CLIENT_HH
#define MBS_SERVE_CLIENT_HH

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "serve/net.hh"
#include "serve/protocol.hh"

namespace mbs {
namespace serve {

class Client
{
  public:
    /** Server identity returned by the hello/welcome handshake. */
    struct Welcome
    {
        std::string server;
        std::string build;
    };

    /**
     * Connect to 127.0.0.1:@p port and perform the handshake.
     * @throws FatalError when the connection or handshake fails.
     */
    explicit Client(std::uint16_t port,
                    const std::string &tenant = "default");

    const Welcome &welcome() const { return greeting; }

    /**
     * Ping/pong round trip; fatal() on a protocol violation.
     * @return the daemon health carried by the pong (uptime, build,
     *         queued jobs) — zeros from pre-health daemons.
     */
    PongInfo ping();

    /**
     * One live scrape of the daemon metric domain (stats/stats_ok).
     * @p includeVolatile false asks for the deterministic
     * stable-only exposition.
     */
    StatsInfo stats(bool includeVolatile = true);

    /**
     * Stream periodic scrapes (watch/stats_event), invoking
     * @p onEvent per tick. Returns after request.count events; with
     * count 0 it streams until the daemon stops or the connection
     * drops. fatal() on a protocol violation.
     */
    void watch(const WatchRequest &request,
               const std::function<void(const StatsInfo &)> &onEvent);

    /**
     * Submit one job and block until its result frame. Progress
     * frames invoke @p onProgress (when set) as they arrive.
     * @throws FatalError when the server rejects the submission
     *         (queue full / shutting down) or breaks protocol. A
     *         job that *ran* and failed returns normally with
     *         status "failed".
     */
    ResultInfo
    submit(const JobOptions &options,
           const std::vector<BundleFile> &bundle = {},
           const std::function<void(std::size_t, std::size_t,
                                    const std::string &)> &onProgress =
               {});

    /** Ask the daemon to stop; waits for the shutdown_ok frame. */
    void shutdownServer();

  private:
    Frame roundTrip(const std::string &frame);

    Socket sock;
    Welcome greeting;
};

/**
 * Read a trace bundle from disk into protocol BundleFiles: every
 * regular file under @p bundleDir, paths relative to it. fatal()
 * when the directory does not exist or a path is not expressible as
 * a safe bundle path.
 */
std::vector<BundleFile>
readBundleDir(const std::filesystem::path &bundleDir);

/**
 * A fresh client-side trace id: 16 lowercase hex chars derived from
 * the wall clock, the steady clock and the pid. Unique enough to key
 * one submit's flow arrows; not a cryptographic id.
 */
std::string makeTraceId();

} // namespace serve
} // namespace mbs

#endif // MBS_SERVE_CLIENT_HH
