/**
 * @file
 * The serve daemon: accept loop, per-connection sessions, and the
 * single dispatcher thread that feeds the JobRunner.
 *
 * Threading model:
 *   - run() owns the accept loop (one thread, usually main).
 *   - every accepted connection gets a detached-by-join session
 *     thread that speaks the protocol and offers jobs to the queue.
 *     stats/watch frames are answered right on the session thread,
 *     which is what makes a scrape work *mid-job*: the dispatcher
 *     may be deep inside a pipeline run while a monitoring session
 *     reads the daemon metric domain;
 *   - ONE dispatcher thread takes jobs and runs them serially —
 *     jobs reset process-wide observability state (see
 *     job_runner.hh), so two cannot overlap. Parallelism lives
 *     inside a job, through the runner's shared executor.
 *
 * A session's socket is owned by a shared SessionState: queued jobs
 * hold a reference through their reply closures, so a client that
 * disconnects early never leaves the runner writing to a dead fd —
 * the reply just starts returning false and the job still completes
 * (and its ledger record still lands).
 *
 * requestStop() is safe to call from the signal watcher thread: it
 * closes the listener (waking accept), closes the queue (dispatcher
 * drains in-flight work, then exits) and shuts down open sessions.
 */

#ifndef MBS_SERVE_SERVER_HH
#define MBS_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/daemon_metrics.hh"
#include "serve/job_queue.hh"
#include "serve/job_runner.hh"
#include "serve/net.hh"

namespace mbs {
namespace serve {

struct ServerConfig
{
    /** Port to listen on; 0 picks an ephemeral one (see port()). */
    std::uint16_t port = 0;
    /** Bound on queued (not yet running) jobs across all tenants. */
    std::size_t queueCapacity = 32;
    RunnerConfig runner;
};

/** Daemon-lifetime counters (stderr summary on shutdown). These are
 *  plain atomics, NOT process-wide MetricsRegistry instruments: that
 *  registry is reset per job to keep ledger records byte-identical
 *  to one-shot runs, and daemon bookkeeping must never leak into
 *  that block. The scrape-able mirror of these counters lives in the
 *  server's own DaemonMetrics domain (daemon_metrics.hh), updated at
 *  the same sites. */
struct ServerStats
{
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> failed{0};
};

class Server
{
  public:
    explicit Server(const ServerConfig &config);
    ~Server();

    /**
     * Bind the listener and start the dispatcher. Returns once the
     * daemon is accepting (so callers can read port() / announce
     * readiness before blocking in run()).
     */
    void start();

    /** The actual listening port (after start()). */
    std::uint16_t port() const { return listenPort; }

    /**
     * Accept connections until requestStop(). Drains the queue,
     * joins every thread, prints the stats summary to stderr.
     * @return 0 on a clean stop.
     */
    int run();

    /** Initiate a graceful stop; callable from any thread. */
    void requestStop();

    const ServerStats &stats() const { return counters; }

    /** The daemon-scoped metric domain behind stats/watch frames. */
    DaemonMetrics &daemonMetrics() { return metrics; }

    /** Seconds since start(); 0 before it. */
    double uptimeSeconds() const;

  private:
    struct SessionState;

    void dispatchLoop();
    void session(std::shared_ptr<SessionState> state);
    void reapSessions(bool all);
    PongInfo makePong();
    StatsInfo makeStats(bool includeVolatile);
    void watchLoop(SessionState &st, const WatchRequest &request);

    ServerConfig cfg;
    JobRunner runner;
    JobQueue queue;
    ServerStats counters;
    DaemonMetrics metrics;
    std::chrono::steady_clock::time_point startedAt{};

    Socket listener;
    std::uint16_t listenPort = 0;
    std::atomic<bool> stopping{false};
    std::atomic<std::uint64_t> nextJobId{1};

    std::thread dispatcher;
    std::mutex sessionsMutex;
    std::vector<std::shared_ptr<SessionState>> sessions;
};

} // namespace serve
} // namespace mbs

#endif // MBS_SERVE_SERVER_HH
