#include "serve/client.hh"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/digest.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "obs/trace.hh"

namespace mbs {
namespace serve {

namespace fs = std::filesystem;

Client::Client(std::uint16_t port, const std::string &tenant)
    : sock(connectTo(port))
{
    const Frame reply = roundTrip(helloFrame(tenant));
    if (reply.type == "rejected")
        fatal("serve client: " + reply.str("reason"));
    fatalIf(reply.type != "welcome",
            strformat("serve client: expected welcome, got '%s'",
                      reply.type.c_str()));
    greeting.server = reply.str("server");
    greeting.build = reply.str("build");
}

Frame
Client::roundTrip(const std::string &frame)
{
    fatalIf(!sendFrame(sock, frame),
            "serve client: server hung up on send");
    for (;;) {
        const auto payload = recvFrame(sock);
        fatalIf(!payload.has_value(),
                "serve client: server hung up awaiting reply");
        const Frame reply = Frame::parse(*payload);
        // The session thread (accepted) and the dispatcher (result)
        // race on the socket, so a completed submit can leave its
        // accepted/progress notifications trailing in the stream.
        // They are never the reply to a request sent afterwards.
        if (reply.type == "accepted" || reply.type == "progress")
            continue;
        return reply;
    }
}

PongInfo
Client::ping()
{
    const Frame reply = roundTrip(pingFrame());
    fatalIf(reply.type != "pong",
            strformat("serve client: expected pong, got '%s'",
                      reply.type.c_str()));
    return pongInfoFrom(reply);
}

StatsInfo
Client::stats(bool includeVolatile)
{
    const Frame reply = roundTrip(statsFrame(includeVolatile));
    fatalIf(reply.type != "stats_ok",
            strformat("serve client: expected stats_ok, got '%s'",
                      reply.type.c_str()));
    return statsInfoFrom(reply);
}

void
Client::watch(const WatchRequest &request,
              const std::function<void(const StatsInfo &)> &onEvent)
{
    fatalIf(!sendFrame(sock, watchFrame(request)),
            "serve client: server hung up on watch");
    std::uint64_t received = 0;
    while (request.count == 0 || received < request.count) {
        const auto payload = recvFrame(sock);
        if (!payload.has_value()) {
            // count 0 means "until the daemon goes away" — EOF is
            // the expected end of that stream, not a fault.
            fatalIf(request.count != 0,
                    "serve client: server hung up mid-watch");
            return;
        }
        const Frame frame = Frame::parse(*payload);
        // Skip trailing notifications from earlier submits on this
        // session (see roundTrip).
        if (frame.type == "accepted" || frame.type == "progress")
            continue;
        fatalIf(frame.type != "stats_event",
                strformat("serve client: expected stats_event, "
                          "got '%s'", frame.type.c_str()));
        if (onEvent)
            onEvent(statsInfoFrom(frame));
        ++received;
    }
}

ResultInfo
Client::submit(const JobOptions &options,
               const std::vector<BundleFile> &bundle,
               const std::function<void(std::size_t, std::size_t,
                                        const std::string &)>
                   &onProgress)
{
    // When the caller supplied a trace id, mirror the server's flow
    // anchors: the 's' here pairs with the runner's 'f' at job begin
    // and the runner's 's' at job end pairs with the 'f' below —
    // after stitching (stitch.hh) the two traces are connected by
    // those arrows.
    std::unique_ptr<obs::ScopedSpan> span;
    if (!options.traceId.empty()) {
        obs::Tracer::instance().metadata("trace_id",
                                         options.traceId);
        span = std::make_unique<obs::ScopedSpan>(
            "serve.submit", "serve",
            obs::TraceArgs{{"trace_id", options.traceId},
                           {"job", options.job}});
        obs::Tracer::instance().flow(
            's', "serve.submit", "serve",
            traceFlowId(options.traceId));
    }
    fatalIf(!sendFrame(sock, submitFrame(options, bundle)),
            "serve client: server hung up on submit");
    // accepted / progress / result arrive in no guaranteed relative
    // order (the session and dispatcher threads race); take frames
    // as they come until the terminal one.
    for (;;) {
        const auto payload = recvFrame(sock);
        fatalIf(!payload.has_value(),
                "serve client: server hung up awaiting result");
        const Frame frame = Frame::parse(*payload);
        if (frame.type == "accepted")
            continue;
        if (frame.type == "progress") {
            if (onProgress) {
                onProgress(std::size_t(frame.num("done")),
                           std::size_t(frame.num("total")),
                           frame.strOr("label", ""));
            }
            continue;
        }
        if (frame.type == "result") {
            if (!options.traceId.empty())
                obs::Tracer::instance().flow(
                    'f', "serve.result", "serve",
                    traceFlowId(options.traceId) + 1);
            return resultInfoFrom(frame);
        }
        if (frame.type == "rejected")
            fatal("serve client: submission rejected: " +
                  frame.str("reason"));
        if (frame.type == "error")
            fatal("serve client: server error: " +
                  frame.str("message"));
        fatal(strformat("serve client: unexpected frame '%s'",
                        frame.type.c_str()));
    }
}

void
Client::shutdownServer()
{
    const Frame reply = roundTrip(shutdownFrame());
    fatalIf(reply.type != "shutdown_ok",
            strformat("serve client: expected shutdown_ok, got '%s'",
                      reply.type.c_str()));
}

std::vector<BundleFile>
readBundleDir(const fs::path &bundleDir)
{
    fatalIf(!fs::is_directory(bundleDir),
            strformat("serve client: '%s' is not a directory",
                      bundleDir.string().c_str()));
    std::vector<BundleFile> files;
    for (const auto &entry :
         fs::recursive_directory_iterator(bundleDir)) {
        if (!entry.is_regular_file())
            continue;
        const fs::path rel =
            fs::relative(entry.path(), bundleDir);
        BundleFile file;
        file.path = rel.generic_string();
        fatalIf(!safeBundlePath(file.path),
                strformat("serve client: cannot upload '%s'",
                          file.path.c_str()));
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream content;
        content << in.rdbuf();
        fatalIf(!in.good() && !in.eof(),
                strformat("serve client: cannot read '%s'",
                          entry.path().string().c_str()));
        file.content = content.str();
        files.push_back(std::move(file));
    }
    fatalIf(files.empty(),
            strformat("serve client: bundle '%s' has no files",
                      bundleDir.string().c_str()));
    // Deterministic upload order (directory iteration is not).
    std::sort(files.begin(), files.end(),
              [](const BundleFile &a, const BundleFile &b) {
                  return a.path < b.path;
              });
    return files;
}

std::string
makeTraceId()
{
    Fnv1a h;
    h.mix(std::uint64_t(
        std::chrono::system_clock::now().time_since_epoch().count()));
    h.mix(std::uint64_t(
        std::chrono::steady_clock::now().time_since_epoch().count()));
    h.mix(std::uint64_t(::getpid()));
    return strformat("%016llx", (unsigned long long)h.value());
}

} // namespace serve
} // namespace mbs
