#include "serve/client.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace mbs {
namespace serve {

namespace fs = std::filesystem;

Client::Client(std::uint16_t port, const std::string &tenant)
    : sock(connectTo(port))
{
    const Frame reply = roundTrip(helloFrame(tenant));
    if (reply.type == "rejected")
        fatal("serve client: " + reply.str("reason"));
    fatalIf(reply.type != "welcome",
            strformat("serve client: expected welcome, got '%s'",
                      reply.type.c_str()));
    greeting.server = reply.str("server");
    greeting.build = reply.str("build");
}

Frame
Client::roundTrip(const std::string &frame)
{
    fatalIf(!sendFrame(sock, frame),
            "serve client: server hung up on send");
    const auto payload = recvFrame(sock);
    fatalIf(!payload.has_value(),
            "serve client: server hung up awaiting reply");
    return Frame::parse(*payload);
}

void
Client::ping()
{
    const Frame reply = roundTrip(pingFrame());
    fatalIf(reply.type != "pong",
            strformat("serve client: expected pong, got '%s'",
                      reply.type.c_str()));
}

ResultInfo
Client::submit(const JobOptions &options,
               const std::vector<BundleFile> &bundle,
               const std::function<void(std::size_t, std::size_t,
                                        const std::string &)>
                   &onProgress)
{
    fatalIf(!sendFrame(sock, submitFrame(options, bundle)),
            "serve client: server hung up on submit");
    // accepted / progress / result arrive in no guaranteed relative
    // order (the session and dispatcher threads race); take frames
    // as they come until the terminal one.
    for (;;) {
        const auto payload = recvFrame(sock);
        fatalIf(!payload.has_value(),
                "serve client: server hung up awaiting result");
        const Frame frame = Frame::parse(*payload);
        if (frame.type == "accepted")
            continue;
        if (frame.type == "progress") {
            if (onProgress) {
                onProgress(std::size_t(frame.num("done")),
                           std::size_t(frame.num("total")),
                           frame.strOr("label", ""));
            }
            continue;
        }
        if (frame.type == "result")
            return resultInfoFrom(frame);
        if (frame.type == "rejected")
            fatal("serve client: submission rejected: " +
                  frame.str("reason"));
        if (frame.type == "error")
            fatal("serve client: server error: " +
                  frame.str("message"));
        fatal(strformat("serve client: unexpected frame '%s'",
                        frame.type.c_str()));
    }
}

void
Client::shutdownServer()
{
    const Frame reply = roundTrip(shutdownFrame());
    fatalIf(reply.type != "shutdown_ok",
            strformat("serve client: expected shutdown_ok, got '%s'",
                      reply.type.c_str()));
}

std::vector<BundleFile>
readBundleDir(const fs::path &bundleDir)
{
    fatalIf(!fs::is_directory(bundleDir),
            strformat("serve client: '%s' is not a directory",
                      bundleDir.string().c_str()));
    std::vector<BundleFile> files;
    for (const auto &entry :
         fs::recursive_directory_iterator(bundleDir)) {
        if (!entry.is_regular_file())
            continue;
        const fs::path rel =
            fs::relative(entry.path(), bundleDir);
        BundleFile file;
        file.path = rel.generic_string();
        fatalIf(!safeBundlePath(file.path),
                strformat("serve client: cannot upload '%s'",
                          file.path.c_str()));
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream content;
        content << in.rdbuf();
        fatalIf(!in.good() && !in.eof(),
                strformat("serve client: cannot read '%s'",
                          entry.path().string().c_str()));
        file.content = content.str();
        files.push_back(std::move(file));
    }
    fatalIf(files.empty(),
            strformat("serve client: bundle '%s' has no files",
                      bundleDir.string().c_str()));
    // Deterministic upload order (directory iteration is not).
    std::sort(files.begin(), files.end(),
              [](const BundleFile &a, const BundleFile &b) {
                  return a.path < b.path;
              });
    return files;
}

} // namespace serve
} // namespace mbs
