#include "serve/loadgen.hh"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/strings.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "serve/client.hh"

namespace mbs {
namespace serve {

namespace {

/**
 * Exact percentiles over the observed latencies: bucket bounds are
 * the sorted distinct observations themselves, so the cumulative
 * interpolation is exact at every observed rank (the same trick the
 * CLI's stage summary uses).
 */
double
exactPercentile(const std::vector<double> &values, double p)
{
    if (values.empty())
        return 0.0;
    std::vector<double> bounds = values;
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()),
                 bounds.end());
    obs::Histogram hist(std::move(bounds));
    for (const double v : values)
        hist.observe(v);
    return hist.percentile(p);
}

} // namespace

std::string
LoadgenSummary::toJson() const
{
    std::string out = "{";
    out += "\"jobs\": " + obs::jsonNumber(double(jobs));
    out += ", \"ok\": " + obs::jsonNumber(double(ok));
    out += ", \"failed\": " + obs::jsonNumber(double(failed));
    out += ", \"latency_p50_s\": " + obs::jsonNumber(p50);
    out += ", \"latency_p95_s\": " + obs::jsonNumber(p95);
    out += ", \"latency_p99_s\": " + obs::jsonNumber(p99);
    out += ", \"latency_mean_s\": " + obs::jsonNumber(meanSeconds);
    out += ", \"queue_wait_p50_s\": " + obs::jsonNumber(queueWaitP50);
    out += ", \"queue_wait_p95_s\": " + obs::jsonNumber(queueWaitP95);
    out += ", \"queue_wait_p99_s\": " + obs::jsonNumber(queueWaitP99);
    out += ", \"exec_p50_s\": " + obs::jsonNumber(execP50);
    out += ", \"exec_p95_s\": " + obs::jsonNumber(execP95);
    out += ", \"exec_p99_s\": " + obs::jsonNumber(execP99);
    out += ", \"wall_seconds\": " + obs::jsonNumber(wallSeconds);
    out += "}\n";
    return out;
}

std::string
LoadgenSummary::toText() const
{
    return strformat(
               "loadgen: %d jobs (%d ok, %d failed) in %.2f s — "
               "latency p50 %.1f ms, p95 %.1f ms, p99 %.1f ms, "
               "mean %.1f ms\n",
               jobs, ok, failed, wallSeconds, p50 * 1e3, p95 * 1e3,
               p99 * 1e3, meanSeconds * 1e3) +
        strformat("loadgen: server split — queue-wait p50 %.1f ms, "
                  "p95 %.1f ms, p99 %.1f ms; exec p50 %.1f ms, "
                  "p95 %.1f ms, p99 %.1f ms\n",
                  queueWaitP50 * 1e3, queueWaitP95 * 1e3,
                  queueWaitP99 * 1e3, execP50 * 1e3, execP95 * 1e3,
                  execP99 * 1e3);
}

LoadgenSummary
runLoadgen(const LoadgenOptions &options)
{
    fatalIf(options.port == 0, "loadgen: --port is required");
    fatalIf(options.clients < 1 || options.jobsPerClient < 1,
            "loadgen: --clients and --jobs must be at least 1");

    // Wall-clock latencies are Volatile by definition: they must
    // never enter a ledger record's stable block. The Stable
    // ok/failed counters, by contrast, are deterministic for a
    // given load plan against a healthy daemon.
    auto &reg = obs::MetricsRegistry::instance();
    auto &latency = reg.histogram(
        "serve.loadgen.latency_seconds",
        {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0},
        obs::Volatility::Volatile,
        "end-to-end serve job latency (submit to result)");
    auto &okCounter =
        reg.counter("serve.loadgen.jobs_ok", obs::Volatility::Stable,
                    "loadgen jobs that returned status ok");
    auto &failCounter = reg.counter(
        "serve.loadgen.jobs_failed", obs::Volatility::Stable,
        "loadgen jobs that failed or were rejected");
    // The daemon-reported split rides in the loadgen run's *ledger
    // record* (Stable snapshot), unlike the end-to-end wall-clock
    // histogram above: loadgen records carry no byte-identity
    // golden, and having the split on the record is what lets
    // `mobilebench ledger compare` show queue-wait growth between
    // two load runs.
    auto &queueWaitHist = reg.histogram(
        "serve.loadgen.queue_wait_seconds",
        {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0},
        obs::Volatility::Stable,
        "per-job queue wait reported by the daemon's result frames");
    auto &execHist = reg.histogram(
        "serve.loadgen.exec_seconds",
        {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0},
        obs::Volatility::Stable,
        "per-job execution time reported by the daemon's result "
        "frames");

    std::mutex mergeMutex;
    std::vector<double> latencies;
    std::vector<double> queueWaits;
    std::vector<double> execs;
    int ok = 0;
    int failed = 0;

    const auto wallStart = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(std::size_t(options.clients));
    for (int c = 0; c < options.clients; ++c) {
        workers.emplace_back([&, c] {
            std::vector<double> mine;
            std::vector<double> myQueueWaits;
            std::vector<double> myExecs;
            int myOk = 0;
            int myFailed = 0;
            try {
                Client client(options.port,
                              strformat("loadgen-%d", c));
                for (int j = 0; j < options.jobsPerClient; ++j) {
                    const auto t0 =
                        std::chrono::steady_clock::now();
                    try {
                        const ResultInfo info =
                            client.submit(options.job);
                        const double dt =
                            std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                t0)
                                .count();
                        mine.push_back(dt);
                        latency.observe(dt);
                        myQueueWaits.push_back(info.queueSeconds);
                        myExecs.push_back(info.execSeconds);
                        queueWaitHist.observe(info.queueSeconds);
                        execHist.observe(info.execSeconds);
                        if (info.status == "ok")
                            ++myOk;
                        else
                            ++myFailed;
                    } catch (const std::exception &) {
                        // Rejected or connection-poisoned; count
                        // it and keep the remaining jobs honest.
                        ++myFailed;
                    }
                }
            } catch (const std::exception &) {
                // Could not even connect: every job this client
                // never got to run counts as failed.
                myFailed += options.jobsPerClient - myOk - myFailed;
            }
            std::lock_guard<std::mutex> lock(mergeMutex);
            latencies.insert(latencies.end(), mine.begin(),
                             mine.end());
            queueWaits.insert(queueWaits.end(), myQueueWaits.begin(),
                              myQueueWaits.end());
            execs.insert(execs.end(), myExecs.begin(), myExecs.end());
            ok += myOk;
            failed += myFailed;
        });
    }
    for (auto &w : workers)
        w.join();

    LoadgenSummary summary;
    summary.jobs = options.clients * options.jobsPerClient;
    summary.ok = ok;
    summary.failed = summary.jobs - ok;
    summary.p50 = exactPercentile(latencies, 0.50);
    summary.p95 = exactPercentile(latencies, 0.95);
    summary.p99 = exactPercentile(latencies, 0.99);
    summary.queueWaitP50 = exactPercentile(queueWaits, 0.50);
    summary.queueWaitP95 = exactPercentile(queueWaits, 0.95);
    summary.queueWaitP99 = exactPercentile(queueWaits, 0.99);
    summary.execP50 = exactPercentile(execs, 0.50);
    summary.execP95 = exactPercentile(execs, 0.95);
    summary.execP99 = exactPercentile(execs, 0.99);
    double sum = 0.0;
    for (const double v : latencies)
        sum += v;
    summary.meanSeconds =
        latencies.empty() ? 0.0 : sum / double(latencies.size());
    summary.wallSeconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              wallStart)
                              .count();
    okCounter.add(std::uint64_t(summary.ok));
    failCounter.add(std::uint64_t(summary.failed));
    return summary;
}

} // namespace serve
} // namespace mbs
