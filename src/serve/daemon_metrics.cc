#include "serve/daemon_metrics.hh"

#include "obs/export_prometheus.hh"
#include "report/capture.hh"

namespace mbs {
namespace serve {

namespace {

using obs::Volatility;

/** Latency bounds shared by the queue-wait and execution series. */
std::vector<double>
latencyBounds()
{
    return {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0};
}

constexpr const char *kQueueWaitHelp =
    "Seconds jobs waited in the admission queue before dispatch.";
constexpr const char *kExecHelp =
    "Seconds jobs spent executing (queue wait excluded).";

} // namespace

DaemonMetrics::DaemonMetrics()
    : accepted(domain.counter(
          "serve.jobs_accepted", Volatility::Stable,
          "Jobs admitted to the daemon's bounded queue.")),
      rejected(domain.counter(
          "serve.jobs_rejected", Volatility::Stable,
          "Jobs refused admission (queue full or daemon stopping).")),
      completed(domain.counter(
          "serve.jobs_completed", Volatility::Stable,
          "Jobs that finished with status ok.")),
      failed(domain.counter(
          "serve.jobs_failed", Volatility::Stable,
          "Jobs that finished with status failed.")),
      queueDepth(domain.gauge(
          "serve.queue_depth", Volatility::Stable,
          "Jobs currently waiting in the admission queue.")),
      uptime(domain.gauge(
          "serve.uptime_seconds", Volatility::Volatile,
          "Seconds since the daemon started listening.")),
      queueWaitAll(domain.histogram(
          "serve.queue_wait_seconds", latencyBounds(),
          Volatility::Volatile, kQueueWaitHelp)),
      execAll(domain.histogram(
          "serve.exec_seconds", latencyBounds(),
          Volatility::Volatile, kExecHelp))
{
    domain.gauge(obs::labeledMetric("serve.build_info", "build",
                                    report::buildStamp()),
                 Volatility::Stable,
                 "Constant 1; the build label carries the daemon's "
                 "build stamp.")
        .set(1.0);
    // Registered up front so every percentile family has HELP even
    // before the first job completes.
    for (const char *p : {"p50", "p95", "p99"}) {
        domain.gauge("serve.queue_wait_seconds_" + std::string(p),
                     Volatility::Volatile,
                     "Queue-wait quantile interpolated from "
                     "serve.queue_wait_seconds at scrape time.");
        domain.gauge("serve.exec_seconds_" + std::string(p),
                     Volatility::Volatile,
                     "Execution-time quantile interpolated from "
                     "serve.exec_seconds at scrape time.");
    }
}

DaemonMetrics::TenantInstruments &
DaemonMetrics::tenantInstruments(const std::string &tenant)
{
    std::lock_guard<std::mutex> lock(mtx);
    TenantInstruments &t = tenants[tenant];
    if (t.queueWait == nullptr) {
        t.queueWait = &domain.histogram(
            obs::labeledMetric("serve.queue_wait_seconds", "tenant",
                               tenant),
            latencyBounds(), Volatility::Volatile, kQueueWaitHelp);
        t.exec = &domain.histogram(
            obs::labeledMetric("serve.exec_seconds", "tenant", tenant),
            latencyBounds(), Volatility::Volatile, kExecHelp);
    }
    return t;
}

void
DaemonMetrics::onAccepted(const std::string &tenant)
{
    accepted.add();
    domain.counter(obs::labeledMetric("serve.jobs_accepted", "tenant",
                                      tenant))
        .add();
}

void
DaemonMetrics::onRejected(const std::string &tenant)
{
    rejected.add();
    domain.counter(obs::labeledMetric("serve.jobs_rejected", "tenant",
                                      tenant))
        .add();
}

void
DaemonMetrics::onCompleted(const std::string &tenant,
                           double queueSeconds, double execSeconds)
{
    completed.add();
    domain.counter(obs::labeledMetric("serve.jobs_completed", "tenant",
                                      tenant))
        .add();
    TenantInstruments &t = tenantInstruments(tenant);
    queueWaitAll.observe(queueSeconds);
    execAll.observe(execSeconds);
    t.queueWait->observe(queueSeconds);
    t.exec->observe(execSeconds);
}

void
DaemonMetrics::onFailed(const std::string &tenant, double queueSeconds,
                        double execSeconds)
{
    failed.add();
    domain.counter(obs::labeledMetric("serve.jobs_failed", "tenant",
                                      tenant))
        .add();
    // A failed job still waited and ran; its latency belongs in the
    // same distributions the completed path feeds.
    TenantInstruments &t = tenantInstruments(tenant);
    queueWaitAll.observe(queueSeconds);
    execAll.observe(execSeconds);
    t.queueWait->observe(queueSeconds);
    t.exec->observe(execSeconds);
}

void
DaemonMetrics::setQueueDepth(std::size_t depth)
{
    queueDepth.set(double(depth));
}

void
DaemonMetrics::refreshPercentiles()
{
    const double quantiles[] = {0.50, 0.95, 0.99};
    const char *suffixes[] = {"p50", "p95", "p99"};
    for (int i = 0; i < 3; ++i) {
        const std::string qw =
            "serve.queue_wait_seconds_" + std::string(suffixes[i]);
        const std::string ex =
            "serve.exec_seconds_" + std::string(suffixes[i]);
        domain.gauge(qw, Volatility::Volatile)
            .set(queueWaitAll.percentile(quantiles[i]));
        domain.gauge(ex, Volatility::Volatile)
            .set(execAll.percentile(quantiles[i]));
        std::lock_guard<std::mutex> lock(mtx);
        for (const auto &[tenant, t] : tenants) {
            domain.gauge(obs::labeledMetric(qw, "tenant", tenant),
                         Volatility::Volatile)
                .set(t.queueWait->percentile(quantiles[i]));
            domain.gauge(obs::labeledMetric(ex, "tenant", tenant),
                         Volatility::Volatile)
                .set(t.exec->percentile(quantiles[i]));
        }
    }
}

std::string
DaemonMetrics::render(bool includeVolatile, double uptimeSeconds)
{
    if (includeVolatile) {
        uptime.set(uptimeSeconds);
        refreshPercentiles();
    }
    return obs::toPrometheusText(domain.snapshot(includeVolatile));
}

} // namespace serve
} // namespace mbs
