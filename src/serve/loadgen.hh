/**
 * @file
 * The serve load driver: N concurrent clients each submitting M jobs
 * and measuring end-to-end latency (submit sent -> result received).
 *
 * Latencies feed the obs machinery twice: every observation lands in
 * the Volatile `serve.loadgen.latency_seconds` registry histogram
 * (exported by the telemetry sink like any other instrument), and
 * the reported p50/p95/p99 are computed through the same
 * exact-bounds Histogram interpolation the CLI's stage summary uses,
 * so a percentile here and a percentile there mean the same thing.
 *
 * Result frames additionally carry the daemon's own latency split —
 * queue_seconds (admission to dispatch) and exec_seconds (dispatch
 * to done) — which the driver folds into two more histograms,
 * `serve.loadgen.queue_wait_seconds` and `serve.loadgen.exec_seconds`
 * (Stable, so they appear in the loadgen run's ledger record), and
 * reports as separate percentile columns. End-to-end latency minus
 * the two is the protocol + framing overhead.
 */

#ifndef MBS_SERVE_LOADGEN_HH
#define MBS_SERVE_LOADGEN_HH

#include <cstdint>
#include <string>

#include "serve/protocol.hh"

namespace mbs {
namespace serve {

struct LoadgenOptions
{
    /** Daemon port (required). */
    std::uint16_t port = 0;
    /** Concurrent client connections. */
    int clients = 4;
    /** Jobs each client submits back to back. */
    int jobsPerClient = 8;
    /** The job every client submits; default is a noop probe that
     *  measures protocol + queue + dispatch latency without the
     *  pipeline's compute cost. */
    JobOptions job;
};

struct LoadgenSummary
{
    int jobs = 0;
    int ok = 0;
    int failed = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double meanSeconds = 0.0;
    double wallSeconds = 0.0;
    /** Daemon-reported queue-wait split (result-frame timings). */
    double queueWaitP50 = 0.0;
    double queueWaitP95 = 0.0;
    double queueWaitP99 = 0.0;
    /** Daemon-reported execution-time split (result-frame timings). */
    double execP50 = 0.0;
    double execP95 = 0.0;
    double execP99 = 0.0;

    /** Deterministic-key JSON document of the summary. */
    std::string toJson() const;
    /** One-line human rendering for the CLI. */
    std::string toText() const;
};

/**
 * Run the load; never throws. A client whose submission fails keeps
 * going with its next job, and every failure is counted.
 */
LoadgenSummary runLoadgen(const LoadgenOptions &options);

} // namespace serve
} // namespace mbs

#endif // MBS_SERVE_LOADGEN_HH
