/**
 * @file
 * Bounded multi-tenant job queue with fair round-robin admission.
 *
 * Sessions offer() jobs tagged with their tenant name; the dispatcher
 * take()s them one at a time. Capacity bounds the *total* number of
 * queued jobs — a full queue rejects new offers immediately (the
 * session answers with a `rejected` frame) instead of blocking the
 * socket thread. Dequeue order is round-robin across tenants with
 * jobs pending, FIFO within each tenant: a tenant that floods the
 * queue with 30 jobs cannot starve one that submitted a single job a
 * moment later.
 */

#ifndef MBS_SERVE_JOB_QUEUE_HH
#define MBS_SERVE_JOB_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hh"

namespace mbs {
namespace serve {

/** One queued unit of work plus its reply plumbing. */
struct Job
{
    std::uint64_t id = 0;
    std::string tenant;
    JobOptions options;
    std::vector<BundleFile> bundle;
    /** Admission time; the dispatcher derives queueSeconds from it. */
    std::chrono::steady_clock::time_point enqueuedAt{};
    /** Queue wait, filled by the dispatcher right before dispatch;
     *  lands in the result frame and the daemon latency histograms. */
    double queueSeconds = 0.0;
    /**
     * Sends one frame back to the submitting client; returns false
     * when that client is gone (the runner then drops further
     * frames but still finishes the job).
     */
    std::function<bool(const std::string &)> reply;
};

class JobQueue
{
  public:
    explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

    enum class Offer { Accepted, Full, Closed };

    /** Enqueue @p job under its tenant; never blocks. */
    Offer offer(Job job);

    /**
     * Dequeue the next job fairly, blocking until one is available.
     * @return nullopt once the queue is closed *and* drained.
     */
    std::optional<Job> take();

    /** Stop admission; take() keeps draining what was accepted. */
    void close();

    std::size_t depth() const;
    bool closed() const;

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    /** Tenant name -> that tenant's FIFO backlog. */
    std::map<std::string, std::deque<Job>> tenants_;
    /** Tenant whose turn comes after the last dequeue. */
    std::string cursor_;
    std::size_t depth_ = 0;
    bool closed_ = false;
};

} // namespace serve
} // namespace mbs

#endif // MBS_SERVE_JOB_QUEUE_HH
