#include "serve/job_queue.hh"

namespace mbs {
namespace serve {

JobQueue::Offer
JobQueue::offer(Job job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return Offer::Closed;
        if (depth_ >= capacity_)
            return Offer::Full;
        tenants_[job.tenant].push_back(std::move(job));
        ++depth_;
    }
    ready_.notify_one();
    return Offer::Accepted;
}

std::optional<Job>
JobQueue::take()
{
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return depth_ > 0 || closed_; });
    if (depth_ == 0)
        return std::nullopt;

    // Round-robin: serve the first tenant strictly after the cursor
    // (map order is the rotation order), wrapping to the beginning.
    // upper_bound handles a cursor tenant that has since drained and
    // been erased.
    auto it = tenants_.upper_bound(cursor_);
    if (it == tenants_.end())
        it = tenants_.begin();
    Job job = std::move(it->second.front());
    it->second.pop_front();
    cursor_ = it->first;
    if (it->second.empty())
        tenants_.erase(it);
    --depth_;
    return job;
}

void
JobQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    ready_.notify_all();
}

std::size_t
JobQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return depth_;
}

bool
JobQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

} // namespace serve
} // namespace mbs
