#include "serve/stitch.hh"

#include <utility>
#include <vector>

#include "common/json_parse.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "obs/json.hh"

namespace mbs {
namespace serve {

namespace {

/** First member named @p key, mutable (objects only). */
JsonValue *
findMut(JsonValue &value, const std::string &key)
{
    for (auto &[k, v] : value.object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

/**
 * Serialize @p value back to JSON, members in document order. The
 * tracer's own exporter only emits objects/arrays/strings/numbers,
 * but bools and nulls are covered for forward compatibility.
 */
void
appendJson(std::string &out, const JsonValue &value)
{
    switch (value.type) {
      case JsonValue::Type::Null:
        out += "null";
        break;
      case JsonValue::Type::Bool:
        out += value.boolean ? "true" : "false";
        break;
      case JsonValue::Type::Number:
        out += obs::jsonNumber(value.number);
        break;
      case JsonValue::Type::String:
        out += '"';
        out += obs::jsonEscape(value.str);
        out += '"';
        break;
      case JsonValue::Type::Array: {
        out += "[";
        bool first = true;
        for (const auto &v : value.array) {
            if (!first)
                out += ", ";
            first = false;
            appendJson(out, v);
        }
        out += "]";
        break;
      }
      case JsonValue::Type::Object: {
        out += "{";
        bool first = true;
        for (const auto &[k, v] : value.object) {
            if (!first)
                out += ", ";
            first = false;
            out += '"';
            out += obs::jsonEscape(k);
            out += "\": ";
            appendJson(out, v);
        }
        out += "}";
        break;
      }
    }
}

/** The event's name when it is a process_name metadata record. */
bool
isProcessName(const JsonValue &event)
{
    const JsonValue *name = event.find("name");
    return name && name->isString() && name->str == "process_name";
}

double
epochOf(const JsonValue &doc, const char *which)
{
    const JsonValue *epoch = doc.find("epochMicros");
    fatalIf(epoch == nullptr || !epoch->isNumber(),
            strformat("stitch: %s trace lacks the epochMicros "
                      "anchor (re-export it with this build)",
                      which));
    return epoch->number;
}

std::string
processNameMeta(int pid, const std::string &name)
{
    return strformat("  {\"name\": \"process_name\", \"ph\": \"M\", "
                     "\"pid\": %d, \"tid\": 0, \"args\": "
                     "{\"name\": \"%s\"}}",
                     pid, name.c_str());
}

} // namespace

std::string
stitchTraces(const std::string &clientJson,
             const std::string &serverJson)
{
    JsonValue client = parseJson(clientJson);
    JsonValue server = parseJson(serverJson);
    fatalIf(!client.isObject() || !server.isObject(),
            "stitch: trace documents must be JSON objects");
    const double clientEpoch = epochOf(client, "client");
    const double serverEpoch = epochOf(server, "server");
    // Both epochs read the same steady clock (same machine), so this
    // delta maps a server-relative timestamp onto the client's
    // timeline exactly.
    const double delta = serverEpoch - clientEpoch;

    std::string out = "{\n\"displayTimeUnit\": \"ms\",\n";
    out += strformat("\"epochMicros\": %llu,\n",
                     (unsigned long long)clientEpoch);

    // Merge run metadata: client keys verbatim, server keys behind a
    // "serve." prefix so neither side shadows the other.
    out += "\"otherData\": {";
    bool first = true;
    auto emitData = [&](const JsonValue *data,
                        const std::string &prefix) {
        if (data == nullptr || !data->isObject())
            return;
        for (const auto &[k, v] : data->object) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "  \"";
            out += obs::jsonEscape(prefix + k);
            out += "\": ";
            appendJson(out, v);
        }
    };
    emitData(client.find("otherData"), "");
    emitData(server.find("otherData"), "serve.");
    out += first ? "},\n" : "\n},\n";

    out += "\"traceEvents\": [\n";
    out += processNameMeta(1, "mobilebench client") + ",\n";
    out += processNameMeta(2, "mobilebench serve");

    const JsonValue *clientEvents = client.find("traceEvents");
    fatalIf(clientEvents == nullptr || !clientEvents->isArray(),
            "stitch: client trace has no traceEvents array");
    for (const auto &event : clientEvents->array) {
        if (isProcessName(event))
            continue;
        out += ",\n  ";
        appendJson(out, event);
    }

    JsonValue *serverEvents = findMut(server, "traceEvents");
    fatalIf(serverEvents == nullptr || !serverEvents->isArray(),
            "stitch: server trace has no traceEvents array");
    for (auto &event : serverEvents->array) {
        if (!event.isObject() || isProcessName(event))
            continue;
        if (JsonValue *pid = findMut(event, "pid"))
            pid->number = 2.0;
        if (JsonValue *ts = findMut(event, "ts")) {
            ts->number += delta;
            if (ts->number < 0.0)
                ts->number = 0.0;
        }
        out += ",\n  ";
        appendJson(out, event);
    }

    out += "\n]\n}\n";
    return out;
}

} // namespace serve
} // namespace mbs
