#include "serve/server.hh"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/logging.hh"
#include "common/strings.hh"
#include "obs/flightrec.hh"
#include "report/capture.hh"

namespace mbs {
namespace serve {

/**
 * Everything one connection needs to outlive its own thread: queued
 * jobs keep the state (and so the socket) alive through their reply
 * closures after the session thread is gone.
 */
struct Server::SessionState
{
    Socket sock;
    /** Serializes sends: the session thread answers pings while the
     *  dispatcher streams progress for an earlier submit. */
    std::mutex sendMutex;
    /** Cleared on the first failed send; later sends are dropped. */
    bool open = true;
    std::thread thread;
    std::atomic<bool> finished{false};
    std::string tenant = "default";

    bool send(const std::string &frame)
    {
        std::lock_guard<std::mutex> lock(sendMutex);
        if (!open)
            return false;
        if (!sendFrame(sock, frame)) {
            open = false;
            return false;
        }
        return true;
    }
};

Server::Server(const ServerConfig &config)
    : cfg(config), runner(config.runner), queue(config.queueCapacity)
{
}

Server::~Server()
{
    requestStop();
    if (dispatcher.joinable())
        dispatcher.join();
    reapSessions(true);
}

void
Server::start()
{
    startedAt = std::chrono::steady_clock::now();
    // The daemon always flies with the crash recorder armed: a fatal
    // signal or terminate mid-job dumps the last few thousand
    // span/event entries (obs/flightrec.hh).
    obs::FlightRecorder::instance().arm();
    listener = listenOn(cfg.port);
    listenPort = boundPort(listener);
    dispatcher = std::thread([this] { dispatchLoop(); });
}

double
Server::uptimeSeconds() const
{
    if (startedAt == std::chrono::steady_clock::time_point{})
        return 0.0;
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - startedAt)
        .count();
}

void
Server::requestStop()
{
    if (stopping.exchange(true))
        return;
    queue.close();
    // Wake the accept loop. shutdown(2) on a *listening* socket
    // fails with ENOTCONN on Linux and leaves accept() blocked, so
    // the reliable nudge is a throwaway self-connection; the loop
    // re-checks `stopping` on every wakeup. Sessions lose only
    // their read side so result frames for in-flight jobs still go
    // out during the drain.
    if (listener.valid()) {
        try {
            Socket wake = connectTo(listenPort);
        } catch (const std::exception &) {
            // Listener already gone; nothing left to wake.
        }
    }
    std::lock_guard<std::mutex> lock(sessionsMutex);
    for (const auto &state : sessions) {
        if (state->sock.valid())
            ::shutdown(state->sock.fd(), SHUT_RD);
    }
}

void
Server::dispatchLoop()
{
    while (auto job = queue.take()) {
        metrics.setQueueDepth(queue.depth());
        job->queueSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - job->enqueuedAt)
                .count();
        const ResultInfo info = runner.run(*job);
        // A failed job reports no separate execution timing; its
        // whole wall time stands in so the latency histograms still
        // see the job.
        const double execSeconds =
            info.execSeconds > 0.0 ? info.execSeconds
                                   : info.wallSeconds;
        if (info.status == "ok") {
            counters.completed.fetch_add(1);
            metrics.onCompleted(job->tenant, job->queueSeconds,
                                execSeconds);
        } else {
            counters.failed.fetch_add(1);
            metrics.onFailed(job->tenant, job->queueSeconds,
                             execSeconds);
        }
    }
}

PongInfo
Server::makePong()
{
    PongInfo info;
    info.uptimeSeconds = uptimeSeconds();
    info.build = report::buildStamp();
    info.jobsInQueue = queue.depth();
    return info;
}

StatsInfo
Server::makeStats(bool includeVolatile)
{
    StatsInfo info;
    info.uptimeSeconds = uptimeSeconds();
    info.build = report::buildStamp();
    info.jobsInQueue = queue.depth();
    // The depth gauge is refreshed at scrape time: admissions and
    // dispatches both update it, but a scrape between the two should
    // still see the live queue.
    metrics.setQueueDepth(info.jobsInQueue);
    info.prometheus = metrics.render(includeVolatile,
                                     info.uptimeSeconds);
    return info;
}

void
Server::watchLoop(SessionState &st, const WatchRequest &request)
{
    const double interval =
        std::min(std::max(request.intervalSeconds, 0.01), 3600.0);
    for (std::uint64_t sent = 0;
         request.count == 0 || sent < request.count; ++sent) {
        if (stopping.load())
            break;
        StatsInfo info = makeStats(request.includeVolatile);
        info.seq = sent;
        if (!st.send(statsEventFrame(info)))
            break;
        if (request.count != 0 && sent + 1 >= request.count)
            break;
        // Sleep in short slices so a graceful stop is noticed long
        // before a multi-second interval elapses.
        double remaining = interval;
        while (remaining > 0.0 && !stopping.load()) {
            const double slice = std::min(remaining, 0.05);
            std::this_thread::sleep_for(
                std::chrono::duration<double>(slice));
            remaining -= slice;
        }
    }
}

int
Server::run()
{
    fatalIf(!listener.valid(), "serve: run() before start()");
    std::fprintf(stderr,
                 "serve: listening on 127.0.0.1:%u (build %s)\n",
                 unsigned(listenPort),
                 report::buildStamp().c_str());
    for (;;) {
        Socket conn = acceptOn(listener);
        if (stopping.load()) {
            // The wake connection from requestStop(), or a late
            // client that raced the shutdown; refuse and stop.
            if (conn.valid())
                sendFrame(conn, rejectedFrame("server shutting down"));
            break;
        }
        if (!conn.valid())
            break;
        counters.connections.fetch_add(1);
        auto state = std::make_shared<SessionState>();
        state->sock = std::move(conn);
        {
            std::lock_guard<std::mutex> lock(sessionsMutex);
            sessions.push_back(state);
        }
        state->thread =
            std::thread([this, state] { session(state); });
        reapSessions(false);
    }
    listener.close();
    // The queue is closed by now: wait for the dispatcher to drain
    // every accepted job, then for the session threads to go.
    if (dispatcher.joinable())
        dispatcher.join();
    reapSessions(true);
    std::fprintf(stderr,
                 "serve: stopped — %llu connections, %llu accepted, "
                 "%llu rejected, %llu completed, %llu failed\n",
                 (unsigned long long)counters.connections.load(),
                 (unsigned long long)counters.accepted.load(),
                 (unsigned long long)counters.rejected.load(),
                 (unsigned long long)counters.completed.load(),
                 (unsigned long long)counters.failed.load());
    return 0;
}

void
Server::reapSessions(bool all)
{
    std::vector<std::shared_ptr<SessionState>> reap;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex);
        auto it = sessions.begin();
        while (it != sessions.end()) {
            if (all || (*it)->finished.load()) {
                reap.push_back(*it);
                it = sessions.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const auto &state : reap) {
        // A final reap can race requestStop(): when this erase wins,
        // the stop path's SHUT_RD loop sees an empty vector and a
        // session whose client keeps the connection open would block
        // in recv forever — and this join with it. Shut the read
        // side down here before joining.
        if (all && !state->finished.load() && state->sock.valid())
            ::shutdown(state->sock.fd(), SHUT_RD);
        if (state->thread.joinable())
            state->thread.join();
    }
}

void
Server::session(std::shared_ptr<SessionState> state)
{
    SessionState &st = *state;
    try {
        bool greeted = false;
        while (auto payload = recvFrame(st.sock)) {
            const Frame frame = Frame::parse(*payload);
            if (!greeted) {
                fatalIf(frame.type != "hello",
                        strformat("serve: expected hello, got '%s'",
                                  frame.type.c_str()));
                st.tenant = frame.strOr("tenant", "default");
                greeted = true;
                st.send(welcomeFrame("mobilebench-serve",
                                     report::buildStamp()));
                continue;
            }
            if (frame.type == "ping") {
                st.send(pongFrame(makePong()));
            } else if (frame.type == "stats") {
                st.send(statsOkFrame(
                    makeStats(frame.boolOr("volatile", true))));
            } else if (frame.type == "watch") {
                watchLoop(st, watchRequestFrom(frame));
            } else if (frame.type == "submit") {
                Job job;
                job.id = nextJobId.fetch_add(1);
                job.tenant = st.tenant;
                job.options = jobOptionsFrom(frame);
                job.bundle = bundleFilesFrom(frame);
                job.enqueuedAt = std::chrono::steady_clock::now();
                job.reply = [state](const std::string &f) {
                    return state->send(f);
                };
                const std::uint64_t id = job.id;
                switch (queue.offer(std::move(job))) {
                case JobQueue::Offer::Accepted:
                    counters.accepted.fetch_add(1);
                    metrics.onAccepted(st.tenant);
                    metrics.setQueueDepth(queue.depth());
                    st.send(acceptedFrame(id, queue.depth()));
                    break;
                case JobQueue::Offer::Full:
                    counters.rejected.fetch_add(1);
                    metrics.onRejected(st.tenant);
                    st.send(rejectedFrame("queue full"));
                    break;
                case JobQueue::Offer::Closed:
                    counters.rejected.fetch_add(1);
                    metrics.onRejected(st.tenant);
                    st.send(rejectedFrame("server shutting down"));
                    break;
                }
            } else if (frame.type == "shutdown") {
                st.send(shutdownOkFrame());
                requestStop();
                // shutdown_ok is the last frame of a session that
                // asked the daemon to stop; leave instead of racing
                // the stop path for another recv.
                break;
            } else {
                fatal(strformat("serve: unexpected frame type '%s'",
                                frame.type.c_str()));
            }
        }
    } catch (const std::exception &e) {
        // Protocol violations poison only this connection; tell the
        // peer why and hang up. The daemon lives on.
        st.send(errorFrame(e.what()));
        std::lock_guard<std::mutex> lock(st.sendMutex);
        st.open = false;
        if (st.sock.valid())
            ::shutdown(st.sock.fd(), SHUT_RDWR);
    }
    // A clean EOF leaves `open` set: a client may legitimately stop
    // reading its socket only after the final result frame, and the
    // reply closures keep the state alive until the runner sent it.
    // A client that truly vanished turns the next send into EPIPE,
    // which clears `open` then.
    st.finished.store(true);
}

} // namespace serve
} // namespace mbs
