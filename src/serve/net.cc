#include "serve/net.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "common/logging.hh"
#include "common/strings.hh"
#include "serve/protocol.hh"

namespace mbs {
namespace serve {

Socket &
Socket::operator=(Socket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int
Socket::release()
{
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

namespace {

sockaddr_in
loopbackAddress(std::uint16_t port)
{
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return addr;
}

/**
 * Write all of @p data; EPIPE and ECONNRESET report a hung-up peer
 * as false instead of killing the process (SIGPIPE is suppressed per
 * send with MSG_NOSIGNAL).
 */
bool
writeAll(int fd, const char *data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n =
            ::send(fd, data + done, size - done, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EPIPE || errno == ECONNRESET)
                return false;
            fatal(strformat("serve: send failed: %s",
                            std::strerror(errno)));
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Read exactly @p size bytes. @return bytes read: size on success, 0
 * on EOF before the first byte, anything in between on a mid-message
 * hangup (the caller decides whether that is fatal).
 */
std::size_t
readAll(int fd, char *data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::recv(fd, data + done, size - done, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == ECONNRESET)
                return done;
            fatal(strformat("serve: recv failed: %s",
                            std::strerror(errno)));
        }
        if (n == 0)
            return done;
        done += static_cast<std::size_t>(n);
    }
    return done;
}

} // namespace

Socket
listenOn(std::uint16_t port)
{
    Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
    fatalIf(!socket.valid(), strformat("serve: socket() failed: %s",
                                       std::strerror(errno)));
    const int one = 1;
    ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = loopbackAddress(port);
    if (::bind(socket.fd(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        fatal(strformat("serve: cannot bind 127.0.0.1:%u: %s",
                        unsigned(port), std::strerror(errno)));
    }
    if (::listen(socket.fd(), 64) != 0)
        fatal(strformat("serve: listen failed: %s", std::strerror(errno)));
    return socket;
}

std::uint16_t
boundPort(const Socket &socket)
{
    sockaddr_in addr;
    socklen_t len = sizeof(addr);
    fatalIf(::getsockname(socket.fd(),
                          reinterpret_cast<sockaddr *>(&addr), &len) != 0,
            strformat("serve: getsockname failed: %s",
                      std::strerror(errno)));
    return ntohs(addr.sin_port);
}

Socket
acceptOn(const Socket &listener)
{
    for (;;) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0)
            return Socket(fd);
        if (errno == EINTR)
            continue;
        // EBADF/EINVAL: the stop path closed or shut down the
        // listener under us; ECONNABORTED: the peer gave up first.
        if (errno == ECONNABORTED)
            continue;
        return Socket();
    }
}

Socket
connectTo(std::uint16_t port)
{
    Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
    fatalIf(!socket.valid(), strformat("serve: socket() failed: %s",
                                       std::strerror(errno)));
    const int one = 1;
    ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr = loopbackAddress(port);
    for (;;) {
        if (::connect(socket.fd(), reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            return socket;
        }
        if (errno == EINTR)
            continue;
        fatal(strformat("serve: cannot connect to 127.0.0.1:%u: %s",
                        unsigned(port), std::strerror(errno)));
    }
}

bool
sendFrame(const Socket &socket, const std::string &payloadJson)
{
    const std::string wire = encodeFrame(payloadJson);
    return writeAll(socket.fd(), wire.data(), wire.size());
}

std::optional<std::string>
recvFrame(const Socket &socket)
{
    unsigned char header[4];
    const std::size_t got =
        readAll(socket.fd(), reinterpret_cast<char *>(header), 4);
    if (got == 0)
        return std::nullopt;
    fatalIf(got < 4, "serve: connection closed mid frame header");
    const std::uint32_t size = decodeFrameLength(header, kMaxFrameBytes);
    std::string payload(size, '\0');
    if (size > 0) {
        const std::size_t body = readAll(socket.fd(), payload.data(), size);
        fatalIf(body < size, "serve: connection closed mid frame payload");
    }
    return payload;
}

} // namespace serve
} // namespace mbs
