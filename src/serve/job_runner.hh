/**
 * @file
 * Per-job execution for the serve daemon: the code that makes a job
 * submitted over the socket behave — byte for byte — like the same
 * run through the one-shot CLI.
 *
 * The headline guarantee is ledger-record identity: the *stable
 * block* of the record a serve job appends (command, run id,
 * SoC/suite digests, seed/runs/tick, logical ticks, the full
 * Stable-class metrics snapshot) must serialize identically to a
 * fresh `mobilebench pipeline` process. The snapshot covers every
 * *registered* instrument, so zeroing values between jobs is not
 * enough — a fault.* counter registered by an earlier faulted job
 * would surface (at zero) in the next clean job's record, which a
 * fresh process never shows. Each job therefore runs against fully
 * reset process-wide observability state:
 *
 *   1. stop the wall sampler, reset + re-enable the logical clock
 *   2. clear the event log and the tracer (both stay enabled)
 *   3. MetricsRegistry::reset() — drop every instrument
 *   4. route Progress to the client as protocol frames
 *   5. configure the telemetry sink at the job's artifact directory
 *   6. arm the job's fault plan (if any)
 *
 * and tears all of it down on every exit path. Jobs execute one at a
 * time (the dispatcher is a single thread) precisely because this
 * state is process-wide; pipeline-internal parallelism still fans
 * out through the shared executor.
 */

#ifndef MBS_SERVE_JOB_RUNNER_HH
#define MBS_SERVE_JOB_RUNNER_HH

#include <filesystem>
#include <string>

#include "exec/executor.hh"
#include "report/capture.hh"
#include "serve/job_queue.hh"
#include "serve/protocol.hh"

namespace mbs {
namespace serve {

/** Daemon-level execution settings shared by every job. */
struct RunnerConfig
{
    /** Root under which per-job artifact directories are created. */
    std::filesystem::path workDir = ".mobilebench/serve";
    /** Ledger directory jobs append to; empty disables the ledger. */
    std::filesystem::path ledgerDir;
    /** Profile-store directory; empty disables caching. */
    std::string cacheDir;
    /** Worker threads of the shared executor. */
    int jobs = 1;
};

class JobRunner
{
  public:
    explicit JobRunner(const RunnerConfig &config);

    /**
     * Execute @p job start to finish: reset the observability
     * singletons, run the work, capture + append the ledger record,
     * flush the job's telemetry bundle, and stream progress/result
     * frames through job.reply. Never throws — a failing job turns
     * into a "failed" result frame and the daemon lives on.
     *
     * @return the result that was (best-effort) sent to the client.
     */
    ResultInfo run(const Job &job);

    Executor &executor() { return exec; }

    /** The artifact directory of job @p id (also created by run()). */
    std::filesystem::path jobDir(std::uint64_t id) const;

  private:
    ResultInfo execute(const Job &job);
    std::string runPipeline(const Job &job,
                            report::CaptureContext &context);
    std::string runSpec(const Job &job,
                        report::CaptureContext &context);
    std::string runIngest(const Job &job,
                          report::CaptureContext &context);

    RunnerConfig cfg;
    Executor exec;
};

} // namespace serve
} // namespace mbs

#endif // MBS_SERVE_JOB_RUNNER_HH
