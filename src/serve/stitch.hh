/**
 * @file
 * Cross-process trace stitching for the serve protocol.
 *
 * A `mobilebench submit` that carries a trace id produces *two*
 * Chrome trace documents: the client's (its submit span plus a flow
 * 's'/'f' pair) and the daemon's per-job trace.json (the job's span
 * tree rooted at serve.job, with the matching flow anchors). Both
 * record timestamps relative to their own tracer epoch, but each
 * export carries that epoch as a top-level `epochMicros` key read
 * from the shared steady clock — so on one machine (the loopback
 * serve case) the two timelines can be aligned exactly.
 *
 * stitchTraces() merges them into one document:
 *   - client events keep pid 1, server events move to pid 2,
 *   - server timestamps are shifted by (serverEpoch - clientEpoch),
 *   - process_name metadata labels the two lanes,
 *   - the flow arrows (ids derived from the trace id, see
 *     serve::traceFlowId) connect submit -> job -> result across the
 *     process boundary.
 *
 * The result loads in Perfetto / chrome://tracing as a single
 * timeline with arrows across the two process tracks.
 */

#ifndef MBS_SERVE_STITCH_HH
#define MBS_SERVE_STITCH_HH

#include <string>

namespace mbs {
namespace serve {

/**
 * Merge @p clientJson and @p serverJson (two Chrome trace documents
 * exported by obs::Tracer) into one stitched document.
 *
 * @throws FatalError when either document is malformed or lacks the
 *         epochMicros anchor this build's tracer exports.
 */
std::string stitchTraces(const std::string &clientJson,
                         const std::string &serverJson);

} // namespace serve
} // namespace mbs

#endif // MBS_SERVE_STITCH_HH
