/**
 * @file
 * The daemon-scoped metric domain behind the stats/watch frames.
 *
 * The process-wide obs::MetricsRegistry::instance() is reset by the
 * JobRunner before every job so per-job exports stay byte-identical
 * to one-shot runs — which is exactly why daemon-lifetime counters
 * cannot live there. DaemonMetrics owns its *own* MetricsRegistry:
 * admission counters, queue depth, per-tenant labeled counters and
 * latency histograms accumulate across jobs and survive every
 * per-job reset, scrape-able mid-job over the wire.
 *
 * Volatility split (what the idle byte-compare may see):
 *  - Stable: serve.jobs_{accepted,rejected,completed,failed} and
 *    their per-tenant variants, serve.queue_depth, serve.build_info.
 *    Deterministic for a fixed submission sequence, so two idle
 *    stable-only scrapes byte-compare equal.
 *  - Volatile: serve.uptime_seconds, the queue-wait / execution-time
 *    histograms and their derived p50/p95/p99 gauges — wall clock by
 *    nature, included only when the scrape asks for volatile.
 */

#ifndef MBS_SERVE_DAEMON_METRICS_HH
#define MBS_SERVE_DAEMON_METRICS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.hh"

namespace mbs {
namespace serve {

class DaemonMetrics
{
  public:
    DaemonMetrics();

    /** Admission outcomes; @p tenant updates the labeled variant. */
    void onAccepted(const std::string &tenant);
    void onRejected(const std::string &tenant);
    /** Completion outcomes with the job's latency split. */
    void onCompleted(const std::string &tenant, double queueSeconds,
                     double execSeconds);
    void onFailed(const std::string &tenant, double queueSeconds,
                  double execSeconds);

    /** Track the bounded queue's current depth. */
    void setQueueDepth(std::size_t depth);

    /**
     * Render the domain as Prometheus text. Refreshes the derived
     * gauges (uptime from @p uptimeSeconds, per-tenant latency
     * percentiles from the histograms) first. @p includeVolatile
     * false yields the deterministic stable-only view the CI idle
     * byte-compare uses.
     */
    std::string render(bool includeVolatile, double uptimeSeconds);

    /** The underlying registry (exposition tests). */
    obs::MetricsRegistry &registry() { return domain; }

  private:
    struct TenantInstruments
    {
        obs::Histogram *queueWait = nullptr;
        obs::Histogram *exec = nullptr;
    };

    TenantInstruments &tenantInstruments(const std::string &tenant);
    void refreshPercentiles();

    obs::MetricsRegistry domain;
    obs::Counter &accepted;
    obs::Counter &rejected;
    obs::Counter &completed;
    obs::Counter &failed;
    obs::Gauge &queueDepth;
    obs::Gauge &uptime;
    obs::Histogram &queueWaitAll;
    obs::Histogram &execAll;

    std::mutex mtx;
    std::map<std::string, TenantInstruments> tenants;
};

} // namespace serve
} // namespace mbs

#endif // MBS_SERVE_DAEMON_METRICS_HH
