/**
 * @file
 * Thin POSIX socket helpers for the serve daemon and its clients.
 *
 * Loopback AF_INET only: the daemon is an on-host characterization
 * service, not an internet-facing endpoint, so it binds 127.0.0.1
 * and clients connect there. All reads and writes retry on EINTR and
 * loop until the requested byte count moved (TCP gives no message
 * boundaries; the framing in protocol.hh supplies them).
 */

#ifndef MBS_SERVE_NET_HH
#define MBS_SERVE_NET_HH

#include <cstdint>
#include <optional>
#include <string>

namespace mbs {
namespace serve {

/** RAII owner of one socket file descriptor. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket &operator=(Socket &&other) noexcept;
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    /** Close the descriptor now (idempotent). */
    void close();
    /** Release ownership without closing. */
    int release();

  private:
    int fd_ = -1;
};

/**
 * Bind and listen on 127.0.0.1:@p port. Port 0 asks the kernel for an
 * ephemeral port; read the actual one back with boundPort().
 * @throws FatalError when the address is unavailable.
 */
Socket listenOn(std::uint16_t port);

/** @return the local port a bound socket ended up on. */
std::uint16_t boundPort(const Socket &socket);

/**
 * Accept one connection. Returns an invalid Socket when the listener
 * was closed or shut down (the server's stop path) instead of
 * throwing.
 */
Socket acceptOn(const Socket &listener);

/**
 * Connect to 127.0.0.1:@p port.
 * @throws FatalError when the connection is refused.
 */
Socket connectTo(std::uint16_t port);

/**
 * Send one framed payload (length prefix + JSON bytes).
 * @return false when the peer hung up (EPIPE/ECONNRESET).
 */
bool sendFrame(const Socket &socket, const std::string &payloadJson);

/**
 * Receive one framed payload.
 * @return the JSON payload, or nullopt on clean EOF before a header.
 * @throws FatalError on a truncated frame or an oversized length
 *         prefix (both mean the stream is unrecoverable).
 */
std::optional<std::string> recvFrame(const Socket &socket);

} // namespace serve
} // namespace mbs

#endif // MBS_SERVE_NET_HH
