#include "serve/protocol.hh"

#include <sstream>

#include "common/digest.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "obs/json.hh"

namespace mbs {
namespace serve {

std::string
encodeFrame(const std::string &payloadJson)
{
    fatalIf(payloadJson.size() > kMaxFrameBytes,
            strformat("serve: frame payload of %zu bytes exceeds the "
                      "%u-byte cap", payloadJson.size(), kMaxFrameBytes));
    const std::uint32_t n = static_cast<std::uint32_t>(payloadJson.size());
    std::string wire;
    wire.reserve(4 + payloadJson.size());
    wire.push_back(static_cast<char>((n >> 24) & 0xff));
    wire.push_back(static_cast<char>((n >> 16) & 0xff));
    wire.push_back(static_cast<char>((n >> 8) & 0xff));
    wire.push_back(static_cast<char>(n & 0xff));
    wire += payloadJson;
    return wire;
}

std::uint32_t
decodeFrameLength(const unsigned char header[4], std::uint32_t maxBytes)
{
    const std::uint32_t n = (std::uint32_t(header[0]) << 24) |
                            (std::uint32_t(header[1]) << 16) |
                            (std::uint32_t(header[2]) << 8) |
                            std::uint32_t(header[3]);
    fatalIf(n > maxBytes,
            strformat("serve: peer announced a %u-byte frame (cap %u); "
                      "closing", n, maxBytes));
    return n;
}

Frame
Frame::parse(const std::string &payload)
{
    Frame frame;
    frame.doc = parseJson(payload);
    fatalIf(!frame.doc.isObject(), "serve: frame is not a JSON object");
    const JsonValue &v = frame.doc.at("v");
    fatalIf(!v.isNumber() || v.number != kProtocolVersion,
            strformat("serve: unsupported protocol version (want %d)",
                      kProtocolVersion));
    const JsonValue &type = frame.doc.at("type");
    fatalIf(!type.isString() || type.str.empty(),
            "serve: frame has no string \"type\"");
    frame.type = type.str;
    return frame;
}

std::string
Frame::str(const std::string &key) const
{
    const JsonValue &value = doc.at(key);
    fatalIf(!value.isString(),
            strformat("serve: frame member \"%s\" is not a string",
                      key.c_str()));
    return value.str;
}

std::string
Frame::strOr(const std::string &key, const std::string &fallback) const
{
    const JsonValue *value = doc.find(key);
    if (!value)
        return fallback;
    fatalIf(!value->isString(),
            strformat("serve: frame member \"%s\" is not a string",
                      key.c_str()));
    return value->str;
}

double
Frame::num(const std::string &key) const
{
    const JsonValue &value = doc.at(key);
    fatalIf(!value.isNumber(),
            strformat("serve: frame member \"%s\" is not a number",
                      key.c_str()));
    return value.number;
}

double
Frame::numOr(const std::string &key, double fallback) const
{
    const JsonValue *value = doc.find(key);
    if (!value)
        return fallback;
    fatalIf(!value->isNumber(),
            strformat("serve: frame member \"%s\" is not a number",
                      key.c_str()));
    return value->number;
}

bool
Frame::boolOr(const std::string &key, bool fallback) const
{
    const JsonValue *value = doc.find(key);
    if (!value)
        return fallback;
    fatalIf(!value->isBool(),
            strformat("serve: frame member \"%s\" is not a bool",
                      key.c_str()));
    return value->boolean;
}

bool
safeBundlePath(const std::string &path)
{
    if (path.empty() || path.size() > 4096)
        return false;
    if (path.front() == '/')
        return false;
    std::string segment;
    // Reject "." / ".." segments, empty segments ("a//b"), and bytes
    // that only ever appear in hostile paths.
    for (std::size_t i = 0; i <= path.size(); ++i) {
        const char c = i < path.size() ? path[i] : '/';
        if (c == '\0' || c == '\\')
            return false;
        if (c != '/') {
            segment.push_back(c);
            continue;
        }
        if (segment.empty() || segment == "." || segment == "..")
            return false;
        segment.clear();
    }
    return true;
}

namespace {

/** Open a frame object: {"v":1,"type":"<type>" */
std::string
head(const char *type)
{
    std::ostringstream out;
    out << "{\"v\":" << kProtocolVersion << ",\"type\":\"" << type << "\"";
    return out.str();
}

std::string
quoted(const std::string &text)
{
    return "\"" + obs::jsonEscape(text) + "\"";
}

} // namespace

std::string
helloFrame(const std::string &tenant)
{
    return head("hello") + ",\"tenant\":" + quoted(tenant) + "}";
}

std::string
pingFrame()
{
    return head("ping") + "}";
}

std::string
shutdownFrame()
{
    return head("shutdown") + "}";
}

std::string
statsFrame(bool includeVolatile)
{
    return head("stats") + ",\"volatile\":" +
        (includeVolatile ? "true" : "false") + "}";
}

std::string
watchFrame(const WatchRequest &request)
{
    std::ostringstream out;
    out << head("watch") << ",\"interval_seconds\":"
        << obs::jsonNumber(request.intervalSeconds)
        << ",\"count\":" << request.count
        << ",\"volatile\":" << (request.includeVolatile ? "true" : "false")
        << "}";
    return out.str();
}

WatchRequest
watchRequestFrom(const Frame &frame)
{
    WatchRequest request;
    request.intervalSeconds =
        frame.numOr("interval_seconds", request.intervalSeconds);
    fatalIf(!(request.intervalSeconds > 0.0),
            "serve: watch interval must be positive");
    request.count =
        static_cast<std::uint64_t>(frame.numOr("count", 0.0));
    request.includeVolatile = frame.boolOr("volatile", true);
    return request;
}

std::string
submitFrame(const JobOptions &options, const std::vector<BundleFile> &bundle)
{
    std::ostringstream out;
    out << head("submit") << ",\"job\":" << quoted(options.job)
        << ",\"options\":{"
        << "\"spec\":" << quoted(options.spec)
        << ",\"fault_spec\":" << quoted(options.faultSpec)
        << ",\"fault_rate\":" << obs::jsonNumber(options.faultRate)
        << ",\"fault_seed\":" << options.faultSeed
        << ",\"pipeline\":" << (options.ingestPipeline ? "true" : "false")
        << ",\"lax\":" << (options.lax ? "true" : "false")
        << ",\"tick\":" << obs::jsonNumber(options.tick)
        << ",\"payload\":" << quoted(options.payload)
        << ",\"trace_id\":" << quoted(options.traceId)
        << ",\"parent_span\":" << quoted(options.parentSpan) << "}";
    if (!bundle.empty()) {
        out << ",\"bundle\":{\"files\":[";
        for (std::size_t i = 0; i < bundle.size(); ++i) {
            if (i)
                out << ",";
            out << "{\"path\":" << quoted(bundle[i].path)
                << ",\"content\":" << quoted(bundle[i].content) << "}";
        }
        out << "]}";
    }
    out << "}";
    return out.str();
}

JobOptions
jobOptionsFrom(const Frame &frame)
{
    JobOptions options;
    options.job = frame.str("job");
    fatalIf(options.job != "pipeline" && options.job != "spec" &&
                options.job != "ingest" && options.job != "noop",
            strformat("serve: unknown job kind \"%s\"",
                      options.job.c_str()));
    const JsonValue *opts = frame.doc.find("options");
    if (!opts)
        return options;
    fatalIf(!opts->isObject(), "serve: \"options\" is not an object");
    Frame wrapper;
    wrapper.doc = *opts;
    // The wrapper Frame reuses the typed accessors; "v"/"type" are not
    // required on nested objects so only the *Or forms are safe here.
    options.spec = wrapper.strOr("spec", "");
    fatalIf(options.job == "spec" && options.spec.empty(),
            "serve: spec job without a spec body");
    options.faultSpec = wrapper.strOr("fault_spec", "");
    options.faultRate = wrapper.numOr("fault_rate", 0.0);
    options.faultSeed =
        static_cast<std::uint64_t>(wrapper.numOr("fault_seed", 1.0));
    options.ingestPipeline = wrapper.boolOr("pipeline", false);
    options.lax = wrapper.boolOr("lax", false);
    options.tick = wrapper.numOr("tick", 0.0);
    options.payload = wrapper.strOr("payload", "");
    options.traceId = wrapper.strOr("trace_id", "");
    options.parentSpan = wrapper.strOr("parent_span", "");
    return options;
}

std::uint64_t
traceFlowId(const std::string &traceId)
{
    Fnv1a h;
    h.mix(traceId);
    const std::uint64_t id = h.value();
    return id == 0 ? 1 : id;
}

std::vector<BundleFile>
bundleFilesFrom(const Frame &frame)
{
    std::vector<BundleFile> files;
    const JsonValue *bundle = frame.doc.find("bundle");
    if (!bundle)
        return files;
    fatalIf(!bundle->isObject(), "serve: \"bundle\" is not an object");
    const JsonValue &list = bundle->at("files");
    fatalIf(!list.isArray(), "serve: \"bundle.files\" is not an array");
    for (const JsonValue &entry : list.array) {
        fatalIf(!entry.isObject(), "serve: bundle file entry is not an object");
        const JsonValue &path = entry.at("path");
        const JsonValue &content = entry.at("content");
        fatalIf(!path.isString() || !content.isString(),
                "serve: bundle file entry needs string path and content");
        fatalIf(!safeBundlePath(path.str),
                strformat("serve: unsafe bundle path \"%s\"",
                          path.str.c_str()));
        files.push_back(BundleFile{path.str, content.str});
    }
    return files;
}

std::string
welcomeFrame(const std::string &server, const std::string &build)
{
    std::ostringstream out;
    out << head("welcome") << ",\"server\":" << quoted(server)
        << ",\"build\":" << quoted(build)
        << ",\"max_frame_bytes\":" << kMaxFrameBytes << "}";
    return out.str();
}

std::string
pongFrame(const PongInfo &info)
{
    std::ostringstream out;
    out << head("pong") << ",\"uptime_seconds\":"
        << obs::jsonNumber(info.uptimeSeconds)
        << ",\"build\":" << quoted(info.build)
        << ",\"jobs_in_queue\":" << info.jobsInQueue << "}";
    return out.str();
}

PongInfo
pongInfoFrom(const Frame &frame)
{
    fatalIf(frame.type != "pong",
            strformat("serve: expected a pong frame, got %s",
                      frame.type.c_str()));
    PongInfo info;
    info.uptimeSeconds = frame.numOr("uptime_seconds", 0.0);
    info.build = frame.strOr("build", "");
    info.jobsInQueue =
        static_cast<std::uint64_t>(frame.numOr("jobs_in_queue", 0.0));
    return info;
}

namespace {

std::string
statsBody(const char *type, const StatsInfo &info, bool withSeq)
{
    std::ostringstream out;
    out << head(type);
    if (withSeq)
        out << ",\"seq\":" << info.seq;
    out << ",\"prometheus\":" << quoted(info.prometheus)
        << ",\"uptime_seconds\":" << obs::jsonNumber(info.uptimeSeconds)
        << ",\"build\":" << quoted(info.build)
        << ",\"jobs_in_queue\":" << info.jobsInQueue << "}";
    return out.str();
}

} // namespace

std::string
statsOkFrame(const StatsInfo &info)
{
    return statsBody("stats_ok", info, false);
}

std::string
statsEventFrame(const StatsInfo &info)
{
    return statsBody("stats_event", info, true);
}

StatsInfo
statsInfoFrom(const Frame &frame)
{
    fatalIf(frame.type != "stats_ok" && frame.type != "stats_event",
            strformat("serve: expected a stats frame, got %s",
                      frame.type.c_str()));
    StatsInfo info;
    info.prometheus = frame.str("prometheus");
    info.uptimeSeconds = frame.num("uptime_seconds");
    info.build = frame.str("build");
    info.jobsInQueue =
        static_cast<std::uint64_t>(frame.num("jobs_in_queue"));
    info.seq = static_cast<std::uint64_t>(frame.numOr("seq", 0.0));
    return info;
}

std::string
acceptedFrame(std::uint64_t jobId, std::size_t queueDepth)
{
    std::ostringstream out;
    out << head("accepted") << ",\"job_id\":" << jobId
        << ",\"queue_depth\":" << queueDepth << "}";
    return out.str();
}

std::string
rejectedFrame(const std::string &reason)
{
    return head("rejected") + ",\"reason\":" + quoted(reason) + "}";
}

std::string
progressFrame(std::uint64_t jobId, std::size_t done, std::size_t total,
              const std::string &label)
{
    std::ostringstream out;
    out << head("progress") << ",\"job_id\":" << jobId << ",\"done\":" << done
        << ",\"total\":" << total << ",\"label\":" << quoted(label) << "}";
    return out.str();
}

std::string
resultFrame(const ResultInfo &info)
{
    std::ostringstream out;
    out << head("result") << ",\"job_id\":" << info.jobId
        << ",\"status\":" << quoted(info.status)
        << ",\"report\":" << quoted(info.report)
        << ",\"run_id\":" << quoted(info.runId)
        << ",\"ledger_seq\":" << info.ledgerSeq
        << ",\"ledger_stable\":" << quoted(info.ledgerStable)
        << ",\"wall_seconds\":" << obs::jsonNumber(info.wallSeconds)
        << ",\"queue_seconds\":" << obs::jsonNumber(info.queueSeconds)
        << ",\"exec_seconds\":" << obs::jsonNumber(info.execSeconds)
        << ",\"job_dir\":" << quoted(info.jobDir)
        << ",\"error\":" << quoted(info.error) << "}";
    return out.str();
}

ResultInfo
resultInfoFrom(const Frame &frame)
{
    fatalIf(frame.type != "result",
            strformat("serve: expected a result frame, got %s",
                      frame.type.c_str()));
    ResultInfo info;
    info.jobId = static_cast<std::uint64_t>(frame.num("job_id"));
    info.status = frame.str("status");
    info.report = frame.str("report");
    info.runId = frame.str("run_id");
    info.ledgerSeq = static_cast<std::uint64_t>(frame.num("ledger_seq"));
    info.ledgerStable = frame.str("ledger_stable");
    info.wallSeconds = frame.num("wall_seconds");
    // The timing split and artifact path arrived with the
    // introspection plane; tolerate result frames from daemons that
    // predate them.
    info.queueSeconds = frame.numOr("queue_seconds", 0.0);
    info.execSeconds = frame.numOr("exec_seconds", 0.0);
    info.jobDir = frame.strOr("job_dir", "");
    info.error = frame.str("error");
    return info;
}

std::string
errorFrame(const std::string &message)
{
    return head("error") + ",\"message\":" + quoted(message) + "}";
}

std::string
shutdownOkFrame()
{
    return head("shutdown_ok") + "}";
}

} // namespace serve
} // namespace mbs
