#include "job_runner.hh"

#include <chrono>
#include <exception>
#include <fstream>
#include <memory>

#include "common/digest.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "core/pipeline.hh"
#include "core/report.hh"
#include "fault/fault.hh"
#include "ingest/bundle_reader.hh"
#include "ingest/bundle_writer.hh"
#include "obs/events.hh"
#include "obs/flightrec.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/telemetry.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "report/capture.hh"
#include "report/ledger.hh"
#include "spec/spec.hh"
#include "store/profile_store.hh"

namespace mbs {
namespace serve {

namespace {

namespace fs = std::filesystem;

/**
 * The daemon's registry: built once, shared by every pipeline job.
 * Construction is deterministic, so its suite digest matches the
 * one-shot CLI's — a requirement of the ledger byte-identity golden.
 */
const WorkloadRegistry &
registry()
{
    static const WorkloadRegistry reg;
    return reg;
}

std::uint64_t
registrySuiteDigest()
{
    Fnv1a h;
    for (const auto &suite : registry().suites())
        h.mix(suite.digest());
    return h.value();
}

/**
 * Mirror of the CLI's recordRunMetadata: identical tracer metadata
 * and event-log common fields, so a serve job's telemetry bundle
 * carries the same identity a one-shot run would.
 */
void
attachRunMetadata(const SocConfig &config, const ProfileOptions &opts,
                  const std::string &runId)
{
    const std::string seed =
        strformat("%llu", (unsigned long long)opts.seed);
    const std::string tick = strformat("%g", opts.tickSeconds);
    const std::string runs = strformat("%d", opts.runs);
    const std::string digest =
        strformat("%016llx", (unsigned long long)config.digest());

    auto &tracer = obs::Tracer::instance();
    tracer.metadata("seed", seed);
    tracer.metadata("tick_seconds", tick);
    tracer.metadata("runs_per_benchmark", runs);
    tracer.metadata("soc", config.name);
    tracer.metadata("soc_config_digest", digest);
    tracer.metadata("run_id", runId);

    auto &log = obs::EventLog::instance();
    log.setCommonField("run_id", runId);
    log.setCommonField("seed", seed);
    log.setCommonField("soc", config.name);
    log.setCommonField("soc_config_digest", digest);
}

/** Spool the uploaded bundle files under @p root (paths pre-vetted). */
fs::path
spoolBundle(const fs::path &root, const std::vector<BundleFile> &files)
{
    const fs::path bundleDir = root / "upload";
    for (const auto &file : files) {
        fatalIf(!safeBundlePath(file.path),
                strformat("serve: unsafe bundle path '%s'",
                          file.path.c_str()));
        const fs::path target = bundleDir / file.path;
        std::error_code ec;
        fs::create_directories(target.parent_path(), ec);
        fatalIf(bool(ec),
                strformat("serve: cannot create %s: %s",
                          target.parent_path().string().c_str(),
                          ec.message().c_str()));
        std::ofstream out(target, std::ios::binary | std::ios::trunc);
        out.write(file.content.data(),
                  std::streamsize(file.content.size()));
        out.flush();
        fatalIf(!out.good(),
                strformat("serve: short write spooling %s",
                          target.string().c_str()));
    }
    return bundleDir;
}

} // namespace

JobRunner::JobRunner(const RunnerConfig &config)
    : cfg(config), exec(config.jobs)
{
    std::error_code ec;
    // Result frames hand job_dir to clients that may run in a
    // different working directory (submit --stitch-trace), so a
    // relative --serve-dir must not leak into the wire.
    const fs::path abs = fs::absolute(cfg.workDir, ec);
    if (!ec)
        cfg.workDir = abs.lexically_normal();
    fs::create_directories(cfg.workDir, ec);
    fatalIf(bool(ec), strformat("serve: cannot create work dir %s: %s",
                                cfg.workDir.string().c_str(),
                                ec.message().c_str()));
}

fs::path
JobRunner::jobDir(std::uint64_t id) const
{
    return cfg.workDir / strformat("job-%06llu",
                                   (unsigned long long)id);
}

ResultInfo
JobRunner::run(const Job &job)
{
    const auto wallStart = std::chrono::steady_clock::now();
    ResultInfo info;
    try {
        info = execute(job);
    } catch (const std::exception &e) {
        info = ResultInfo{};
        info.jobId = job.id;
        info.status = "failed";
        info.error = e.what();
        try {
            obs::TelemetrySink::instance().flush(
                std::string("serve job failed: ") + e.what());
        } catch (...) {
            // Artifact flush is best effort on the failure path.
        }
        // Every failed job leaves a crash-ring dump next to its
        // artifacts: the last few thousand span/event entries that
        // led up to the failure, capturable even when the telemetry
        // sink itself is what threw.
        auto &recorder = obs::FlightRecorder::instance();
        if (recorder.armed())
            recorder.dumpToFile(
                (jobDir(job.id) / "flightrec.jsonl").string());
    }
    // Teardown runs on every exit path so a failed job can never
    // leak an armed fault plan or a progress listener into the next.
    auto &injector = fault::Injector::instance();
    if (injector.active())
        injector.disarm();
    obs::Progress::instance().setListener(nullptr);
    info.jobId = job.id;
    info.wallSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wallStart)
                           .count();
    info.queueSeconds = job.queueSeconds;
    if (job.reply)
        job.reply(resultFrame(info));
    return info;
}

ResultInfo
JobRunner::execute(const Job &job)
{
    ResultInfo info;
    info.jobId = job.id;

    if (job.options.job == "noop") {
        // Measurement jobs for the load driver: no observability
        // reset, no artifacts, no ledger — just protocol latency.
        info.report = "noop: " + job.options.payload;
        return info;
    }

    const fs::path dir = jobDir(job.id);
    std::error_code ec;
    fs::create_directories(dir, ec);
    fatalIf(bool(ec), strformat("serve: cannot create job dir %s: %s",
                                dir.string().c_str(),
                                ec.message().c_str()));

    // --- Reset the process-wide observability state (steps 1-3 of
    // the sequence documented in job_runner.hh). The registry reset
    // is what makes the Stable-metrics snapshot of this job identical
    // to a fresh one-shot process: stale instruments from previous
    // jobs (fault.*, store.*) must disappear, not read zero.
    auto &sampler = obs::TimeSeriesSampler::instance();
    sampler.stopWallSampler();
    sampler.reset();
    sampler.setEnabled(true);
    obs::EventLog::instance().clear();
    obs::Tracer::instance().clear();
    obs::MetricsRegistry::instance().reset();

    // Step 4: progress goes to the client as frames, never to the
    // daemon's stderr.
    if (job.reply) {
        auto reply = job.reply;
        const std::uint64_t id = job.id;
        obs::Progress::instance().setListener(
            [reply, id](std::size_t done, std::size_t total,
                        const std::string &label) {
                reply(progressFrame(id, done, total, label));
            });
    }

    // Step 5: per-job artifact bundle.
    obs::TelemetryConfig telemetry;
    telemetry.telemetryDir = dir.string();
    auto &sink = obs::TelemetrySink::instance();
    sink.configure(telemetry);

    // Step 6: this job's fault plan (if any).
    if (!job.options.faultSpec.empty() || job.options.faultRate > 0.0) {
        fault::Injector::instance().arm(
            !job.options.faultSpec.empty()
                ? fault::FaultPlan::parse(job.options.faultSpec,
                                          job.options.faultSeed)
                : fault::FaultPlan::uniform(job.options.faultRate,
                                            job.options.faultSeed));
    }

    report::CaptureContext context;
    const auto wallStart = std::chrono::steady_clock::now();
    {
        // Root the job's span tree under the client's trace id (when
        // the submit carried one) and pin both ends of the stitch:
        // the 'f' flow closes the client's submit arrow, the 's'
        // flow opens the arrow its result receipt will close.
        obs::TraceArgs rootArgs = {
            {"job_id",
             strformat("%llu", (unsigned long long)job.id)},
            {"tenant", job.tenant}};
        const std::string &traceId = job.options.traceId;
        if (!traceId.empty()) {
            rootArgs.emplace_back("trace_id", traceId);
            if (!job.options.parentSpan.empty())
                rootArgs.emplace_back("parent_span",
                                      job.options.parentSpan);
            obs::Tracer::instance().metadata("trace_id", traceId);
        }
        obs::ScopedSpan jobSpan("serve.job", "serve", rootArgs);
        if (!traceId.empty())
            obs::Tracer::instance().flow('f', "serve.submit",
                                         "serve",
                                         traceFlowId(traceId));
        if (job.options.job == "pipeline") {
            info.report = runPipeline(job, context);
        } else if (job.options.job == "spec") {
            info.report = runSpec(job, context);
        } else if (job.options.job == "ingest") {
            info.report = runIngest(job, context);
        } else {
            fatal(strformat("serve: unknown job type '%s'",
                            job.options.job.c_str()));
        }
        if (!traceId.empty())
            obs::Tracer::instance().flow('s', "serve.result",
                                         "serve",
                                         traceFlowId(traceId) + 1);
    }
    const double wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wallStart)
            .count();
    info.execSeconds = wallSeconds;
    info.jobDir = dir.string();

    // Disarm before capture, exactly where the one-shot CLI does.
    auto &injector = fault::Injector::instance();
    if (injector.active())
        injector.disarm();

    // The ledger append is the job's last durable act; its stable
    // block is the serve golden, so everything above must have left
    // the registry exactly as a fresh process would.
    context.command = job.options.job;
    context.jobs = cfg.jobs;
    context.wallSeconds = wallSeconds;
    context.telemetryDir = dir.string();
    report::LedgerRecord record = report::captureRecord(context);
    info.runId = record.runId;
    info.ledgerStable = record.stableJson();
    if (!cfg.ledgerDir.empty()) {
        report::RunLedger ledger(cfg.ledgerDir);
        info.ledgerSeq = ledger.append(record);
    }
    sink.flush();
    return info;
}

std::string
JobRunner::runPipeline(const Job &job, report::CaptureContext &context)
{
    const SocConfig config = SocConfig::snapdragon888();
    PipelineOptions options;
    options.profile.jobs = cfg.jobs;
    options.profile.executor = &exec;
    options.cacheDir = cfg.cacheDir;
    if (job.options.tick > 0.0)
        options.profile.tickSeconds = job.options.tick;

    const std::string runId = report::runIdFor(
        config.digest(), options.profile.seed, options.profile.runs,
        options.profile.tickSeconds);
    attachRunMetadata(config, options.profile, runId);
    context.runId = runId;
    context.socName = config.name;
    context.socConfigDigest = config.digest();
    context.suiteDigest = registrySuiteDigest();
    context.seed = options.profile.seed;
    context.runs = options.profile.runs;
    context.tickSeconds = options.profile.tickSeconds;

    const CharacterizationPipeline pipeline(config, options);
    const auto report = pipeline.run(registry());

    // Same re-ingestable trace bundle a one-shot `pipeline
    // --telemetry-out` exports (the writer registers no metrics, so
    // this cannot perturb the stable block).
    ingest::TraceBundleWriter writer(config,
                                     options.profile.tickSeconds);
    for (const auto &p : report.profiles) {
        const Benchmark &unit = registry().unit(p.name);
        writer.add(p, unit.totalDurationSeconds(),
                   unit.individuallyExecutable());
    }
    writer.write(jobDir(job.id) / "trace-bundle");

    return renderTableI(registry()) + "\n" +
        renderReportSections(report);
}

std::string
JobRunner::runSpec(const Job &job, report::CaptureContext &context)
{
    // The spec body crossed the trust boundary as bytes only; the
    // compiler's diagnostics use a fixed placeholder name so nothing
    // a client sends ever shapes daemon-side paths or messages. A
    // hostile body throws here, which fails the job and leaves the
    // daemon serving.
    const spec::WorkloadSpec workloadSpec =
        spec::compileSpecString(job.options.spec, "<spec>");
    const WorkloadRegistry specRegistry = workloadSpec.toRegistry();

    const SocConfig config = SocConfig::snapdragon888();
    PipelineOptions options;
    options.profile.jobs = cfg.jobs;
    options.profile.executor = &exec;
    options.cacheDir = cfg.cacheDir;
    options.kMax = spec::clampedKMax(specRegistry.units().size());
    if (job.options.tick > 0.0)
        options.profile.tickSeconds = job.options.tick;

    const std::string runId = report::specRunIdFor(
        config.digest(), workloadSpec.digest, options.profile.seed,
        options.profile.runs, options.profile.tickSeconds);
    attachRunMetadata(config, options.profile, runId);
    context.runId = runId;
    context.socName = config.name;
    context.socConfigDigest = config.digest();
    context.suiteDigest = workloadSpec.digest;
    context.seed = options.profile.seed;
    context.runs = options.profile.runs;
    context.tickSeconds = options.profile.tickSeconds;

    const CharacterizationPipeline pipeline(config, options);
    const auto report = pipeline.run(specRegistry);

    ingest::TraceBundleWriter writer(config,
                                     options.profile.tickSeconds);
    for (const auto &p : report.profiles) {
        const Benchmark &unit = specRegistry.unit(p.name);
        writer.add(p, unit.totalDurationSeconds(),
                   unit.individuallyExecutable());
    }
    writer.write(jobDir(job.id) / "trace-bundle");

    return renderTableI(specRegistry) + "\n" +
        renderReportSections(report);
}

std::string
JobRunner::runIngest(const Job &job, report::CaptureContext &context)
{
    fatalIf(job.bundle.empty(),
            "serve: ingest job carries no bundle files");
    const fs::path bundleDir = spoolBundle(jobDir(job.id), job.bundle);

    std::unique_ptr<ProfileStore> store;
    if (!cfg.cacheDir.empty())
        store = std::make_unique<ProfileStore>(cfg.cacheDir);
    ingest::IngestOptions options;
    options.tickSeconds = job.options.tick;
    options.lax = job.options.lax;
    options.cache = store.get();
    const ingest::TraceBundleReader reader(options);
    const auto result = reader.read(bundleDir);

    context.runId = report::ingestRunIdFor(
        result.manifest.socConfigDigest, result.bundleDigest,
        result.tickSeconds);
    context.socName = result.manifest.socName;
    context.socConfigDigest = result.manifest.socConfigDigest;
    context.suiteDigest = result.bundleDigest;
    context.seed = 0;
    context.runs = 0;
    context.tickSeconds = result.tickSeconds;

    if (job.options.ingestPipeline) {
        PipelineOptions pipelineOptions;
        pipelineOptions.profile.jobs = cfg.jobs;
        pipelineOptions.profile.executor = &exec;
        const CharacterizationPipeline pipeline(
            SocConfig::snapdragon888(), pipelineOptions);
        std::vector<WorkloadInfo> workloads;
        workloads.reserve(result.manifest.benchmarks.size());
        for (const auto &b : result.manifest.benchmarks) {
            workloads.push_back(WorkloadInfo{
                b.plannedRuntimeSeconds, b.individuallyExecutable});
        }
        return renderReportSections(
            pipeline.analyze(result.profiles, workloads));
    }

    std::string out = strformat(
        "%zu benchmarks, %llu rows (%llu dropped, %llu alias hits)\n",
        result.profiles.size(),
        (unsigned long long)result.stats.rows,
        (unsigned long long)result.stats.droppedSamples,
        (unsigned long long)result.stats.aliasHits);
    if (result.fromCache)
        out = strformat("%zu benchmarks (cached)\n",
                        result.profiles.size());
    return out;
}

} // namespace serve
} // namespace mbs
