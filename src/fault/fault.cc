#include "fault/fault.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

#include <chrono>
#include <thread>

#include "common/digest.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/strings.hh"
#include "obs/events.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"

namespace mbs {
namespace fault {

namespace {

/** Site table: every injection point and the kinds it supports. */
const std::vector<std::pair<std::string, std::vector<Kind>>> &
siteTable()
{
    static const std::vector<std::pair<std::string, std::vector<Kind>>>
        table = {
            {"store.read",
             {Kind::Error, Kind::Truncate, Kind::Corrupt}},
            {"store.write", {Kind::Error}},
            {"store.rename", {Kind::Error}},
            {"ingest.manifest",
             {Kind::Error, Kind::Truncate, Kind::Corrupt}},
            {"ingest.csv",
             {Kind::Error, Kind::Truncate, Kind::Corrupt}},
            {"exec.task", {Kind::Error}},
            {"telemetry.write", {Kind::Error}},
        };
    return table;
}

struct FaultInstruments
{
    obs::Counter &injected;
    obs::Counter &recovered;
    obs::Counter &degraded;
};

/**
 * fault.* counters, touched at arm() so an armed run exports them
 * even when every value stays zero. Looked up per call, not cached
 * in a function-local static: the serve daemon resets the registry
 * between jobs, which would leave cached references dangling.
 */
FaultInstruments
faultInstruments()
{
    auto &registry = obs::MetricsRegistry::instance();
    return FaultInstruments{
        registry.counter("fault.injected", obs::Volatility::Stable,
                         "Faults fired by the armed injection plan"),
        registry.counter("fault.recovered", obs::Volatility::Stable,
                         "Injected faults absorbed by a retry path"),
        registry.counter("fault.degraded", obs::Volatility::Stable,
                         "Injected faults absorbed by degrading "
                         "(salvage, cache bypass)"),
    };
}

/** Decision hash: uniform in [0, 1) from the decision coordinates. */
double
decisionU01(std::uint64_t seed, const std::string &site,
            std::size_t specIdx, std::uint64_t arrival)
{
    Fnv1a h;
    h.mix(seed);
    h.mix(site);
    h.mix(static_cast<std::uint64_t>(specIdx));
    h.mix(arrival);
    return static_cast<double>(h.value() >> 11) * 0x1.0p-53;
}

std::string
formatRate(double rate)
{
    std::ostringstream out;
    out << rate;
    const std::string text = out.str();
    // Keep describe() round-trippable: a whole-valued rate must not
    // collapse to an integer literal, which parse() reads as a burst.
    if (text.find_first_of(".eE") == std::string::npos)
        return text + ".0";
    return text;
}

} // namespace

const char *
kindName(Kind kind)
{
    switch (kind) {
      case Kind::Error:
        return "eio";
      case Kind::Truncate:
        return "truncate";
      case Kind::Corrupt:
        return "corrupt";
    }
    return "unknown";
}

const std::vector<std::string> &
FaultPlan::knownSites()
{
    static const std::vector<std::string> sites = [] {
        std::vector<std::string> names;
        for (const auto &[site, kinds] : siteTable())
            names.push_back(site);
        return names;
    }();
    return sites;
}

const std::vector<Kind> &
FaultPlan::kindsFor(const std::string &site)
{
    static const std::vector<Kind> none;
    for (const auto &[name, kinds] : siteTable())
        if (name == site)
            return kinds;
    return none;
}

FaultPlan
FaultPlan::parse(const std::string &spec, std::uint64_t seed)
{
    FaultPlan plan;
    plan.planSeed = seed;

    std::stringstream stream(spec);
    std::string entryText;
    while (std::getline(stream, entryText, ',')) {
        // Tolerate surrounding whitespace between entries.
        const auto first = entryText.find_first_not_of(" \t");
        const auto last = entryText.find_last_not_of(" \t");
        if (first == std::string::npos)
            continue;
        entryText = entryText.substr(first, last - first + 1);

        const auto colon = entryText.find(':');
        const auto at = entryText.find('@', colon == std::string::npos
                                                ? 0
                                                : colon + 1);
        fatalIf(colon == std::string::npos ||
                    at == std::string::npos,
                strformat("fault spec entry '%s' is not "
                          "<site>:<kind>@<trigger>",
                          entryText.c_str()));

        SiteSpec entry;
        entry.site = entryText.substr(0, colon);
        const std::string kindText =
            entryText.substr(colon + 1, at - colon - 1);
        const std::string trigger = entryText.substr(at + 1);

        const std::vector<Kind> &allowed = kindsFor(entry.site);
        if (allowed.empty()) {
            std::string all;
            for (const std::string &name : knownSites())
                all += (all.empty() ? "" : ", ") + name;
            fatal(strformat("unknown fault site '%s' (known: %s)",
                            entry.site.c_str(), all.c_str()));
        }

        bool kindKnown = kindText == "any";
        entry.anyKind = kindKnown;
        for (Kind kind : {Kind::Error, Kind::Truncate, Kind::Corrupt})
            if (kindText == kindName(kind)) {
                entry.kind = kind;
                kindKnown = true;
            }
        fatalIf(!kindKnown,
                strformat("unknown fault kind '%s' in '%s' "
                          "(known: eio, truncate, corrupt, any)",
                          kindText.c_str(), entryText.c_str()));
        fatalIf(!entry.anyKind &&
                    std::find(allowed.begin(), allowed.end(),
                              entry.kind) == allowed.end(),
                strformat("fault site '%s' does not support kind '%s'",
                          entry.site.c_str(), kindText.c_str()));

        const bool isBurst =
            !trigger.empty() &&
            std::all_of(trigger.begin(), trigger.end(), [](char c) {
                return std::isdigit(static_cast<unsigned char>(c));
            });
        if (isBurst) {
            entry.burst = std::stoull(trigger);
            fatalIf(entry.burst == 0,
                    strformat("fault trigger '@0' in '%s' would "
                              "never fire",
                              entryText.c_str()));
        } else {
            std::size_t used = 0;
            double rate = 0.0;
            try {
                rate = std::stod(trigger, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            fatalIf(used != trigger.size() || rate <= 0.0 ||
                        rate > 1.0,
                    strformat("fault trigger '%s' in '%s' is neither "
                              "a burst count nor a rate in (0, 1]",
                              trigger.c_str(), entryText.c_str()));
            entry.rate = rate;
        }
        plan.entries.push_back(std::move(entry));
    }
    fatalIf(plan.entries.empty(),
            strformat("fault spec '%s' contains no entries",
                      spec.c_str()));
    return plan;
}

FaultPlan
FaultPlan::uniform(double rate, std::uint64_t seed)
{
    fatalIf(rate <= 0.0 || rate > 1.0,
            strformat("--fault-rate %g is outside (0, 1]", rate));
    FaultPlan plan;
    plan.planSeed = seed;
    for (const auto &[site, kinds] : siteTable()) {
        SiteSpec entry;
        entry.site = site;
        entry.anyKind = true;
        entry.rate = rate;
        plan.entries.push_back(std::move(entry));
    }
    return plan;
}

std::string
FaultPlan::describe() const
{
    std::string text;
    for (const SiteSpec &entry : entries) {
        if (!text.empty())
            text += ",";
        text += entry.site;
        text += ":";
        text += entry.anyKind ? "any" : kindName(entry.kind);
        text += "@";
        text += entry.burst > 0 ? std::to_string(entry.burst)
                                : formatRate(entry.rate);
    }
    return text;
}

Injector &
Injector::instance()
{
    static Injector injector;
    return injector;
}

void
Injector::arm(const FaultPlan &newPlan)
{
    faultInstruments();
    {
        std::lock_guard<std::mutex> lock(mtx);
        plan = newPlan;
        sites.clear();
        for (std::size_t i = 0; i < plan.entries.size(); ++i)
            sites[plan.entries[i].site].specs.push_back(i);
        for (auto &[site, state] : sites) {
            Fnv1a h;
            h.mix(plan.seed());
            h.mix(site);
            h.mix(std::string("mutate"));
            state.mutateState = h.value();
        }
        armed.store(!plan.empty(), std::memory_order_relaxed);
    }
    // The telemetry sink lives *below* this layer in the dependency
    // order, so its injection point is this gate: injected write
    // errors are retried, and an exhausted budget skips the file
    // (the sink's own graceful-degradation path).
    obs::setTelemetryWriteGate([](const std::string &path) {
        auto &injector = Injector::instance();
        bool sawInjectedError = false;
        for (int attempt = 1; attempt <= 3; ++attempt) {
            if (check("telemetry.write") == Kind::Error) {
                sawInjectedError = true;
                if (attempt < 3) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1
                                                  << (attempt - 1)));
                }
                continue;
            }
            if (sawInjectedError)
                injector.recovered("telemetry.write", "retried");
            return true;
        }
        injector.degraded("telemetry.write",
                          "write retries exhausted; skipping '" +
                              path + "'");
        return false;
    });
}

void
Injector::disarm()
{
    obs::setTelemetryWriteGate({});
    std::lock_guard<std::mutex> lock(mtx);
    armed.store(false, std::memory_order_relaxed);
    plan = FaultPlan();
    sites.clear();
}

std::optional<Kind>
Injector::next(const std::string &site)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (!armed.load(std::memory_order_relaxed))
        return std::nullopt;
    auto it = sites.find(site);
    if (it == sites.end())
        return std::nullopt;
    SiteState &state = it->second;
    const std::uint64_t arrival = state.arrivals++;

    for (std::size_t specIdx : state.specs) {
        const SiteSpec &spec = plan.entries[specIdx];
        bool fire = false;
        if (spec.burst > 0) {
            fire = arrival < spec.burst;
        } else {
            fire = decisionU01(plan.seed(), site, specIdx, arrival) <
                   spec.rate;
        }
        if (!fire)
            continue;

        Kind kind = spec.kind;
        if (spec.anyKind) {
            const std::vector<Kind> &allowed =
                FaultPlan::kindsFor(site);
            Fnv1a h;
            h.mix(plan.seed());
            h.mix(site);
            h.mix(std::string("kind"));
            h.mix(arrival);
            kind = allowed[h.value() % allowed.size()];
        }

        faultInstruments().injected.add();
        obs::EventLog::instance().emit(
            "fault.injected",
            {{"site", site},
             {"kind", kindName(kind)},
             {"arrival", std::to_string(arrival)}});
        return kind;
    }
    return std::nullopt;
}

std::string
Injector::mutate(Kind kind, const std::string &site,
                 std::string bytes)
{
    if (bytes.empty())
        return bytes;
    std::uint64_t seed;
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto it = sites.find(site);
        if (it == sites.end())
            return bytes;
        // Advance the per-site stream so successive mutations at one
        // site differ, while the whole sequence replays under re-arm.
        it->second.mutateState =
            SplitMix64(it->second.mutateState).next();
        seed = it->second.mutateState;
    }
    SplitMix64 rng(seed);
    switch (kind) {
      case Kind::Error:
        break;
      case Kind::Truncate: {
        const double u01 =
            static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
        const double keep = 0.05 + 0.65 * u01;
        bytes.resize(static_cast<std::size_t>(
            static_cast<double>(bytes.size()) * keep));
        break;
      }
      case Kind::Corrupt: {
        const std::size_t flips = 1 + bytes.size() / 512;
        for (std::size_t i = 0; i < flips; ++i) {
            const std::size_t pos = rng.next() % bytes.size();
            bytes[pos] = static_cast<char>(bytes[pos] ^ 0xA5);
        }
        break;
      }
    }
    return bytes;
}

void
Injector::recovered(const std::string &site, const std::string &how)
{
    faultInstruments().recovered.add();
    obs::EventLog::instance().emit("fault.recovered",
                                   {{"site", site}, {"how", how}});
}

void
Injector::degraded(const std::string &site, const std::string &detail)
{
    faultInstruments().degraded.add();
    obs::EventLog::instance().emit(
        "fault.degraded", {{"site", site}, {"detail", detail}});
    warn(strformat("degraded at %s: %s", site.c_str(),
                   detail.c_str()));
}

} // namespace fault
} // namespace mbs
