/**
 * @file
 * Deterministic, seed-driven fault injection.
 *
 * The pipeline has real failure surfaces — the on-disk profile store,
 * external trace-bundle ingestion, the multi-worker executor, the
 * telemetry sink — and each of them ships a recovery policy (retry
 * with backoff, quarantine-and-bypass, partial-bundle salvage, task
 * resubmission). This module exists to *exercise* those policies
 * continuously: a FaultPlan names injection points ("sites") and,
 * per site, a fault kind plus a trigger; the process-wide Injector
 * then decides, arrival by arrival, whether the next operation at a
 * site fails.
 *
 * Determinism is the load-bearing property. Every decision is a pure
 * function of (plan seed, site name, spec index, arrival number), and
 * every call site arranges for arrivals to happen in a deterministic
 * order (store/ingest/telemetry operations are serial; executor task
 * decisions are taken on the submitting thread in submission order).
 * Re-arming the same plan therefore replays the exact same fault
 * pattern, for any `--jobs` count — which is what lets `mobilebench
 * chaos` assert that a recovered run is byte-identical to a
 * fault-free one.
 *
 * Spec grammar (comma-separated entries):
 *
 *   <site>:<kind>@<trigger>
 *
 *   site     store.read | store.write | store.rename |
 *            ingest.manifest | ingest.csv | exec.task |
 *            telemetry.write
 *   kind     eio (operation fails) | truncate (payload cut short) |
 *            corrupt (payload bytes flipped) | any (pick among the
 *            site's supported kinds, deterministically per arrival)
 *   trigger  integer N  -> fire on the first N arrivals at the site
 *            fraction p -> fire each arrival with probability p
 *                          ("1.0" always fires; "1" fires once)
 *
 * Examples: `store.read:eio@3` (the first three store reads fail),
 * `ingest.csv:truncate@0.01` (each trace file is truncated with 1%
 * probability).
 *
 * Zero-cost when idle: call sites guard with `fault::check(site)`,
 * whose fast path is a single relaxed atomic load; with no plan
 * armed, nothing else happens.
 *
 * Observability: every fired injection increments `fault.injected`,
 * every neutralized one `fault.recovered`, every surviving
 * degradation `fault.degraded`, each with a matching event.
 */

#ifndef MBS_FAULT_FAULT_HH
#define MBS_FAULT_FAULT_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace mbs {
namespace fault {

/** What an injected fault does to the faulted operation. */
enum class Kind {
    /** The operation fails outright (IO error, worker death). */
    Error,
    /** The operation yields a truncated payload. */
    Truncate,
    /** The operation yields a payload with flipped bytes. */
    Corrupt,
};

/** Spec-grammar name of @p kind ("eio", "truncate", "corrupt"). */
const char *kindName(Kind kind);

/** One parsed spec entry: a site, a kind and a trigger. */
struct SiteSpec
{
    std::string site;
    /** True for uniform plans: pick any kind the site supports. */
    bool anyKind = false;
    Kind kind = Kind::Error;
    /** Bernoulli probability per arrival; 0 when burst-triggered. */
    double rate = 0.0;
    /** Fire on the first `burst` arrivals; 0 when rate-triggered. */
    std::uint64_t burst = 0;
};

/**
 * A parsed, seeded fault plan. Immutable once constructed; arm it on
 * the Injector to make it live.
 */
class FaultPlan
{
  public:
    /** The empty plan: injects nothing. */
    FaultPlan() = default;

    /**
     * Parse an explicit spec string (see the grammar above).
     * fatal() on unknown sites/kinds or malformed triggers.
     */
    static FaultPlan parse(const std::string &spec,
                           std::uint64_t seed);

    /**
     * A plan covering every known site at probability @p rate per
     * arrival, with the fault kind drawn (deterministically) from
     * the kinds each site supports.
     */
    static FaultPlan uniform(double rate, std::uint64_t seed);

    bool empty() const { return entries.empty(); }
    std::uint64_t seed() const { return planSeed; }

    /** Canonical spec string (round-trips through parse). */
    std::string describe() const;

    /** Every site the framework can inject at. */
    static const std::vector<std::string> &knownSites();

    /** The kinds @p site supports; empty for unknown sites. */
    static const std::vector<Kind> &kindsFor(const std::string &site);

  private:
    friend class Injector;

    std::vector<SiteSpec> entries;
    std::uint64_t planSeed = 0;
};

/** Thrown by a task that an armed plan decided to kill. */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string &site)
        : std::runtime_error("injected fault at " + site),
          siteName(site)
    {}

    const std::string &site() const { return siteName; }

  private:
    std::string siteName;
};

/**
 * The process-wide fault injector.
 *
 * Disarmed by default; arm() activates a plan and resets all arrival
 * counters, so the same plan always replays the same fault pattern.
 * Thread-safe: decisions take a mutex, but only once a plan is armed.
 */
class Injector
{
  public:
    static Injector &instance();

    /** Activate @p plan, resetting every arrival counter. */
    void arm(const FaultPlan &plan);

    /** Deactivate injection (the idle state). */
    void disarm();

    /** Fast path: is any plan armed? One relaxed atomic load. */
    bool active() const
    {
        return armed.load(std::memory_order_relaxed);
    }

    /**
     * Register one arrival at @p site and decide its fate. Returns
     * the fault kind to apply, or nullopt to proceed normally.
     * Counts `fault.injected` and emits a `fault.injected` event
     * when firing.
     */
    std::optional<Kind> next(const std::string &site);

    /**
     * Deterministically apply @p kind to a payload: Truncate cuts it
     * to a seeded fraction, Corrupt flips seeded byte positions.
     * (Error has no payload transformation; bytes pass through.)
     */
    std::string mutate(Kind kind, const std::string &site,
                       std::string bytes);

    /** A recovery policy neutralized an injected fault at @p site. */
    void recovered(const std::string &site, const std::string &how);

    /**
     * The system degraded gracefully at @p site (cache bypassed,
     * artifact dropped, benchmark salvaged) but kept running.
     */
    void degraded(const std::string &site, const std::string &detail);

  private:
    Injector() = default;

    struct SiteState
    {
        /** Indices into plan.entries targeting this site. */
        std::vector<std::size_t> specs;
        std::uint64_t arrivals = 0;
        /** Payload-mutation stream, seeded per site at arm(). */
        std::uint64_t mutateState = 0;
    };

    std::atomic<bool> armed{false};
    mutable std::mutex mtx;
    FaultPlan plan;
    std::map<std::string, SiteState> sites;
};

/**
 * Guarded decision helper for call sites: nullopt (at the cost of
 * one relaxed atomic load) when no plan is armed, otherwise the
 * Injector's verdict for this arrival.
 */
inline std::optional<Kind>
check(const char *site)
{
    Injector &inj = Injector::instance();
    if (!inj.active())
        return std::nullopt;
    return inj.next(site);
}

/** RAII arm/disarm, for tests and the chaos driver. */
class ScopedPlan
{
  public:
    explicit ScopedPlan(const FaultPlan &plan)
    {
        Injector::instance().arm(plan);
    }
    ~ScopedPlan() { Injector::instance().disarm(); }

    ScopedPlan(const ScopedPlan &) = delete;
    ScopedPlan &operator=(const ScopedPlan &) = delete;
};

} // namespace fault
} // namespace mbs

#endif // MBS_FAULT_FAULT_HH
