#include "roi.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace mbs {

namespace {

/** Per-metric running sums for a candidate segment. */
struct SegmentStats
{
    std::size_t begin = 0;
    std::size_t end = 0;
    std::vector<double> sum;
    std::vector<double> sumSq;

    /** Total within-segment variance summed over metrics. */
    double
    sse() const
    {
        const double n = double(end - begin);
        if (n <= 0.0)
            return 0.0;
        double total = 0.0;
        for (std::size_t m = 0; m < sum.size(); ++m)
            total += sumSq[m] - sum[m] * sum[m] / n;
        return total;
    }

    static SegmentStats
    merged(const SegmentStats &a, const SegmentStats &b)
    {
        SegmentStats out;
        out.begin = a.begin;
        out.end = b.end;
        out.sum.resize(a.sum.size());
        out.sumSq.resize(a.sum.size());
        for (std::size_t m = 0; m < a.sum.size(); ++m) {
            out.sum[m] = a.sum[m] + b.sum[m];
            out.sumSq[m] = a.sumSq[m] + b.sumSq[m];
        }
        return out;
    }
};

/** Mean metric vector of series[*][begin, end). */
std::vector<double>
windowMean(const std::vector<std::vector<double>> &series,
           std::size_t begin, std::size_t end)
{
    std::vector<double> mean(series.size(), 0.0);
    const double n = double(end - begin);
    for (std::size_t m = 0; m < series.size(); ++m) {
        for (std::size_t i = begin; i < end; ++i)
            mean[m] += series[m][i];
        mean[m] /= n;
    }
    return mean;
}

double
relativeError(const std::vector<double> &window,
              const std::vector<double> &whole)
{
    double diff = 0.0, norm = 0.0;
    for (std::size_t m = 0; m < whole.size(); ++m) {
        diff += (window[m] - whole[m]) * (window[m] - whole[m]);
        norm += whole[m] * whole[m];
    }
    if (norm <= 0.0)
        return 0.0;
    return std::sqrt(diff / norm);
}

} // namespace

RoiExtractor::RoiExtractor(const RoiOptions &options_)
    : roiOptions(options_)
{
    fatalIf(roiOptions.maxSegments < 1,
            "ROI extraction needs >= 1 segment");
    fatalIf(roiOptions.targetFraction <= 0.0 ||
                roiOptions.targetFraction > 1.0,
            "ROI target fraction must be in (0, 1]");
}

std::vector<PhaseSegment>
RoiExtractor::segment(
    const std::vector<std::vector<double>> &series) const
{
    fatalIf(series.empty(), "segmentation needs >= 1 metric");
    const std::size_t n = series.front().size();
    for (const auto &metric : series) {
        fatalIf(metric.size() != n,
                "all metric series must have equal length");
    }
    if (n == 0)
        return {};

    // Initial fine blocks: at least 4x finer than the target segment
    // count, at least one sample each.
    const std::size_t blocks = std::min<std::size_t>(
        n, std::max<std::size_t>(std::size_t(roiOptions.maxSegments) *
                                     4, 8));
    std::vector<SegmentStats> segs;
    segs.reserve(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
        SegmentStats s;
        s.begin = b * n / blocks;
        s.end = (b + 1) * n / blocks;
        if (s.begin >= s.end)
            continue;
        s.sum.assign(series.size(), 0.0);
        s.sumSq.assign(series.size(), 0.0);
        for (std::size_t m = 0; m < series.size(); ++m) {
            for (std::size_t i = s.begin; i < s.end; ++i) {
                s.sum[m] += series[m][i];
                s.sumSq[m] += series[m][i] * series[m][i];
            }
        }
        segs.push_back(std::move(s));
    }

    // Bottom-up merging: always merge the adjacent pair whose merge
    // adds the least within-segment variance.
    while (segs.size() > std::size_t(roiOptions.maxSegments)) {
        double best_cost = std::numeric_limits<double>::max();
        std::size_t best = 0;
        for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
            const double cost =
                SegmentStats::merged(segs[i], segs[i + 1]).sse() -
                segs[i].sse() - segs[i + 1].sse();
            if (cost < best_cost) {
                best_cost = cost;
                best = i;
            }
        }
        segs[best] = SegmentStats::merged(segs[best], segs[best + 1]);
        segs.erase(segs.begin() + long(best) + 1);
    }

    std::vector<PhaseSegment> out;
    out.reserve(segs.size());
    for (const auto &s : segs)
        out.push_back(PhaseSegment{s.begin, s.end});
    return out;
}

RoiWindow
RoiExtractor::extractFromSeries(
    const std::vector<std::vector<double>> &series) const
{
    fatalIf(series.empty(), "ROI extraction needs >= 1 metric");
    const std::size_t n = series.front().size();
    fatalIf(n == 0, "ROI extraction needs a non-empty series");

    RoiWindow out;
    out.segments = segment(series);

    const auto window = std::max<std::size_t>(
        1, std::size_t(std::llround(double(n) *
                                    roiOptions.targetFraction)));
    const std::vector<double> whole = windowMean(series, 0, n);

    // Slide the window at a fine step (1/8 of the window length) and
    // keep the position whose mean vector is closest to the whole
    // run's.
    const std::size_t step = std::max<std::size_t>(1, window / 8);
    double best_error = std::numeric_limits<double>::max();
    std::size_t best_begin = 0;
    for (std::size_t begin = 0; begin + window <= n; begin += step) {
        const double err = relativeError(
            windowMean(series, begin, begin + window), whole);
        if (err < best_error) {
            best_error = err;
            best_begin = begin;
        }
    }
    out.startFraction = double(best_begin) / double(n);
    out.endFraction = double(best_begin + window) / double(n);
    out.representativenessError = best_error;
    return out;
}

std::vector<std::vector<double>>
RoiExtractor::keyMetricSeries(const BenchmarkProfile &profile)
{
    return {
        profile.series.cpuLoad.values(),
        profile.series.gpuLoad.values(),
        profile.series.shadersBusy.values(),
        profile.series.gpuBusBusy.values(),
        profile.series.aieLoad.values(),
        profile.series.usedMemory.values(),
    };
}

RoiWindow
RoiExtractor::extract(const BenchmarkProfile &profile) const
{
    return extractFromSeries(keyMetricSeries(profile));
}

} // namespace mbs
