/**
 * @file
 * Region-of-interest (ROI) extraction.
 *
 * The paper's §VI motivates subsetting partly because ROI selection
 * is "a challenge, given that these benchmarks can encompass various
 * types of workloads" and their closed-source nature prevents source
 * instrumentation. This extension attacks the problem from the
 * measurement side: segment a benchmark's multi-metric counter time
 * series into execution phases (bottom-up merging, SimPoint-style in
 * spirit) and pick the contiguous window of a target length whose
 * average behaviour is closest to the whole run's — a simulation
 * window that represents the benchmark without source access.
 */

#ifndef MBS_ROI_ROI_HH
#define MBS_ROI_ROI_HH

#include <cstddef>
#include <string>
#include <vector>

#include "profiler/session.hh"

namespace mbs {

/** A contiguous run of samples belonging to one execution phase. */
struct PhaseSegment
{
    /** First sample index (inclusive). */
    std::size_t begin = 0;
    /** Last sample index (exclusive). */
    std::size_t end = 0;

    std::size_t length() const { return end - begin; }
};

/** The selected simulation window for one benchmark. */
struct RoiWindow
{
    /** Window position as fractions of the run, [0, 1]. */
    double startFraction = 0.0;
    double endFraction = 0.0;
    /**
     * Relative representativeness error: L2 distance between the
     * window's mean metric vector and the whole run's, divided by
     * the L2 norm of the whole run's vector. 0 is a perfect proxy.
     */
    double representativenessError = 0.0;
    /** Phase segmentation the window was chosen from. */
    std::vector<PhaseSegment> segments;
};

/** Tunables for ROI extraction. */
struct RoiOptions
{
    /** Upper bound on detected phases (>= 1). */
    int maxSegments = 12;
    /** Target window length as a fraction of the run (0, 1]. */
    double targetFraction = 0.10;
};

/**
 * Phase segmentation and ROI selection over profiled metric series.
 */
class RoiExtractor
{
  public:
    explicit RoiExtractor(const RoiOptions &options = {});

    /**
     * Bottom-up phase segmentation of a multi-metric series.
     *
     * Starts from fine fixed-size blocks and repeatedly merges the
     * adjacent pair whose merge increases the total within-segment
     * variance the least, until at most maxSegments remain.
     *
     * @param series One vector per metric, all the same length.
     */
    std::vector<PhaseSegment>
    segment(const std::vector<std::vector<double>> &series) const;

    /**
     * Select the ROI window for a profiled benchmark using the six
     * key metric series (CPU/GPU/AIE load, shaders, bus, memory).
     */
    RoiWindow extract(const BenchmarkProfile &profile) const;

    /**
     * The six key metric series extract() selects over, as raw
     * sample vectors. Exposed so other consumers (the ingest summary
     * view) window over exactly the same metric set.
     */
    static std::vector<std::vector<double>>
    keyMetricSeries(const BenchmarkProfile &profile);

    /**
     * Select the best window directly over raw metric series.
     * Windows are aligned to segment boundaries where possible and
     * slid at fine granularity otherwise.
     */
    RoiWindow
    extractFromSeries(const std::vector<std::vector<double>> &series)
        const;

    const RoiOptions &options() const { return roiOptions; }

  private:
    RoiOptions roiOptions;
};

} // namespace mbs

#endif // MBS_ROI_ROI_HH
