/**
 * @file
 * Trace-bundle ingestion: parse, normalize and resample external
 * counter traces into the same BenchmarkProfile structures the
 * profiler produces, so the whole characterization pipeline runs
 * unchanged on captured data.
 *
 * The reader is strict by default — malformed input dies with a
 * `<file>:<line>: message` diagnostic — and lenient with --lax, where
 * unknown columns and broken rows are dropped (and counted) instead.
 * Structural faults (non-monotonic timestamps, schema mismatches,
 * truncated files) are fatal either way: silently reordering time is
 * never safe. Under --lax a structural fault confined to one
 * benchmark's trace is additionally *salvageable*: the faulted
 * benchmark is dropped from the bundle (recorded in
 * IngestStats::droppedBenchmarks with its positioned diagnostic) and
 * ingestion continues over the rest; only a bundle with no surviving
 * benchmark still dies.
 */

#ifndef MBS_INGEST_BUNDLE_READER_HH
#define MBS_INGEST_BUNDLE_READER_HH

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "ingest/trace_bundle.hh"
#include "profiler/profile_cache.hh"
#include "profiler/session.hh"

namespace mbs {
namespace ingest {

/** Ingestion knobs. */
struct IngestOptions
{
    /**
     * Resampling tick in seconds; 0 adopts the bundle's nominal
     * sample period (which keeps on-grid traces bit-exact).
     */
    double tickSeconds = 0.0;
    /**
     * Drop-and-count instead of die for unknown columns and
     * malformed/non-finite rows.
     */
    bool lax = false;
    /**
     * Optional memoization cache consulted per bundle digest
     * (non-owning). Ingesting the same bundle bytes twice then skips
     * the parse entirely.
     */
    ProfileCache *cache = nullptr;
};

/** One benchmark dropped by --lax partial-bundle salvage. */
struct DroppedBenchmark
{
    std::string name;
    /** The positioned `<file>:<line>:` diagnostic that dropped it. */
    std::string error;
};

/** Parse/normalization tallies (also exported as obs counters). */
struct IngestStats
{
    /** Data rows accepted across all trace files. */
    std::uint64_t rows = 0;
    /** Rows/columns discarded under --lax. */
    std::uint64_t droppedSamples = 0;
    /** Columns matched through the alias table. */
    std::uint64_t aliasHits = 0;
    /** Benchmarks dropped by --lax salvage, manifest order. */
    std::vector<DroppedBenchmark> droppedBenchmarks;
};

/** Everything one bundle ingestion produces. */
struct IngestResult
{
    /**
     * The parsed manifest, pruned to surviving benchmarks when --lax
     * salvage dropped any (so profiles[i] always describes
     * manifest.benchmarks[i]).
     */
    TraceManifest manifest;
    /** One profile per (surviving) manifest benchmark, in order. */
    std::vector<BenchmarkProfile> profiles;
    IngestStats stats;
    /** FNV-1a over manifest and trace bytes: the cache identity. */
    std::uint64_t bundleDigest = 0;
    /** The resampling tick actually used. */
    double tickSeconds = 0.0;
    /** True when profiles came from the cache, not a parse. */
    bool fromCache = false;
};

/** Reads trace bundles (see trace_bundle.hh for the layout). */
class TraceBundleReader
{
  public:
    explicit TraceBundleReader(const IngestOptions &options = {});

    /**
     * Ingest the bundle at @p bundleDir.
     *
     * @throws FatalError with a positioned message on malformed
     *         input (strict mode) or structural faults (always).
     */
    IngestResult read(const std::filesystem::path &bundleDir) const;

  private:
    IngestOptions opts;
};

} // namespace ingest
} // namespace mbs

#endif // MBS_INGEST_BUNDLE_READER_HH
