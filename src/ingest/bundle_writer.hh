/**
 * @file
 * Trace-bundle export: serialize profiles into the schema the ingest
 * reader consumes.
 *
 * The writer is what makes the round-trip guarantee testable: a
 * bundle written from simulator profiles and read back yields
 * bit-identical profiles (series CSVs carry 17 significant digits so
 * every double survives the decimal round trip; scalar aggregates
 * ride in the manifest summary block).
 */

#ifndef MBS_INGEST_BUNDLE_WRITER_HH
#define MBS_INGEST_BUNDLE_WRITER_HH

#include <filesystem>
#include <string>
#include <vector>

#include "profiler/session.hh"
#include "soc/config.hh"

namespace mbs {
namespace ingest {

/** Writes profiles as a trace bundle (manifest.json + traces/). */
class TraceBundleWriter
{
  public:
    /**
     * @param config SoC the profiles were captured on; its digest and
     *        maximum clocks go into the manifest.
     * @param samplePeriodSeconds Bundle-wide nominal sample period.
     */
    TraceBundleWriter(const SocConfig &config,
                      double samplePeriodSeconds);

    /**
     * Queue one profile for export.
     *
     * @param plannedRuntimeSeconds Nominal runtime for Table-VI
     *        subset accounting.
     * @param individuallyExecutable False when the unit only runs as
     *        part of its whole suite.
     */
    void add(const BenchmarkProfile &profile,
             double plannedRuntimeSeconds,
             bool individuallyExecutable = true);

    /**
     * Write manifest.json and one traces/<slug>.csv per queued
     * profile under @p directory (created if needed).
     */
    void write(const std::filesystem::path &directory) const;

    /** Filesystem-safe trace-file slug derived from a name. */
    static std::string slugFor(const std::string &name);

  private:
    struct Entry
    {
        BenchmarkProfile profile;
        double plannedRuntimeSeconds = 0.0;
        bool individuallyExecutable = true;
        std::string file;
    };

    std::string manifestJson() const;
    static void writeTraceCsv(const std::filesystem::path &path,
                              const BenchmarkProfile &profile);

    std::string socName;
    std::uint64_t socDigest = 0;
    double gpuMaxFreqHz = 0.0;
    double aieMaxFreqHz = 0.0;
    double samplePeriod = 0.0;
    std::vector<Entry> entries;
};

} // namespace ingest
} // namespace mbs

#endif // MBS_INGEST_BUNDLE_WRITER_HH
