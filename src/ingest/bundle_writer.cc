#include "ingest/bundle_writer.hh"

#include <cctype>
#include <fstream>
#include <locale>

#include "common/csv.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "ingest/schema.hh"
#include "obs/json.hh"

namespace mbs {
namespace ingest {

namespace fs = std::filesystem;

TraceBundleWriter::TraceBundleWriter(const SocConfig &config,
                                     double samplePeriodSeconds)
    : socName(config.name), socDigest(config.digest()),
      gpuMaxFreqHz(config.gpu.maxFreqHz),
      aieMaxFreqHz(config.aie.maxFreqHz),
      samplePeriod(samplePeriodSeconds)
{
    fatalIf(samplePeriod <= 0.0,
            "bundle sample period must be > 0");
}

std::string
TraceBundleWriter::slugFor(const std::string &name)
{
    std::string slug;
    for (char ch : name) {
        const auto c = static_cast<unsigned char>(ch);
        if (std::isalnum(c))
            slug.push_back(char(std::tolower(c)));
        else if (!slug.empty() && slug.back() != '-')
            slug.push_back('-');
    }
    while (!slug.empty() && slug.back() == '-')
        slug.pop_back();
    return slug.empty() ? "trace" : slug;
}

void
TraceBundleWriter::add(const BenchmarkProfile &profile,
                       double plannedRuntimeSeconds,
                       bool individuallyExecutable)
{
    Entry entry;
    entry.profile = profile;
    entry.plannedRuntimeSeconds = plannedRuntimeSeconds;
    entry.individuallyExecutable = individuallyExecutable;
    std::string slug = slugFor(profile.name);
    // Disambiguate repeated names deterministically.
    int suffix = 1;
    for (const Entry &prior : entries) {
        if (prior.file == "traces/" + slug + ".csv")
            slug = slugFor(profile.name) + strformat("-%d", ++suffix);
    }
    entry.file = "traces/" + slug + ".csv";
    entries.push_back(std::move(entry));
}

std::string
TraceBundleWriter::manifestJson() const
{
    using obs::jsonEscape;
    using obs::jsonNumber;
    std::string out;
    out += "{\n";
    out += strformat("  \"schema\": \"%s\",\n",
                     traceBundleSchemaName);
    out += strformat("  \"schema_version\": %d,\n",
                     traceBundleSchemaVersion);
    out += "  \"generator\": \"mobilebench\",\n";
    out += "  \"soc\": {\n";
    out += "    \"name\": \"" + jsonEscape(socName) + "\",\n";
    out += strformat("    \"config_digest\": \"0x%016llx\",\n",
                     static_cast<unsigned long long>(socDigest));
    out += "    \"gpu_max_freq_hz\": " + jsonNumber(gpuMaxFreqHz) +
           ",\n";
    out += "    \"aie_max_freq_hz\": " + jsonNumber(aieMaxFreqHz) +
           "\n";
    out += "  },\n";
    out += "  \"sample_period_seconds\": " + jsonNumber(samplePeriod) +
           ",\n";
    out += "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        const BenchmarkProfile &p = e.profile;
        out += "    {\n";
        out += "      \"name\": \"" + jsonEscape(p.name) + "\",\n";
        out += "      \"suite\": \"" + jsonEscape(p.suite) + "\",\n";
        out += "      \"file\": \"" + jsonEscape(e.file) + "\",\n";
        out += "      \"sample_period_seconds\": " +
               jsonNumber(p.series.cpuLoad.interval()) + ",\n";
        out += "      \"planned_runtime_seconds\": " +
               jsonNumber(e.plannedRuntimeSeconds) + ",\n";
        out += strformat("      \"individually_executable\": %s,\n",
                         e.individuallyExecutable ? "true" : "false");
        out += "      \"summary\": {\n";
        out += "        \"runtime_seconds\": " +
               jsonNumber(p.runtimeSeconds) + ",\n";
        out += "        \"instructions\": " +
               jsonNumber(p.instructions) + ",\n";
        out += "        \"ipc\": " + jsonNumber(p.ipc) + ",\n";
        out += "        \"cache_mpki\": " + jsonNumber(p.cacheMpki) +
               ",\n";
        out += "        \"branch_mpki\": " + jsonNumber(p.branchMpki) +
               "\n";
        out += "      }\n";
        out += i + 1 < entries.size() ? "    },\n" : "    }\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

void
TraceBundleWriter::writeTraceCsv(const fs::path &path,
                                 const BenchmarkProfile &profile)
{
    const double interval = profile.series.cpuLoad.interval();
    std::size_t samples = profile.series.cpuLoad.size();
    forEachMetricSeries(profile.series,
                        [&](const char *name, const TimeSeries &s) {
        panicIf(s.interval() != interval || s.size() != samples,
                std::string("series '") + name +
                    "' disagrees on shape; cannot export");
    });

    std::ofstream out(path);
    fatalIf(!out, "cannot write trace file " + path.string());
    out.imbue(std::locale::classic());
    CsvWriter csv(out);
    csv.setPrecision(17);

    std::vector<std::string> header{canonicalTimeColumn};
    forEachMetricSeries(profile.series,
                        [&](const char *name, const TimeSeries &) {
        header.push_back(name);
    });
    csv.writeRow(header);

    std::vector<double> row(header.size());
    for (std::size_t i = 0; i < samples; ++i) {
        row.clear();
        row.push_back(double(i) * interval);
        forEachMetricSeries(profile.series,
                            [&](const char *, const TimeSeries &s) {
            row.push_back(s[i]);
        });
        csv.writeRow(row);
    }
    fatalIf(!out, "short write to trace file " + path.string());
}

void
TraceBundleWriter::write(const fs::path &directory) const
{
    std::error_code ec;
    fs::create_directories(directory / "traces", ec);
    fatalIf(bool(ec), "cannot create trace-bundle directory " +
                          (directory / "traces").string());

    for (const Entry &e : entries)
        writeTraceCsv(directory / e.file, e.profile);

    const fs::path manifestPath = directory / "manifest.json";
    std::ofstream out(manifestPath);
    fatalIf(!out, "cannot write " + manifestPath.string());
    out << manifestJson();
    fatalIf(!out, "short write to " + manifestPath.string());
}

} // namespace ingest
} // namespace mbs
