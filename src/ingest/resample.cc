#include "ingest/resample.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/simd.hh"

namespace mbs {
namespace ingest {

namespace {

/** True when times[k] == k*tick exactly for every k. */
bool
onUniformGrid(const std::vector<double> &times, double tick)
{
    return simd::onUniformGrid(times.data(), times.size(), tick);
}

/** Linear interpolation of (times, values) at time @p t, clamped. */
double
levelAt(const std::vector<double> &times,
        const std::vector<double> &values, double t)
{
    if (t <= times.front())
        return values.front();
    if (t >= times.back())
        return values.back();
    const auto it =
        std::lower_bound(times.begin(), times.end(), t);
    const std::size_t hi = std::size_t(it - times.begin());
    if (times[hi] == t)
        return values[hi];
    const std::size_t lo = hi - 1;
    const double f = (t - times[lo]) / (times[hi] - times[lo]);
    return values[lo] + f * (values[hi] - values[lo]);
}

void
checkInputs(const std::vector<double> &times,
            const std::vector<double> &values, double tick)
{
    fatalIf(tick <= 0.0, "resample tick must be > 0");
    fatalIf(times.empty(), "cannot resample an empty column");
    fatalIf(times.size() != values.size(),
            "timestamp/value count mismatch");
    fatalIf(simd::anyNonIncreasing(times.data(), times.size()),
            "timestamps must be strictly increasing");
}

} // namespace

TimeSeries
resampleLevel(const std::vector<double> &times,
              const std::vector<double> &values, double tick)
{
    checkInputs(times, values, tick);
    if (onUniformGrid(times, tick))
        return TimeSeries(tick, values);
    const std::size_t n = resampleGridSize(times, tick);
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t k = 0; k < n; ++k)
        out.push_back(levelAt(times, values, double(k) * tick));
    return TimeSeries(tick, out);
}

TimeSeries
resampleRate(const std::vector<double> &times,
             const std::vector<double> &values, double tick)
{
    checkInputs(times, values, tick);
    if (onUniformGrid(times, tick))
        return TimeSeries(tick, values);

    // Cumulative events at each input timestamp; values[i] covers
    // (times[i-1], times[i]] with times[-1] taken as 0.
    std::vector<double> cumulative(times.size());
    double total = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        total += values[i];
        cumulative[i] = total;
    }

    const auto cumulativeAt = [&](double t) {
        if (t <= 0.0)
            return 0.0;
        if (t >= times.back())
            return total;
        // Within (times[i-1], times[i]] the count accrues linearly.
        const auto it =
            std::lower_bound(times.begin(), times.end(), t);
        const std::size_t hi = std::size_t(it - times.begin());
        const double t0 = hi == 0 ? 0.0 : times[hi - 1];
        const double c0 = hi == 0 ? 0.0 : cumulative[hi - 1];
        const double f = (t - t0) / (times[hi] - t0);
        return c0 + f * (cumulative[hi] - c0);
    };

    const std::size_t n = resampleGridSize(times, tick);
    std::vector<double> out;
    out.reserve(n);
    double prev = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        const double next = cumulativeAt(double(k + 1) * tick);
        out.push_back(next - prev);
        prev = next;
    }
    return TimeSeries(tick, out);
}

std::size_t
resampleGridSize(const std::vector<double> &times, double tick)
{
    fatalIf(tick <= 0.0, "resample tick must be > 0");
    fatalIf(times.empty(), "cannot resample an empty column");
    // floor with a half-ulp of grace so times.back() == (n-1)*tick
    // lands on n samples even after decimal round trips.
    return std::size_t(std::floor(times.back() / tick + 1e-9)) + 1;
}

double
rateTotal(const std::vector<double> &values)
{
    double total = 0.0;
    for (double v : values)
        total += v;
    return total;
}

} // namespace ingest
} // namespace mbs
