/**
 * @file
 * In-memory model of a trace-bundle manifest.
 *
 * A bundle is a directory:
 *
 *     <bundle>/manifest.json       device topology + benchmark index
 *     <bundle>/traces/<slug>.csv   one counter trace per benchmark
 *
 * The manifest pins the schema version, identifies the SoC the traces
 * were captured on (name, config digest, the maximum clocks needed to
 * convert MHz columns to frequency fractions), states the nominal
 * sample period and lists every benchmark with its suite, trace file,
 * subset-accounting facts and an optional summary block of scalar
 * aggregates. The summary exists because aggregates like IPC are
 * means over per-run totals — they cannot be recomputed from the
 * averaged series, so a byte-exact round trip must carry them.
 */

#ifndef MBS_INGEST_TRACE_BUNDLE_HH
#define MBS_INGEST_TRACE_BUNDLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mbs {
namespace ingest {

/** Optional per-benchmark scalar aggregates. */
struct TraceSummary
{
    bool present = false;
    double runtimeSeconds = 0.0;
    double instructions = 0.0;
    double ipc = 0.0;
    double cacheMpki = 0.0;
    double branchMpki = 0.0;
};

/** One benchmark entry of the manifest. */
struct TraceBenchmark
{
    std::string name;
    std::string suite;
    /** Trace CSV path relative to the bundle root. */
    std::string file;
    /** Per-trace sample period; 0 inherits the bundle period. */
    double samplePeriodSeconds = 0.0;
    /** Nominal runtime used for Table-VI subset accounting. */
    double plannedRuntimeSeconds = 0.0;
    /** False when the unit only runs as part of its whole suite. */
    bool individuallyExecutable = true;
    TraceSummary summary;
};

/** Parsed manifest.json. */
struct TraceManifest
{
    std::string schema;
    int schemaVersion = 0;
    std::string generator;
    std::string socName;
    /** SocConfig::digest() of the capture platform. */
    std::uint64_t socConfigDigest = 0;
    /** Maximum clocks for MHz-to-fraction column conversion. */
    double gpuMaxFreqHz = 0.0;
    double aieMaxFreqHz = 0.0;
    /** Bundle-wide nominal sample period in seconds. */
    double samplePeriodSeconds = 0.0;
    std::vector<TraceBenchmark> benchmarks;
};

} // namespace ingest
} // namespace mbs

#endif // MBS_INGEST_TRACE_BUNDLE_HH
