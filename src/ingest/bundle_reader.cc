#include "ingest/bundle_reader.hh"

#include <charconv>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string_view>
#include <thread>

#include "common/digest.hh"
#include "common/json_parse.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "fault/fault.hh"
#include "ingest/resample.hh"
#include "ingest/schema.hh"
#include "obs/events.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mbs {
namespace ingest {

namespace fs = std::filesystem;

namespace {

/**
 * Seed marker distinguishing ingested-bundle cache entries from
 * simulated ones; the real identity lives in benchDigest (the bundle
 * digest), which a simulation key can never collide with by
 * construction of this constant.
 */
constexpr std::uint64_t ingestCacheSeed = 0x494E47455354ULL; // "INGEST"

std::string
readFileBytes(const fs::path &path, const char *what)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, strformat("cannot open %s %s", what,
                           path.string().c_str()));
    std::ostringstream buf;
    buf << in.rdbuf();
    fatalIf(!in.good() && !in.eof(),
            "error reading " + path.string());
    return std::move(buf).str();
}

/**
 * readFileBytes() under a fault-injection site: injected IO errors
 * are retried with backoff (and counted recovered on success, fatal
 * once the budget runs out); injected truncation/corruption mutates
 * the bytes so the downstream parser exercises its diagnostics.
 */
std::string
readFileBytesInjected(const fs::path &path, const char *what,
                      const char *site)
{
    auto &injector = fault::Injector::instance();
    bool sawInjectedError = false;
    for (int attempt = 1;; ++attempt) {
        const std::optional<fault::Kind> injected =
            fault::check(site);
        if (injected == fault::Kind::Error) {
            sawInjectedError = true;
            fatalIf(attempt >= 3,
                    strformat("%s: injected read error "
                              "(retries exhausted)",
                              path.string().c_str()));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1 << (attempt - 1)));
            continue;
        }
        std::string bytes = readFileBytes(path, what);
        if (injected)
            bytes = injector.mutate(*injected, site,
                                    std::move(bytes));
        if (sawInjectedError)
            injector.recovered(site, "retried");
        return bytes;
    }
}

/** Locale-independent double parse; accepts an optional leading '+'. */
bool
parseDouble(std::string_view cell, double *out)
{
    std::size_t begin = 0;
    std::size_t end = cell.size();
    while (begin < end && (cell[begin] == ' ' || cell[begin] == '\t'))
        ++begin;
    while (end > begin &&
           (cell[end - 1] == ' ' || cell[end - 1] == '\t'))
        --end;
    if (begin < end && cell[begin] == '+')
        ++begin;
    if (begin == end)
        return false;
    const auto [ptr, ec] =
        std::from_chars(cell.data() + begin, cell.data() + end, *out);
    return ec == std::errc() && ptr == cell.data() + end;
}

/** Split one CSV line, honouring RFC-4180 quoting. */
std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cell.push_back('"');
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cell.push_back(c);
            }
        } else if (c == '"' && cell.empty()) {
            quoted = true;
        } else if (c == ',') {
            cells.push_back(std::move(cell));
            cell.clear();
        } else {
            cell.push_back(c);
        }
    }
    cells.push_back(std::move(cell));
    return cells;
}

std::uint64_t
parseHexDigest(const JsonValue &v, const std::string &where)
{
    fatalIf(!v.isString(),
            where + ": soc.config_digest must be a hex string");
    std::string_view s = v.str;
    if (s.rfind("0x", 0) == 0 || s.rfind("0X", 0) == 0)
        s.remove_prefix(2);
    std::uint64_t out = 0;
    const auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), out, 16);
    fatalIf(ec != std::errc() || ptr != s.data() + s.size() ||
                s.empty(),
            where + ": malformed soc.config_digest '" + v.str + "'");
    return out;
}

double
numberField(const JsonValue &obj, const std::string &key,
            const std::string &where, double fallback)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        return fallback;
    fatalIf(!v->isNumber(),
            where + ": field '" + key + "' must be a number");
    return v->number;
}

std::string
stringField(const JsonValue &obj, const std::string &key,
            const std::string &where)
{
    const JsonValue *v = obj.find(key);
    fatalIf(v == nullptr || !v->isString(),
            where + ": missing string field '" + key + "'");
    return v->str;
}

TraceManifest
parseManifest(const std::string &bytes, const std::string &where)
{
    JsonValue doc;
    try {
        doc = parseJson(bytes);
    } catch (const FatalError &e) {
        fatal(where + ": " + e.what());
    }
    fatalIf(!doc.isObject(), where + ": manifest must be an object");

    TraceManifest m;
    m.schema = stringField(doc, "schema", where);
    fatalIf(m.schema != traceBundleSchemaName,
            strformat("%s: schema '%s' is not '%s'", where.c_str(),
                      m.schema.c_str(), traceBundleSchemaName));
    const JsonValue *version = doc.find("schema_version");
    fatalIf(version == nullptr || !version->isNumber(),
            where + ": missing numeric field 'schema_version'");
    m.schemaVersion = int(version->number);
    fatalIf(m.schemaVersion != traceBundleSchemaVersion,
            strformat("%s: unsupported schema_version %d "
                      "(supported: %d)",
                      where.c_str(), m.schemaVersion,
                      traceBundleSchemaVersion));

    if (const JsonValue *gen = doc.find("generator");
        gen != nullptr && gen->isString()) {
        m.generator = gen->str;
    }
    if (const JsonValue *soc = doc.find("soc")) {
        fatalIf(!soc->isObject(), where + ": 'soc' must be an object");
        if (const JsonValue *name = soc->find("name");
            name != nullptr && name->isString()) {
            m.socName = name->str;
        }
        if (const JsonValue *digest = soc->find("config_digest"))
            m.socConfigDigest = parseHexDigest(*digest, where);
        m.gpuMaxFreqHz =
            numberField(*soc, "gpu_max_freq_hz", where, 0.0);
        m.aieMaxFreqHz =
            numberField(*soc, "aie_max_freq_hz", where, 0.0);
    }
    m.samplePeriodSeconds =
        numberField(doc, "sample_period_seconds", where, 0.0);
    fatalIf(m.samplePeriodSeconds <= 0.0,
            where + ": sample_period_seconds must be > 0");

    const JsonValue *benchmarks = doc.find("benchmarks");
    fatalIf(benchmarks == nullptr || !benchmarks->isArray(),
            where + ": missing array field 'benchmarks'");
    fatalIf(benchmarks->array.empty(),
            where + ": 'benchmarks' is empty");
    for (const JsonValue &entry : benchmarks->array) {
        fatalIf(!entry.isObject(),
                where + ": benchmark entries must be objects");
        TraceBenchmark b;
        b.name = stringField(entry, "name", where);
        b.suite = stringField(entry, "suite", where);
        b.file = stringField(entry, "file", where);
        b.samplePeriodSeconds = numberField(
            entry, "sample_period_seconds", where,
            m.samplePeriodSeconds);
        b.plannedRuntimeSeconds = numberField(
            entry, "planned_runtime_seconds", where, 0.0);
        if (const JsonValue *ie = entry.find(
                "individually_executable")) {
            fatalIf(!ie->isBool(),
                    where +
                        ": 'individually_executable' must be a bool");
            b.individuallyExecutable = ie->boolean;
        }
        if (const JsonValue *summary = entry.find("summary")) {
            fatalIf(!summary->isObject(),
                    where + ": 'summary' must be an object");
            b.summary.present = true;
            b.summary.runtimeSeconds = numberField(
                *summary, "runtime_seconds", where, 0.0);
            b.summary.instructions =
                numberField(*summary, "instructions", where, 0.0);
            b.summary.ipc = numberField(*summary, "ipc", where, 0.0);
            b.summary.cacheMpki =
                numberField(*summary, "cache_mpki", where, 0.0);
            b.summary.branchMpki =
                numberField(*summary, "branch_mpki", where, 0.0);
        }
        m.benchmarks.push_back(std::move(b));
    }
    return m;
}

/** One parsed trace file: a time base plus normalized columns. */
struct ParsedTrace
{
    std::vector<double> times;
    /** canonical name -> (semantics, samples), insertion-ordered. */
    std::vector<std::pair<ResolvedColumn, std::vector<double>>>
        columns;

    const std::vector<double> *
    column(const std::string &canonical) const
    {
        for (const auto &[spec, samples] : columns) {
            if (spec.canonical == canonical)
                return &samples;
        }
        return nullptr;
    }

};

ParsedTrace
parseTrace(const std::string &bytes, const std::string &where,
           const ConversionContext &ctx, bool lax, IngestStats *stats)
{
    std::vector<std::string> lines;
    {
        std::size_t begin = 0;
        while (begin <= bytes.size()) {
            std::size_t end = bytes.find('\n', begin);
            if (end == std::string::npos)
                end = bytes.size();
            std::string line = bytes.substr(begin, end - begin);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            lines.push_back(std::move(line));
            if (end == bytes.size())
                break;
            begin = end + 1;
        }
        while (!lines.empty() && lines.back().empty())
            lines.pop_back();
    }
    fatalIf(lines.empty(),
            where + ":1: empty trace file (no header row)");

    // Header: time column first, then counters.
    const std::vector<std::string> header = splitCsvLine(lines[0]);
    double timeScale = 1.0;
    fatalIf(!resolveTimeColumn(header[0], &timeScale),
            strformat("%s:1: first column must be a time column "
                      "(e.g. %s), got '%s'",
                      where.c_str(), canonicalTimeColumn,
                      header[0].c_str()));

    ParsedTrace trace;
    // kept[i] maps header cell i+1 to a trace column or, when
    // negative, marks it dropped under --lax.
    std::vector<int> kept;
    for (std::size_t i = 1; i < header.size(); ++i) {
        const auto resolved = resolveCounterColumn(header[i], ctx);
        if (!resolved) {
            fatalIf(!lax, strformat(
                "%s:1: unknown counter column '%s'", where.c_str(),
                header[i].c_str()));
            kept.push_back(-1);
            continue;
        }
        fatalIf(trace.column(resolved->canonical) != nullptr,
                strformat("%s:1: duplicate column for counter '%s'",
                          where.c_str(),
                          resolved->canonical.c_str()));
        if (resolved->viaAlias)
            ++stats->aliasHits;
        kept.push_back(int(trace.columns.size()));
        trace.columns.emplace_back(*resolved, std::vector<double>());
    }
    fatalIf(trace.columns.empty(),
            where + ":1: no counter columns");

    std::vector<double> row(trace.columns.size());
    for (std::size_t lineNo = 2; lineNo <= lines.size(); ++lineNo) {
        const std::string &line = lines[lineNo - 1];
        if (line.empty())
            continue;
        const std::vector<std::string> cells = splitCsvLine(line);
        const auto dropRow = [&](const std::string &why) {
            fatalIf(!lax, strformat("%s:%zu: %s", where.c_str(),
                                    lineNo, why.c_str()));
            ++stats->droppedSamples;
        };
        if (cells.size() != header.size()) {
            dropRow(strformat("expected %zu fields, got %zu",
                              header.size(), cells.size()));
            continue;
        }
        double t = 0.0;
        if (!parseDouble(cells[0], &t) || !std::isfinite(t)) {
            // A broken time base cannot be skipped around safely.
            fatal(strformat("%s:%zu: malformed timestamp '%s'",
                            where.c_str(), lineNo,
                            cells[0].c_str()));
        }
        t *= timeScale;
        if (!trace.times.empty() && t <= trace.times.back()) {
            // Always fatal: reordering time silently is never safe.
            fatal(strformat(
                "%s:%zu: non-monotonic timestamp %s (previous %s)",
                where.c_str(), lineNo,
                strformat("%g", t).c_str(),
                strformat("%g", trace.times.back()).c_str()));
        }
        bool bad = false;
        for (std::size_t i = 1; i < cells.size() && !bad; ++i) {
            const int slot = kept[i - 1];
            if (slot < 0)
                continue;
            double v = 0.0;
            if (!parseDouble(cells[i], &v)) {
                dropRow(strformat("malformed number '%s'",
                                  cells[i].c_str()));
                bad = true;
            } else if (!std::isfinite(v)) {
                dropRow(strformat(
                    "non-finite sample for '%s'",
                    trace.columns[std::size_t(slot)]
                        .first.canonical.c_str()));
                bad = true;
            } else {
                row[std::size_t(slot)] =
                    v * trace.columns[std::size_t(slot)].first.scale;
            }
        }
        if (bad)
            continue;
        trace.times.push_back(t);
        for (std::size_t i = 0; i < trace.columns.size(); ++i)
            trace.columns[i].second.push_back(row[i]);
        ++stats->rows;
    }
    fatalIf(trace.times.empty(), where + ": no samples");
    return trace;
}

BenchmarkProfile
buildProfile(const TraceBenchmark &meta, const ParsedTrace &trace,
             double tick, bool lax, const std::string &where,
             IngestStats *stats)
{
    BenchmarkProfile p;
    p.name = meta.name;
    p.suite = meta.suite;

    const std::size_t grid = resampleGridSize(trace.times, tick);
    forEachMetricSeries(p.series, [&](const char *canonical,
                                      TimeSeries &series) {
        const std::vector<double> *samples = trace.column(canonical);
        if (samples == nullptr) {
            fatalIf(!lax, strformat(
                "%s:1: missing counter column '%s'", where.c_str(),
                canonical));
            // Gap policy: absent counters read as zero.
            stats->droppedSamples += grid;
            series = TimeSeries(tick, std::vector<double>(grid, 0.0));
            return;
        }
        series = resampleLevel(trace.times, *samples, tick);
    });

    if (meta.summary.present) {
        p.runtimeSeconds = meta.summary.runtimeSeconds;
        p.instructions = meta.summary.instructions;
        p.ipc = meta.summary.ipc;
        p.cacheMpki = meta.summary.cacheMpki;
        p.branchMpki = meta.summary.branchMpki;
        return p;
    }

    // No summary block: derive the scalar aggregates from the Rate
    // columns when present.
    p.runtimeSeconds = p.series.cpuLoad.duration();
    const std::vector<double> *instructions =
        trace.column(RateColumns::instructions);
    const std::vector<double> *cycles =
        trace.column(RateColumns::cycles);
    const std::vector<double> *misses =
        trace.column(RateColumns::cacheMisses);
    const std::vector<double> *mispredicts =
        trace.column(RateColumns::branchMispredicts);
    const double instrTotal =
        instructions != nullptr ? rateTotal(*instructions) : 0.0;
    p.instructions = instrTotal;
    if (cycles != nullptr && rateTotal(*cycles) > 0.0)
        p.ipc = instrTotal / rateTotal(*cycles);
    if (misses != nullptr && instrTotal > 0.0)
        p.cacheMpki = rateTotal(*misses) / instrTotal * 1000.0;
    if (mispredicts != nullptr && instrTotal > 0.0)
        p.branchMpki = rateTotal(*mispredicts) / instrTotal * 1000.0;
    return p;
}

} // namespace

TraceBundleReader::TraceBundleReader(const IngestOptions &options)
    : opts(options)
{
    fatalIf(opts.tickSeconds < 0.0, "--tick must be >= 0");
}

IngestResult
TraceBundleReader::read(const fs::path &bundleDir) const
{
    const obs::ScopedSpan span("ingest", "stage");

    IngestResult result;
    const fs::path manifestPath = bundleDir / "manifest.json";
    const std::string manifestBytes = readFileBytesInjected(
        manifestPath, "trace-bundle manifest", "ingest.manifest");
    result.manifest =
        parseManifest(manifestBytes, manifestPath.string());
    TraceManifest &manifest = result.manifest;

    result.tickSeconds = opts.tickSeconds > 0.0
                             ? opts.tickSeconds
                             : manifest.samplePeriodSeconds;

    // Bundle identity: every byte that can influence the profiles.
    // With a fault plan armed the bytes below may be mutated copies,
    // so the digest no longer names the on-disk content — the cache
    // is bypassed entirely for the armed run (see below).
    Fnv1a digest;
    digest.mix(manifestBytes);
    std::vector<std::string> traceBytes;
    std::vector<std::string> readErrors(manifest.benchmarks.size());
    traceBytes.reserve(manifest.benchmarks.size());
    for (std::size_t i = 0; i < manifest.benchmarks.size(); ++i) {
        const TraceBenchmark &b = manifest.benchmarks[i];
        try {
            traceBytes.push_back(readFileBytesInjected(
                bundleDir / b.file, "trace file", "ingest.csv"));
        } catch (const FatalError &e) {
            if (!opts.lax)
                throw;
            // Salvageable: remember the diagnostic, drop the
            // benchmark in the parse loop below.
            readErrors[i] = e.what();
            traceBytes.emplace_back();
        }
        digest.mix(traceBytes.back());
    }
    result.bundleDigest = digest.value();

    auto &metrics = obs::MetricsRegistry::instance();
    // Register the full ingest.* family with descriptions up front;
    // help binds at creation, and later .add() sites stay terse.
    const auto stable = obs::Volatility::Stable;
    metrics.counter("ingest.rows", stable,
                    "Counter-trace CSV rows accepted");
    metrics.counter("ingest.dropped_samples", stable,
                    "Trace samples dropped by --lax salvage");
    metrics.counter("ingest.dropped_benchmarks", stable,
                    "Benchmarks dropped whole by --lax salvage");
    metrics.counter("ingest.alias_hits", stable,
                    "Counter names resolved through the alias table");
    metrics
        .counter("ingest.bundles", stable,
                 "Counter-trace bundles ingested")
        .add();

    const bool faultsArmed = fault::Injector::instance().active();
    const ProfileKey key{manifest.socConfigDigest,
                         result.bundleDigest, ingestCacheSeed, 1,
                         result.tickSeconds};
    if (opts.cache != nullptr && !faultsArmed) {
        if (auto cached = opts.cache->load(key);
            cached.has_value() &&
            cached->size() == manifest.benchmarks.size()) {
            result.profiles = std::move(*cached);
            result.fromCache = true;
            obs::EventLog::instance().emit(
                "ingest.bundle",
                {{"bundle", bundleDir.string()},
                 {"benchmarks",
                  strformat("%zu", result.profiles.size())},
                 {"cached", "true"}});
            return result;
        }
    }

    const ConversionContext ctx{manifest.gpuMaxFreqHz,
                                manifest.aieMaxFreqHz};
    std::vector<TraceBenchmark> survivors;
    survivors.reserve(manifest.benchmarks.size());
    for (std::size_t i = 0; i < manifest.benchmarks.size(); ++i) {
        const TraceBenchmark &meta = manifest.benchmarks[i];
        const std::string where = (bundleDir / meta.file).string();
        const auto salvage = [&](const std::string &error) {
            // Partial-bundle salvage: the fault is confined to this
            // benchmark's trace, so drop it and keep the rest.
            result.stats.droppedBenchmarks.push_back(
                {meta.name, error});
            warn(strformat("--lax: dropping benchmark '%s': %s",
                           meta.name.c_str(), error.c_str()));
            metrics.counter("ingest.dropped_benchmarks").add();
            obs::EventLog::instance().emit(
                "ingest.salvage",
                {{"benchmark", meta.name}, {"error", error}});
            if (faultsArmed)
                fault::Injector::instance().degraded(
                    "ingest.csv",
                    "dropped benchmark '" + meta.name + "'");
        };
        if (!readErrors[i].empty()) {
            salvage(readErrors[i]);
            continue;
        }
        try {
            const ParsedTrace trace = parseTrace(
                traceBytes[i], where, ctx, opts.lax, &result.stats);
            const double tick =
                opts.tickSeconds > 0.0
                    ? opts.tickSeconds
                    : (meta.samplePeriodSeconds > 0.0
                           ? meta.samplePeriodSeconds
                           : manifest.samplePeriodSeconds);
            result.profiles.push_back(buildProfile(
                meta, trace, tick, opts.lax, where, &result.stats));
        } catch (const FatalError &e) {
            if (!opts.lax)
                throw;
            salvage(e.what());
            continue;
        }
        survivors.push_back(meta);
    }
    if (!result.stats.droppedBenchmarks.empty()) {
        // A bundle with no survivors is still a hard failure; point
        // at the first benchmark's diagnostic.
        fatalIf(result.profiles.empty(),
                result.stats.droppedBenchmarks.front().error +
                    " (no benchmark survived --lax salvage)");
        // Keep profiles[i] <-> manifest.benchmarks[i] aligned for
        // every downstream consumer.
        manifest.benchmarks = std::move(survivors);
    }

    metrics.counter("ingest.rows").add(result.stats.rows);
    metrics.counter("ingest.dropped_samples")
        .add(result.stats.droppedSamples);
    metrics.counter("ingest.alias_hits").add(result.stats.aliasHits);
    obs::EventLog::instance().emit(
        "ingest.bundle",
        {{"bundle", bundleDir.string()},
         {"benchmarks", strformat("%zu", result.profiles.size())},
         {"rows", strformat("%llu",
                            (unsigned long long)result.stats.rows)},
         {"dropped_benchmarks",
          strformat("%zu", result.stats.droppedBenchmarks.size())},
         {"cached", "false"}});

    // A salvaged (or fault-mutated) parse must never poison the
    // memoization cache: only clean, complete bundles are saved.
    if (opts.cache != nullptr && !faultsArmed &&
        result.stats.droppedBenchmarks.empty()) {
        opts.cache->save(key, result.profiles);
    }
    return result;
}

} // namespace ingest
} // namespace mbs
