/**
 * @file
 * Trace-bundle schema: the versioned on-disk vocabulary for external
 * counter traces.
 *
 * A bundle is a directory holding `manifest.json` plus one CSV per
 * benchmark under `traces/`. Every CSV column is either the time
 * column or one counter; column headers are normalized against the
 * alias table here into the canonical `soc/counters.hh` names before
 * any analysis runs. The canonical MetricSeries column order is
 * defined by forEachMetricSeries (profiler/session.hh) — schema.cc
 * never re-states it.
 */

#ifndef MBS_INGEST_SCHEMA_HH
#define MBS_INGEST_SCHEMA_HH

#include <optional>
#include <string>
#include <vector>

namespace mbs {
namespace ingest {

/** Manifest `schema` field every bundle must carry. */
inline constexpr const char *traceBundleSchemaName = "mbs.trace-bundle";

/** Highest manifest `schema_version` this reader understands. */
inline constexpr int traceBundleSchemaVersion = 1;

/**
 * How samples of a column combine when resampled.
 *
 * Level counters are instantaneous observations (loads, fractions,
 * bandwidths): resampling interpolates the value at each tick. Rate
 * counters are per-interval event counts (instructions retired):
 * resampling must conserve the total, so the cumulative sum is
 * interpolated and differenced.
 */
enum class ColumnSemantics { Level, Rate };

/** Unit conversions a column may need on ingest. */
enum class UnitConversion
{
    None,        ///< Already in canonical units.
    Percent,     ///< 0..100 -> 0..1 fraction.
    KibPerSecond,///< KiB/s -> bytes/s.
    MhzOfGpuMax, ///< MHz -> fraction of the GPU's maximum clock.
    MhzOfAieMax, ///< MHz -> fraction of the AIE's maximum clock.
};

/** Manifest facts a unit conversion may depend on. */
struct ConversionContext
{
    double gpuMaxFreqHz = 0.0;
    double aieMaxFreqHz = 0.0;
};

/** One counter column after header normalization. */
struct ResolvedColumn
{
    /** Canonical `soc/counters.hh` name. */
    std::string canonical;
    ColumnSemantics semantics = ColumnSemantics::Level;
    /** Multiply every raw sample by this to get canonical units. */
    double scale = 1.0;
    /** True when the header matched through the alias table. */
    bool viaAlias = false;
};

/**
 * Normalize a counter-column header.
 *
 * Matching is case-insensitive and ignores surrounding whitespace;
 * canonical names match directly, everything else goes through the
 * alias table (vendor-profiler spellings like "GPU % Utilization").
 *
 * @return the resolved column, or nullopt for an unknown header.
 * @throws FatalError when an MHz alias is used but @p ctx lacks the
 *         corresponding maximum frequency.
 */
std::optional<ResolvedColumn>
resolveCounterColumn(const std::string &header,
                     const ConversionContext &ctx);

/**
 * Recognize a time-column header ("time_s", "time_ms", ...).
 *
 * @param scaleToSeconds Set to the factor converting raw values to
 *        seconds when the header is recognized.
 * @return true when @p header names the time column.
 */
bool resolveTimeColumn(const std::string &header,
                       double *scaleToSeconds);

/** Canonical time-column header the bundle writer emits. */
inline constexpr const char *canonicalTimeColumn = "time_s";

/**
 * The optional Rate columns the reader can derive scalar aggregates
 * from when a manifest omits the summary block.
 */
struct RateColumns
{
    static constexpr const char *instructions = "cpu.instructions";
    static constexpr const char *cycles = "cpu.cycles";
    static constexpr const char *cacheMisses = "cpu.cache.total.misses";
    static constexpr const char *branchMispredicts =
        "cpu.branch.mispredicts";
};

/** One alias-table row, exposed so docs/tests can enumerate it. */
struct AliasEntry
{
    const char *alias;
    const char *canonical;
    UnitConversion conversion;
};

/** The full alias table (stable order). */
const std::vector<AliasEntry> &aliasTable();

} // namespace ingest
} // namespace mbs

#endif // MBS_INGEST_SCHEMA_HH
