#include "ingest/schema.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"
#include "common/strings.hh"
#include "profiler/session.hh"

namespace mbs {
namespace ingest {

namespace {

std::string
normalizeHeader(const std::string &header)
{
    std::size_t begin = 0;
    std::size_t end = header.size();
    while (begin < end && std::isspace(
               static_cast<unsigned char>(header[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(
               static_cast<unsigned char>(header[end - 1]))) {
        --end;
    }
    std::string out = header.substr(begin, end - begin);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) {
                       return char(std::tolower(c));
                   });
    return out;
}

/** True when @p name is one of the canonical MetricSeries columns. */
bool
isCanonicalSeriesName(const std::string &name)
{
    bool found = false;
    MetricSeries probe;
    forEachMetricSeries(probe, [&](const char *canonical,
                                   const TimeSeries &) {
        if (name == canonical)
            found = true;
    });
    return found;
}

bool
isCanonicalRateName(const std::string &name)
{
    return name == RateColumns::instructions ||
           name == RateColumns::cycles ||
           name == RateColumns::cacheMisses ||
           name == RateColumns::branchMispredicts;
}

double
conversionScale(UnitConversion conversion, const std::string &header,
                const ConversionContext &ctx)
{
    switch (conversion) {
    case UnitConversion::None:
        return 1.0;
    case UnitConversion::Percent:
        return 0.01;
    case UnitConversion::KibPerSecond:
        return 1024.0;
    case UnitConversion::MhzOfGpuMax:
        fatalIf(ctx.gpuMaxFreqHz <= 0.0,
                "column '" + header +
                    "' needs soc.gpu_max_freq_hz in the manifest");
        return 1e6 / ctx.gpuMaxFreqHz;
    case UnitConversion::MhzOfAieMax:
        fatalIf(ctx.aieMaxFreqHz <= 0.0,
                "column '" + header +
                    "' needs soc.aie_max_freq_hz in the manifest");
        return 1e6 / ctx.aieMaxFreqHz;
    }
    panic("unknown unit conversion");
}

} // namespace

const std::vector<AliasEntry> &
aliasTable()
{
    // Vendor-profiler spellings (Snapdragon Profiler et al.) for the
    // canonical counter set. Aliases are matched lowercased.
    static const std::vector<AliasEntry> table = {
        {"cpu utilization %", "cpu.load", UnitConversion::Percent},
        {"cpu load", "cpu.load", UnitConversion::None},
        {"gpu load", "gpu.load", UnitConversion::None},
        {"gpu load %", "gpu.load", UnitConversion::Percent},
        {"gpu % utilization", "gpu.utilization",
         UnitConversion::Percent},
        {"% shaders busy", "gpu.shaders.busy", UnitConversion::Percent},
        {"% gpu bus busy", "gpu.bus.busy", UnitConversion::Percent},
        {"gpu frequency (mhz)", "gpu.frequency.fraction",
         UnitConversion::MhzOfGpuMax},
        {"% texture memory", "gpu.texture.residency",
         UnitConversion::Percent},
        {"aie load", "aie.load", UnitConversion::None},
        {"npu load %", "aie.load", UnitConversion::Percent},
        {"aie % utilization", "aie.utilization",
         UnitConversion::Percent},
        {"dsp frequency (mhz)", "aie.frequency.fraction",
         UnitConversion::MhzOfAieMax},
        {"used memory fraction", "mem.used.minus.idle.fraction",
         UnitConversion::None},
        {"memory used %", "mem.used.minus.idle.fraction",
         UnitConversion::Percent},
        {"storage utilization %", "storage.utilization",
         UnitConversion::Percent},
        {"read throughput (kb/s)", "storage.read.bandwidth",
         UnitConversion::KibPerSecond},
        {"write throughput (kb/s)", "storage.write.bandwidth",
         UnitConversion::KibPerSecond},
        {"cpu little load %", "cpu.little.load",
         UnitConversion::Percent},
        {"cpu mid load %", "cpu.mid.load", UnitConversion::Percent},
        {"cpu big load %", "cpu.big.load", UnitConversion::Percent},
        {"instructions", "cpu.instructions", UnitConversion::None},
        {"cycles", "cpu.cycles", UnitConversion::None},
        {"cache misses", "cpu.cache.total.misses",
         UnitConversion::None},
        {"branch mispredicts", "cpu.branch.mispredicts",
         UnitConversion::None},
    };
    return table;
}

std::optional<ResolvedColumn>
resolveCounterColumn(const std::string &header,
                     const ConversionContext &ctx)
{
    const std::string key = normalizeHeader(header);
    if (isCanonicalSeriesName(key)) {
        return ResolvedColumn{key, ColumnSemantics::Level, 1.0, false};
    }
    if (isCanonicalRateName(key)) {
        return ResolvedColumn{key, ColumnSemantics::Rate, 1.0, false};
    }
    for (const AliasEntry &entry : aliasTable()) {
        if (key != entry.alias)
            continue;
        ResolvedColumn column;
        column.canonical = entry.canonical;
        column.semantics = isCanonicalRateName(entry.canonical)
                               ? ColumnSemantics::Rate
                               : ColumnSemantics::Level;
        column.scale = conversionScale(entry.conversion, header, ctx);
        column.viaAlias = true;
        return column;
    }
    return std::nullopt;
}

bool
resolveTimeColumn(const std::string &header, double *scaleToSeconds)
{
    const std::string key = normalizeHeader(header);
    double scale = 0.0;
    if (key == "time_s" || key == "time" || key == "timestamp_s" ||
        key == "seconds" || key == "time (s)") {
        scale = 1.0;
    } else if (key == "time_ms" || key == "timestamp_ms" ||
               key == "milliseconds" || key == "time (ms)") {
        scale = 1e-3;
    } else {
        return false;
    }
    if (scaleToSeconds != nullptr)
        *scaleToSeconds = scale;
    return true;
}

} // namespace ingest
} // namespace mbs
