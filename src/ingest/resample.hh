/**
 * @file
 * Fixed-tick resampling of irregularly sampled counter columns.
 *
 * External profilers rarely sample on a perfectly uniform grid; the
 * analysis pipeline's TimeSeries is strictly uniform. Resampling maps
 * (timestamp, value) pairs onto a fixed tick with per-counter
 * semantics: Level columns interpolate the instantaneous value at
 * each tick, Rate columns conserve totals by interpolating the
 * cumulative sum and differencing.
 *
 * When the input already lies exactly on the tick grid the samples
 * pass through bit-for-bit — this is what makes the exported-bundle
 * round trip byte-exact.
 */

#ifndef MBS_INGEST_RESAMPLE_HH
#define MBS_INGEST_RESAMPLE_HH

#include <vector>

#include "stats/time_series.hh"

namespace mbs {
namespace ingest {

/**
 * Resample a Level column to a uniform @p tick grid.
 *
 * Sample k of the result is the value at time k*tick, linearly
 * interpolated between the surrounding input samples (clamped at the
 * ends). Inputs whose timestamps equal k*tick exactly for every k
 * are passed through bit-for-bit.
 *
 * @param times Strictly increasing timestamps in seconds.
 * @param values One value per timestamp.
 * @param tick Output sampling interval in seconds (> 0).
 */
TimeSeries resampleLevel(const std::vector<double> &times,
                         const std::vector<double> &values,
                         double tick);

/**
 * Resample a Rate column (per-sample event counts) to a uniform
 * @p tick grid, conserving the total.
 *
 * values[i] is taken as the events accumulated over
 * (times[i-1], times[i]] (over (0, times[0]] for the first sample).
 * The cumulative sum is interpolated at tick boundaries and adjacent
 * differences form the output, so sum(output) == sum(values) up to
 * the final partial tick.
 */
TimeSeries resampleRate(const std::vector<double> &times,
                        const std::vector<double> &values,
                        double tick);

/** Total of a Rate column: plain sum of the per-sample counts. */
double rateTotal(const std::vector<double> &values);

/**
 * Number of samples a resampled series will have: one per tick in
 * [0, times.back()]. Exposed so gap-filled (all-zero) columns can be
 * shaped without resampling anything.
 */
std::size_t resampleGridSize(const std::vector<double> &times,
                             double tick);

} // namespace ingest
} // namespace mbs

#endif // MBS_INGEST_RESAMPLE_HH
