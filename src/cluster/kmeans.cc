#include "kmeans.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "common/random.hh"

namespace mbs {

namespace {

using Point = std::vector<double>;

/** Squared distance from @p row to each center; returns best index. */
std::size_t
nearestCenter(const Point &row, const std::vector<Point> &centers,
              double *best_distance = nullptr)
{
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < centers.size(); ++c) {
        const double d = squaredEuclideanDistance(row, centers[c]);
        if (d < best_d) {
            best_d = d;
            best = c;
        }
    }
    if (best_distance)
        *best_distance = best_d;
    return best;
}

/** k-means++ seeding. */
std::vector<Point>
seedCenters(const FeatureMatrix &features, int k,
            Xoshiro256StarStar &rng)
{
    std::vector<Point> centers;
    centers.push_back(
        features.row(rng.uniformInt(features.rows())));
    while (int(centers.size()) < k) {
        // Choose the next center with probability proportional to the
        // squared distance to the nearest existing center.
        std::vector<double> weights(features.rows());
        double total = 0.0;
        for (std::size_t i = 0; i < features.rows(); ++i) {
            double d = 0.0;
            nearestCenter(features.row(i), centers, &d);
            weights[i] = d;
            total += d;
        }
        if (total <= 0.0) {
            // All points coincide with existing centers; pick any.
            centers.push_back(
                features.row(rng.uniformInt(features.rows())));
            continue;
        }
        double pick = rng.uniform() * total;
        std::size_t chosen = features.rows() - 1;
        for (std::size_t i = 0; i < features.rows(); ++i) {
            pick -= weights[i];
            if (pick <= 0.0) {
                chosen = i;
                break;
            }
        }
        centers.push_back(features.row(chosen));
    }
    return centers;
}

} // namespace

KMeans::KMeans(const KMeansOptions &options_)
    : options(options_)
{
    fatalIf(options.restarts < 1, "K-Means needs >= 1 restart");
    fatalIf(options.maxIterations < 1,
            "K-Means needs >= 1 Lloyd iteration");
}

ClusteringResult
KMeans::fit(const FeatureMatrix &features, int k) const
{
    fatalIf(k < 1 || std::size_t(k) > features.rows(),
            "K-Means k must be in [1, rows]");
    Xoshiro256StarStar master(options.seed);

    ClusteringResult best;
    best.inertia = std::numeric_limits<double>::max();

    for (int restart = 0; restart < options.restarts; ++restart) {
        auto rng = master.fork(std::uint64_t(restart));
        std::vector<Point> centers = seedCenters(features, k, rng);
        std::vector<int> labels(features.rows(), 0);

        for (int iter = 0; iter < options.maxIterations; ++iter) {
            bool changed = false;
            for (std::size_t i = 0; i < features.rows(); ++i) {
                const int c =
                    int(nearestCenter(features.row(i), centers));
                if (c != labels[i]) {
                    labels[i] = c;
                    changed = true;
                }
            }

            // Recompute centers; repair empty clusters with the point
            // farthest from its current center.
            std::vector<Point> next(
                std::size_t(k), Point(features.cols(), 0.0));
            std::vector<int> count(std::size_t(k), 0);
            for (std::size_t i = 0; i < features.rows(); ++i) {
                const auto c = std::size_t(labels[i]);
                ++count[c];
                for (std::size_t d = 0; d < features.cols(); ++d)
                    next[c][d] += features.at(i, d);
            }
            for (std::size_t c = 0; c < std::size_t(k); ++c) {
                if (count[c] == 0) {
                    std::size_t far = 0;
                    double far_d = -1.0;
                    for (std::size_t i = 0; i < features.rows(); ++i) {
                        double d = 0.0;
                        nearestCenter(features.row(i), centers, &d);
                        if (d > far_d) {
                            far_d = d;
                            far = i;
                        }
                    }
                    next[c] = features.row(far);
                    changed = true;
                } else {
                    for (double &v : next[c])
                        v /= double(count[c]);
                }
            }
            centers = std::move(next);
            if (!changed)
                break;
        }

        double inertia = 0.0;
        for (std::size_t i = 0; i < features.rows(); ++i) {
            double d = 0.0;
            labels[i] = int(nearestCenter(features.row(i), centers, &d));
            inertia += d;
        }
        if (inertia < best.inertia) {
            best.k = k;
            best.labels = canonicalizeLabels(labels);
            best.inertia = inertia;
        }
    }
    return best;
}

} // namespace mbs
