#include "kmeans.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/simd.hh"

namespace mbs {

namespace {

/**
 * Centers live in one flat k x dims buffer so the assignment loop
 * streams row-vs-center with contiguous loads on both sides.
 */
struct Centers
{
    std::size_t dims = 0;
    std::vector<double> cells;

    std::size_t count() const { return dims ? cells.size() / dims : 0; }
    const double *at(std::size_t c) const { return cells.data() + c * dims; }
    double *at(std::size_t c) { return cells.data() + c * dims; }

    void append(const double *p)
    {
        cells.insert(cells.end(), p, p + dims);
    }
};

/** Squared distance from @p row to each center; returns best index. */
std::size_t
nearestCenter(const double *row, const Centers &centers,
              double *best_distance = nullptr)
{
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < centers.count(); ++c) {
        const double d =
            simd::sumSqDiff(row, centers.at(c), centers.dims);
        if (d < best_d) {
            best_d = d;
            best = c;
        }
    }
    if (best_distance)
        *best_distance = best_d;
    return best;
}

/** k-means++ seeding. */
Centers
seedCenters(const FeatureMatrix &features, int k,
            Xoshiro256StarStar &rng)
{
    Centers centers;
    centers.dims = features.cols();
    centers.append(
        features.rowPtr(rng.uniformInt(features.rows())));
    while (int(centers.count()) < k) {
        // Choose the next center with probability proportional to the
        // squared distance to the nearest existing center.
        std::vector<double> weights(features.rows());
        double total = 0.0;
        for (std::size_t i = 0; i < features.rows(); ++i) {
            double d = 0.0;
            nearestCenter(features.rowPtr(i), centers, &d);
            weights[i] = d;
            total += d;
        }
        if (total <= 0.0) {
            // All points coincide with existing centers; pick any.
            centers.append(
                features.rowPtr(rng.uniformInt(features.rows())));
            continue;
        }
        double pick = rng.uniform() * total;
        std::size_t chosen = features.rows() - 1;
        for (std::size_t i = 0; i < features.rows(); ++i) {
            pick -= weights[i];
            if (pick <= 0.0) {
                chosen = i;
                break;
            }
        }
        centers.append(features.rowPtr(chosen));
    }
    return centers;
}

} // namespace

KMeans::KMeans(const KMeansOptions &options_)
    : options(options_)
{
    fatalIf(options.restarts < 1, "K-Means needs >= 1 restart");
    fatalIf(options.maxIterations < 1,
            "K-Means needs >= 1 Lloyd iteration");
}

ClusteringResult
KMeans::fit(const FeatureMatrix &features, int k) const
{
    fatalIf(k < 1 || std::size_t(k) > features.rows(),
            "K-Means k must be in [1, rows]");
    Xoshiro256StarStar master(options.seed);

    const std::size_t dims = features.cols();

    ClusteringResult best;
    best.inertia = std::numeric_limits<double>::max();

    for (int restart = 0; restart < options.restarts; ++restart) {
        auto rng = master.fork(std::uint64_t(restart));
        Centers centers = seedCenters(features, k, rng);
        std::vector<int> labels(features.rows(), 0);

        for (int iter = 0; iter < options.maxIterations; ++iter) {
            bool changed = false;
            for (std::size_t i = 0; i < features.rows(); ++i) {
                const int c =
                    int(nearestCenter(features.rowPtr(i), centers));
                if (c != labels[i]) {
                    labels[i] = c;
                    changed = true;
                }
            }

            // Recompute centers; repair empty clusters with the point
            // farthest from its current center.
            Centers next;
            next.dims = dims;
            next.cells.assign(std::size_t(k) * dims, 0.0);
            std::vector<int> count(std::size_t(k), 0);
            for (std::size_t i = 0; i < features.rows(); ++i) {
                const auto c = std::size_t(labels[i]);
                ++count[c];
                simd::addAssign(next.at(c), features.rowPtr(i), dims);
            }
            for (std::size_t c = 0; c < std::size_t(k); ++c) {
                if (count[c] == 0) {
                    std::size_t far = 0;
                    double far_d = -1.0;
                    for (std::size_t i = 0; i < features.rows(); ++i) {
                        double d = 0.0;
                        nearestCenter(features.rowPtr(i), centers, &d);
                        if (d > far_d) {
                            far_d = d;
                            far = i;
                        }
                    }
                    std::copy_n(features.rowPtr(far), dims, next.at(c));
                    changed = true;
                } else {
                    simd::divScalar(next.at(c), next.at(c), dims,
                                    double(count[c]));
                }
            }
            centers = std::move(next);
            if (!changed)
                break;
        }

        double inertia = 0.0;
        for (std::size_t i = 0; i < features.rows(); ++i) {
            double d = 0.0;
            labels[i] =
                int(nearestCenter(features.rowPtr(i), centers, &d));
            inertia += d;
        }
        if (inertia < best.inertia) {
            best.k = k;
            best.labels = canonicalizeLabels(labels);
            best.inertia = inertia;
        }
    }
    return best;
}

} // namespace mbs
