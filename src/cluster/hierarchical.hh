/**
 * @file
 * Agglomerative hierarchical clustering with selectable linkage, plus
 * a dendrogram that can be cut at any k and rendered as text (the
 * paper's Fig. 5).
 */

#ifndef MBS_CLUSTER_HIERARCHICAL_HH
#define MBS_CLUSTER_HIERARCHICAL_HH

#include <string>
#include <vector>

#include "cluster/clustering.hh"

namespace mbs {

/** Cluster-distance update rules. */
enum class Linkage { Single, Complete, Average, Ward };

/** @return printable linkage name. */
std::string linkageName(Linkage linkage);

/** One agglomeration step: clusters a and b merge at a height. */
struct MergeStep
{
    /** Merged node ids; leaves are [0, n), internal nodes n, n+1, ... */
    int a = 0;
    int b = 0;
    /** Cluster distance at which the merge happened. */
    double height = 0.0;
};

/**
 * The full merge tree over n observations (n - 1 steps).
 */
class Dendrogram
{
  public:
    Dendrogram(std::size_t leaves, std::vector<MergeStep> merges);

    std::size_t leafCount() const { return leaves; }
    const std::vector<MergeStep> &merges() const { return steps; }

    /**
     * Cut into @p k flat clusters by undoing the last k - 1 merges.
     * @return canonicalized labels.
     */
    std::vector<int> cut(int k) const;

    /**
     * Render as an indented text tree with leaf names, e.g. for the
     * Fig.-5 reproduction.
     */
    std::string render(const std::vector<std::string> &leaf_names) const;

  private:
    std::size_t leaves;
    std::vector<MergeStep> steps;
};

/**
 * Agglomerative hierarchical clustering (Lance-Williams updates).
 */
class HierarchicalClustering : public Clusterer
{
  public:
    explicit HierarchicalClustering(Linkage linkage = Linkage::Average);

    std::string name() const override;

    /** Build the full dendrogram. */
    Dendrogram buildDendrogram(const FeatureMatrix &features) const;

    ClusteringResult fit(const FeatureMatrix &features,
                         int k) const override;

  private:
    Linkage linkage;
};

} // namespace mbs

#endif // MBS_CLUSTER_HIERARCHICAL_HH
