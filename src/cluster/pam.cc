#include "pam.hh"

#include <algorithm>
#include <limits>

#include "cluster/distance_matrix.hh"
#include "common/logging.hh"
#include "common/simd.hh"

namespace mbs {

namespace {

/** Total cost of assigning every point to its nearest medoid. */
double
totalCost(const DistanceMatrix &dist,
          const std::vector<std::size_t> &medoids)
{
    double cost = 0.0;
    for (std::size_t i = 0; i < dist.size(); ++i) {
        const double *row = dist.row(i);
        double best = std::numeric_limits<double>::max();
        for (std::size_t m : medoids)
            best = std::min(best, row[m]);
        cost += best;
    }
    return cost;
}

} // namespace

ClusteringResult
Pam::fit(const FeatureMatrix &features, int k) const
{
    const std::size_t n = features.rows();
    fatalIf(k < 1 || std::size_t(k) > n, "PAM k must be in [1, rows]");

    const DistanceMatrix dist(features);

    // BUILD: first medoid minimizes total distance; each further
    // medoid maximizes the cost reduction.
    std::vector<std::size_t> medoids;
    std::vector<bool> is_medoid(n, false);
    {
        std::size_t best = 0;
        double best_cost = std::numeric_limits<double>::max();
        for (std::size_t m = 0; m < n; ++m) {
            // The matrix is symmetric, so medoid m's column sum is
            // its (contiguous) row sum.
            const double cost = simd::sum(dist.row(m), n);
            if (cost < best_cost) {
                best_cost = cost;
                best = m;
            }
        }
        medoids.push_back(best);
        is_medoid[best] = true;
    }
    while (int(medoids.size()) < k) {
        std::size_t best = 0;
        double best_cost = std::numeric_limits<double>::max();
        for (std::size_t cand = 0; cand < n; ++cand) {
            if (is_medoid[cand])
                continue;
            medoids.push_back(cand);
            const double cost = totalCost(dist, medoids);
            medoids.pop_back();
            if (cost < best_cost) {
                best_cost = cost;
                best = cand;
            }
        }
        medoids.push_back(best);
        is_medoid[best] = true;
    }

    // SWAP: steepest-descent exchanges until no improvement.
    double current = totalCost(dist, medoids);
    bool improved = true;
    while (improved) {
        improved = false;
        for (std::size_t mi = 0; mi < medoids.size(); ++mi) {
            for (std::size_t cand = 0; cand < n; ++cand) {
                if (is_medoid[cand])
                    continue;
                const std::size_t old = medoids[mi];
                medoids[mi] = cand;
                const double cost = totalCost(dist, medoids);
                if (cost + 1e-12 < current) {
                    current = cost;
                    is_medoid[old] = false;
                    is_medoid[cand] = true;
                    improved = true;
                } else {
                    medoids[mi] = old;
                }
            }
        }
    }

    ClusteringResult out;
    out.k = k;
    out.inertia = current;
    out.labels.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double *row = dist.row(i);
        std::size_t best_m = 0;
        double best_d = std::numeric_limits<double>::max();
        for (std::size_t m = 0; m < medoids.size(); ++m) {
            if (row[medoids[m]] < best_d) {
                best_d = row[medoids[m]];
                best_m = m;
            }
        }
        out.labels[i] = int(best_m);
    }
    out.labels = canonicalizeLabels(out.labels);
    return out;
}

} // namespace mbs
