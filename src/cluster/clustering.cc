#include "clustering.hh"

#include <map>

#include "common/logging.hh"

namespace mbs {

std::vector<int>
canonicalizeLabels(const std::vector<int> &labels)
{
    std::map<int, int> remap;
    std::vector<int> out;
    out.reserve(labels.size());
    for (int label : labels) {
        const auto it = remap.find(label);
        if (it == remap.end()) {
            const int next = int(remap.size());
            remap.emplace(label, next);
            out.push_back(next);
        } else {
            out.push_back(it->second);
        }
    }
    return out;
}

bool
samePartition(const std::vector<int> &a, const std::vector<int> &b)
{
    if (a.size() != b.size())
        return false;
    return canonicalizeLabels(a) == canonicalizeLabels(b);
}

std::vector<std::vector<std::size_t>>
groupByCluster(const std::vector<int> &labels, int k)
{
    fatalIf(k <= 0, "cluster count must be positive");
    std::vector<std::vector<std::size_t>> groups(
        static_cast<std::size_t>(k));
    for (std::size_t i = 0; i < labels.size(); ++i) {
        fatalIf(labels[i] < 0 || labels[i] >= k,
                "label out of range in groupByCluster");
        groups[static_cast<std::size_t>(labels[i])].push_back(i);
    }
    return groups;
}

} // namespace mbs
