/**
 * @file
 * K-Means clustering (Lloyd's algorithm with k-means++ seeding).
 */

#ifndef MBS_CLUSTER_KMEANS_HH
#define MBS_CLUSTER_KMEANS_HH

#include <cstdint>

#include "cluster/clustering.hh"

namespace mbs {

/** Tunables for the K-Means solver. */
struct KMeansOptions
{
    /** Independent restarts; the lowest-inertia solution wins. */
    int restarts = 10;
    /** Lloyd iteration cap per restart. */
    int maxIterations = 100;
    /** Seed for k-means++ initialization. */
    std::uint64_t seed = 7;
};

/**
 * K-Means with k-means++ seeding and multiple restarts.
 *
 * Deterministic for a fixed seed. Empty clusters are repaired by
 * reseeding the empty center at the point farthest from its center.
 */
class KMeans : public Clusterer
{
  public:
    explicit KMeans(const KMeansOptions &options = {});

    std::string name() const override { return "K-Means"; }

    ClusteringResult fit(const FeatureMatrix &features,
                         int k) const override;

  private:
    KMeansOptions options;
};

} // namespace mbs

#endif // MBS_CLUSTER_KMEANS_HH
