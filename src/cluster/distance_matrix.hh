/**
 * @file
 * Flat, symmetric pairwise Euclidean distance matrix.
 *
 * The clustering algorithms and every validation measure need the same
 * n x n distances; computing them once into a contiguous buffer keeps
 * the inner loops streaming (row pointers, no vector-of-vectors
 * indirection) and lets one ValidationSweep::evaluate() share the
 * matrix across all five measures.
 */

#ifndef MBS_CLUSTER_DISTANCE_MATRIX_HH
#define MBS_CLUSTER_DISTANCE_MATRIX_HH

#include <cstddef>
#include <vector>

#include "stats/feature_matrix.hh"

namespace mbs {

class DistanceMatrix
{
  public:
    DistanceMatrix() = default;

    /** Pairwise Euclidean distances between the rows of @p m. */
    explicit DistanceMatrix(const FeatureMatrix &m)
        : n(m.rows()), cells(n * n, 0.0)
    {
        const std::size_t dims = m.cols();
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                const double d = euclideanDistance(
                    m.rowPtr(i), m.rowPtr(j), dims);
                cells[i * n + j] = d;
                cells[j * n + i] = d;
            }
        }
    }

    std::size_t size() const { return n; }

    double at(std::size_t i, std::size_t j) const
    {
        return cells[i * n + j];
    }

    /** @return pointer to row @p i's first distance. */
    const double *row(std::size_t i) const
    {
        return cells.data() + i * n;
    }

  private:
    std::size_t n = 0;
    std::vector<double> cells;
};

} // namespace mbs

#endif // MBS_CLUSTER_DISTANCE_MATRIX_HH
