#include "validation.hh"

#include <algorithm>
#include <limits>
#include <map>

#include "common/logging.hh"

namespace mbs {

namespace {

int
labelMax(const std::vector<int> &labels)
{
    int k = 0;
    for (int label : labels)
        k = std::max(k, label + 1);
    return k;
}

} // namespace

double
dunnIndex(const DistanceMatrix &dist, const std::vector<int> &labels)
{
    fatalIf(labels.size() != dist.size(),
            "labels/distances size mismatch");
    const int k = labelMax(labels);
    if (k < 2)
        return 0.0;

    double min_separation = std::numeric_limits<double>::max();
    double max_diameter = 0.0;
    for (std::size_t i = 0; i < dist.size(); ++i) {
        const double *row = dist.row(i);
        for (std::size_t j = i + 1; j < dist.size(); ++j) {
            const double d = row[j];
            if (labels[i] == labels[j])
                max_diameter = std::max(max_diameter, d);
            else
                min_separation = std::min(min_separation, d);
        }
    }
    if (max_diameter <= 0.0)
        return 0.0;
    return min_separation / max_diameter;
}

double
dunnIndex(const FeatureMatrix &features, const std::vector<int> &labels)
{
    fatalIf(labels.size() != features.rows(),
            "labels/features size mismatch");
    return dunnIndex(DistanceMatrix(features), labels);
}

double
silhouetteWidth(const DistanceMatrix &dist,
                const std::vector<int> &labels)
{
    fatalIf(labels.size() != dist.size(),
            "labels/distances size mismatch");
    const int k = labelMax(labels);
    if (k < 2)
        return 0.0;
    const auto groups = groupByCluster(labels, k);

    double total = 0.0;
    for (std::size_t i = 0; i < dist.size(); ++i) {
        const double *row = dist.row(i);
        const auto own = std::size_t(labels[i]);
        if (groups[own].size() < 2) {
            // Singleton: silhouette defined as 0.
            continue;
        }
        // a(i): mean distance to own cluster (excluding self).
        double a = 0.0;
        for (std::size_t j : groups[own]) {
            if (j != i)
                a += row[j];
        }
        a /= double(groups[own].size() - 1);

        // b(i): smallest mean distance to another cluster.
        double b = std::numeric_limits<double>::max();
        for (std::size_t c = 0; c < groups.size(); ++c) {
            if (c == own || groups[c].empty())
                continue;
            double mean = 0.0;
            for (std::size_t j : groups[c])
                mean += row[j];
            mean /= double(groups[c].size());
            b = std::min(b, mean);
        }
        const double denom = std::max(a, b);
        if (denom > 0.0)
            total += (b - a) / denom;
    }
    return total / double(dist.size());
}

double
silhouetteWidth(const FeatureMatrix &features,
                const std::vector<int> &labels)
{
    fatalIf(labels.size() != features.rows(),
            "labels/features size mismatch");
    return silhouetteWidth(DistanceMatrix(features), labels);
}

double
connectivity(const DistanceMatrix &dist,
             const std::vector<int> &labels, int neighbors)
{
    fatalIf(labels.size() != dist.size(),
            "labels/distances size mismatch");
    fatalIf(neighbors < 1, "connectivity needs >= 1 neighbour");
    const std::size_t n = dist.size();
    const auto k = std::min<std::size_t>(std::size_t(neighbors),
                                         n > 0 ? n - 1 : 0);
    double total = 0.0;
    std::vector<std::pair<double, std::size_t>> order;
    for (std::size_t i = 0; i < n; ++i) {
        // Sort the other observations by distance to i.
        const double *row = dist.row(i);
        order.clear();
        order.reserve(n - 1);
        for (std::size_t j = 0; j < n; ++j) {
            if (j != i)
                order.emplace_back(row[j], j);
        }
        std::sort(order.begin(), order.end());
        for (std::size_t j = 0; j < k; ++j) {
            if (labels[order[j].second] != labels[i])
                total += 1.0 / double(j + 1);
        }
    }
    return total;
}

double
connectivity(const FeatureMatrix &features,
             const std::vector<int> &labels, int neighbors)
{
    fatalIf(labels.size() != features.rows(),
            "labels/features size mismatch");
    return connectivity(DistanceMatrix(features), labels, neighbors);
}

double
averageProportionOfNonOverlap(const FeatureMatrix &features,
                              const Clusterer &algorithm, int k)
{
    fatalIf(features.cols() < 2,
            "stability validation needs >= 2 feature columns");
    const auto full = algorithm.fit(features, k).labels;
    const auto full_groups = groupByCluster(full, labelMax(full));

    double total = 0.0;
    std::size_t terms = 0;
    for (std::size_t col = 0; col < features.cols(); ++col) {
        const auto reduced_features = features.withoutColumn(col);
        const auto reduced =
            algorithm.fit(reduced_features, k).labels;
        const auto reduced_groups =
            groupByCluster(reduced, labelMax(reduced));

        for (std::size_t i = 0; i < features.rows(); ++i) {
            const auto &c_full = full_groups[std::size_t(full[i])];
            const auto &c_red =
                reduced_groups[std::size_t(reduced[i])];
            // Overlap size: members of both clusters.
            std::size_t overlap = 0;
            for (std::size_t j : c_full) {
                if (std::find(c_red.begin(), c_red.end(), j) !=
                    c_red.end()) {
                    ++overlap;
                }
            }
            total += 1.0 - double(overlap) / double(c_full.size());
            ++terms;
        }
    }
    return terms ? total / double(terms) : 0.0;
}

double
averageDistance(const FeatureMatrix &features,
                const DistanceMatrix &dist,
                const Clusterer &algorithm, int k)
{
    fatalIf(features.cols() < 2,
            "stability validation needs >= 2 feature columns");
    fatalIf(dist.size() != features.rows(),
            "distances/features size mismatch");
    const auto full = algorithm.fit(features, k).labels;
    const auto full_groups = groupByCluster(full, labelMax(full));

    double total = 0.0;
    std::size_t terms = 0;
    for (std::size_t col = 0; col < features.cols(); ++col) {
        const auto reduced_features = features.withoutColumn(col);
        const auto reduced =
            algorithm.fit(reduced_features, k).labels;
        const auto reduced_groups =
            groupByCluster(reduced, labelMax(reduced));

        for (std::size_t i = 0; i < features.rows(); ++i) {
            const auto &c_full = full_groups[std::size_t(full[i])];
            const auto &c_red =
                reduced_groups[std::size_t(reduced[i])];
            double sum = 0.0;
            for (std::size_t a : c_full) {
                const double *row = dist.row(a);
                for (std::size_t b : c_red)
                    sum += row[b];
            }
            total += sum / double(c_full.size() * c_red.size());
            ++terms;
        }
    }
    return terms ? total / double(terms) : 0.0;
}

double
averageDistance(const FeatureMatrix &features,
                const Clusterer &algorithm, int k)
{
    return averageDistance(features, DistanceMatrix(features),
                           algorithm, k);
}

ValidationSweep::ValidationSweep(
    std::vector<const Clusterer *> algorithms_, int k_min, int k_max)
    : algorithms(std::move(algorithms_)), kMin(k_min), kMax(k_max)
{
    fatalIf(algorithms.empty(), "a sweep needs >= 1 algorithm");
    fatalIf(kMin < 2 || kMax < kMin,
            "a sweep needs 2 <= k_min <= k_max");
}

ValidationPoint
ValidationSweep::evaluate(const FeatureMatrix &features,
                          const Clusterer &algorithm, int k)
{
    ValidationPoint point;
    point.algorithm = algorithm.name();
    point.k = k;
    const auto labels = algorithm.fit(features, k).labels;
    // One distance matrix serves every measure of this sweep point.
    const DistanceMatrix dist(features);
    point.dunn = dunnIndex(dist, labels);
    point.silhouette = silhouetteWidth(dist, labels);
    point.connectivity = connectivity(dist, labels);
    point.apn = averageProportionOfNonOverlap(features, algorithm, k);
    point.ad = averageDistance(features, dist, algorithm, k);
    return point;
}

std::vector<ValidationPoint>
ValidationSweep::run(const FeatureMatrix &features) const
{
    fatalIf(std::size_t(kMax) > features.rows(),
            "k_max exceeds the number of observations");
    std::vector<ValidationPoint> out;
    for (const Clusterer *algo : algorithms) {
        for (int k = kMin; k <= kMax; ++k)
            out.push_back(evaluate(features, *algo, k));
    }
    return out;
}

int
ValidationSweep::bestInternalK(const std::vector<ValidationPoint> &points)
{
    fatalIf(points.empty(), "no validation points");
    // Sum Dunn and silhouette across algorithms per k; the k with the
    // highest combined normalized score wins.
    std::map<int, double> dunn_sum, sil_sum;
    double dunn_max = 0.0, sil_max = 0.0;
    for (const auto &p : points) {
        dunn_sum[p.k] += p.dunn;
        sil_sum[p.k] += p.silhouette;
        dunn_max = std::max(dunn_max, dunn_sum[p.k]);
        sil_max = std::max(sil_max, sil_sum[p.k]);
    }
    int best_k = points.front().k;
    double best_score = -1.0;
    for (const auto &[k, d] : dunn_sum) {
        const double score =
            (dunn_max > 0.0 ? d / dunn_max : 0.0) +
            (sil_max > 0.0 ? sil_sum[k] / sil_max : 0.0);
        if (score > best_score) {
            best_score = score;
            best_k = k;
        }
    }
    return best_k;
}

} // namespace mbs
