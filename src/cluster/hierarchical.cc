#include "hierarchical.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <map>

#include "common/logging.hh"
#include "common/simd.hh"

namespace mbs {

std::string
linkageName(Linkage linkage)
{
    switch (linkage) {
      case Linkage::Single:
        return "single";
      case Linkage::Complete:
        return "complete";
      case Linkage::Average:
        return "average";
      case Linkage::Ward:
        return "Ward";
    }
    panic("unknown linkage");
}

Dendrogram::Dendrogram(std::size_t leaves_, std::vector<MergeStep> merges)
    : leaves(leaves_), steps(std::move(merges))
{
    fatalIf(leaves < 1, "a dendrogram needs at least one leaf");
    fatalIf(steps.size() != leaves - 1,
            "a dendrogram over n leaves has exactly n - 1 merges");
}

std::vector<int>
Dendrogram::cut(int k) const
{
    fatalIf(k < 1 || std::size_t(k) > leaves,
            "dendrogram cut k must be in [1, leaves]");
    // Union-find over leaves; replay merges except the last k - 1.
    std::vector<int> parent(leaves + steps.size());
    for (std::size_t i = 0; i < parent.size(); ++i)
        parent[i] = int(i);
    std::function<int(int)> find = [&](int x) {
        while (parent[std::size_t(x)] != x) {
            parent[std::size_t(x)] =
                parent[std::size_t(parent[std::size_t(x)])];
            x = parent[std::size_t(x)];
        }
        return x;
    };

    const std::size_t keep = steps.size() - std::size_t(k - 1);
    for (std::size_t s = 0; s < keep; ++s) {
        const int node = int(leaves + s);
        parent[std::size_t(find(steps[s].a))] = node;
        parent[std::size_t(find(steps[s].b))] = node;
    }
    // But roots of skipped merges must still resolve: leave them as
    // distinct components.
    std::vector<int> labels(leaves);
    std::map<int, int> remap;
    for (std::size_t i = 0; i < leaves; ++i) {
        const int root = find(int(i));
        const auto it = remap.find(root);
        if (it == remap.end()) {
            const int next = int(remap.size());
            remap.emplace(root, next);
            labels[i] = next;
        } else {
            labels[i] = it->second;
        }
    }
    return canonicalizeLabels(labels);
}

std::string
Dendrogram::render(const std::vector<std::string> &leaf_names) const
{
    fatalIf(leaf_names.size() != leaves,
            "dendrogram render needs one name per leaf");
    // Recursive text tree, children indented beneath their merge.
    std::function<std::string(int, int)> render_node =
        [&](int node, int depth) {
            std::string pad(std::size_t(depth) * 2, ' ');
            if (node < int(leaves))
                return pad + "- " + leaf_names[std::size_t(node)] + "\n";
            const MergeStep &step =
                steps[std::size_t(node) - leaves];
            char height[48];
            std::snprintf(height, sizeof(height), "%.3f", step.height);
            std::string out =
                pad + "+ merge @ " + height + "\n";
            out += render_node(step.a, depth + 1);
            out += render_node(step.b, depth + 1);
            return out;
        };
    return render_node(int(leaves + steps.size()) - 1, 0);
}

HierarchicalClustering::HierarchicalClustering(Linkage linkage_)
    : linkage(linkage_)
{
}

std::string
HierarchicalClustering::name() const
{
    return "Hierarchical (" + linkageName(linkage) + ")";
}

Dendrogram
HierarchicalClustering::buildDendrogram(
    const FeatureMatrix &features) const
{
    const std::size_t n = features.rows();
    fatalIf(n < 1, "cannot cluster an empty feature matrix");

    // Active cluster list: node id, member count, and a distance row
    // to every other active cluster (Lance-Williams updates). The
    // matrix is one flat n x n buffer with fixed row stride; the
    // active prefix shrinks as clusters merge.
    struct Active
    {
        int node;
        double count;
    };
    std::vector<Active> active;
    std::vector<double> dist(n * n, 0.0);
    const auto D = [&dist, n](std::size_t i, std::size_t j) -> double & {
        return dist[i * n + j];
    };
    const std::size_t dims = features.cols();
    for (std::size_t i = 0; i < n; ++i) {
        active.push_back(Active{int(i), 1.0});
        for (std::size_t j = i; j < n; ++j) {
            double d = euclideanDistance(
                features.rowPtr(i), features.rowPtr(j), dims);
            if (linkage == Linkage::Ward)
                d = d * d; // Ward operates on squared distances
            D(i, j) = d;
            D(j, i) = d;
        }
    }

    std::vector<MergeStep> merges;
    int next_node = int(n);
    while (active.size() > 1) {
        // Find the closest active pair.
        std::size_t bi = 0, bj = 1;
        double best = std::numeric_limits<double>::max();
        for (std::size_t i = 0; i < active.size(); ++i) {
            const double *row = dist.data() + i * n;
            for (std::size_t j = i + 1; j < active.size(); ++j) {
                if (row[j] < best) {
                    best = row[j];
                    bi = i;
                    bj = j;
                }
            }
        }

        const double ci = active[bi].count;
        const double cj = active[bj].count;
        merges.push_back(MergeStep{
            active[bi].node, active[bj].node,
            linkage == Linkage::Ward ? std::sqrt(best) : best});

        // Lance-Williams distance of the merged cluster to others.
        std::vector<double> merged_row(active.size());
        for (std::size_t x = 0; x < active.size(); ++x) {
            if (x == bi || x == bj)
                continue;
            const double dik = D(bi, x);
            const double djk = D(bj, x);
            double d = 0.0;
            switch (linkage) {
              case Linkage::Single:
                d = std::min(dik, djk);
                break;
              case Linkage::Complete:
                d = std::max(dik, djk);
                break;
              case Linkage::Average:
                d = (ci * dik + cj * djk) / (ci + cj);
                break;
              case Linkage::Ward: {
                const double ck = active[x].count;
                d = ((ci + ck) * dik + (cj + ck) * djk -
                     ck * D(bi, bj)) / (ci + cj + ck);
                break;
              }
            }
            merged_row[x] = d;
        }

        // Replace cluster bi with the merge, drop bj.
        active[bi].node = next_node++;
        active[bi].count = ci + cj;
        for (std::size_t x = 0; x < active.size(); ++x) {
            if (x == bi || x == bj)
                continue;
            D(bi, x) = merged_row[x];
            D(x, bi) = merged_row[x];
        }
        // Swap-erase bj from active and the distance matrix; the flat
        // buffer keeps its stride, only the active prefix shrinks.
        const std::size_t last = active.size() - 1;
        if (bj != last) {
            std::swap(active[bj], active[last]);
            std::swap_ranges(dist.begin() + std::ptrdiff_t(bj * n),
                             dist.begin() + std::ptrdiff_t(bj * n +
                                                           active.size()),
                             dist.begin() + std::ptrdiff_t(last * n));
            for (std::size_t x = 0; x < active.size(); ++x)
                std::swap(D(x, bj), D(x, last));
        }
        active.pop_back();
    }

    return Dendrogram(n, std::move(merges));
}

ClusteringResult
HierarchicalClustering::fit(const FeatureMatrix &features, int k) const
{
    const Dendrogram tree = buildDendrogram(features);
    ClusteringResult out;
    out.k = k;
    out.labels = tree.cut(k);
    out.inertia = 0.0;
    return out;
}

} // namespace mbs
