/**
 * @file
 * Partitioning Around Medoids (PAM, Kaufman & Rousseeuw 1990).
 */

#ifndef MBS_CLUSTER_PAM_HH
#define MBS_CLUSTER_PAM_HH

#include "cluster/clustering.hh"

namespace mbs {

/**
 * PAM: BUILD phase picks initial medoids greedily; SWAP phase
 * exchanges medoids with non-medoids while the total within-cluster
 * distance improves. Deterministic (no randomness needed).
 *
 * Uses Euclidean distance on the feature rows; inertia is the sum of
 * distances (not squared) to the assigned medoid, matching the
 * classical objective.
 */
class Pam : public Clusterer
{
  public:
    std::string name() const override { return "PAM"; }

    ClusteringResult fit(const FeatureMatrix &features,
                         int k) const override;
};

} // namespace mbs

#endif // MBS_CLUSTER_PAM_HH
