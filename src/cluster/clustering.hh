/**
 * @file
 * Clustering algorithm interfaces and shared result types.
 *
 * The paper clusters benchmarks with three techniques (K-Means, PAM,
 * agglomerative hierarchical) and cross-validates the grouping; all
 * three implement the same Clusterer interface here so validation and
 * sweeps are algorithm-agnostic.
 */

#ifndef MBS_CLUSTER_CLUSTERING_HH
#define MBS_CLUSTER_CLUSTERING_HH

#include <string>
#include <vector>

#include "stats/feature_matrix.hh"

namespace mbs {

/** A flat clustering: one label per observation, labels in [0, k). */
struct ClusteringResult
{
    int k = 0;
    std::vector<int> labels;
    /** Sum of squared distances to the assigned centers (K-Means) or
     *  medoids (PAM); 0 for hierarchical cuts. */
    double inertia = 0.0;
};

/** Abstract clustering algorithm. */
class Clusterer
{
  public:
    virtual ~Clusterer() = default;

    /** Algorithm display name, e.g. "K-Means". */
    virtual std::string name() const = 0;

    /**
     * Cluster the rows of @p features into @p k groups.
     * @pre 1 <= k <= features.rows().
     */
    virtual ClusteringResult fit(const FeatureMatrix &features,
                                 int k) const = 0;
};

/**
 * Relabel a clustering so labels appear in first-occurrence order:
 * observation 0 gets label 0, the first observation with a different
 * cluster gets 1, and so on. Makes clusterings from different
 * algorithms directly comparable.
 */
std::vector<int> canonicalizeLabels(const std::vector<int> &labels);

/** @return true if two clusterings induce the same partition. */
bool samePartition(const std::vector<int> &a, const std::vector<int> &b);

/** Group observation indices by cluster label. */
std::vector<std::vector<std::size_t>>
groupByCluster(const std::vector<int> &labels, int k);

} // namespace mbs

#endif // MBS_CLUSTER_CLUSTERING_HH
