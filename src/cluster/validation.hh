/**
 * @file
 * Cluster validation measures (the paper's Fig. 4).
 *
 * Internal validation: Dunn index and average silhouette width
 * (higher is better). Stability validation: average proportion of
 * non-overlap (APN) and average distance (AD), computed by comparing
 * the clustering on the full feature matrix against clusterings with
 * one column removed at a time (lower is better).
 */

#ifndef MBS_CLUSTER_VALIDATION_HH
#define MBS_CLUSTER_VALIDATION_HH

#include <vector>

#include "cluster/clustering.hh"
#include "cluster/distance_matrix.hh"

namespace mbs {

/**
 * Dunn index: minimum inter-cluster distance divided by maximum
 * cluster diameter. Uses single-linkage separation and complete-
 * diameter, the classical definition.
 *
 * @return 0 when any cluster is empty or all points coincide.
 */
double dunnIndex(const FeatureMatrix &features,
                 const std::vector<int> &labels);

/** Dunn index over precomputed pairwise distances. */
double dunnIndex(const DistanceMatrix &dist,
                 const std::vector<int> &labels);

/**
 * Mean silhouette width over all observations. Observations in
 * singleton clusters contribute 0, following convention.
 */
double silhouetteWidth(const FeatureMatrix &features,
                       const std::vector<int> &labels);

/** Silhouette width over precomputed pairwise distances. */
double silhouetteWidth(const DistanceMatrix &dist,
                       const std::vector<int> &labels);

/**
 * Connectivity (Handl et al.): for each observation, penalize its
 * @p neighbors nearest neighbours that fall in a different cluster
 * by 1/j for the j-th neighbour. >= 0, lower is better (0 means
 * every local neighbourhood is intact).
 */
double connectivity(const FeatureMatrix &features,
                    const std::vector<int> &labels, int neighbors = 5);

/** Connectivity over precomputed pairwise distances. */
double connectivity(const DistanceMatrix &dist,
                    const std::vector<int> &labels, int neighbors = 5);

/**
 * Average proportion of non-overlap: for each observation and each
 * removed column, the proportion of its full-data cluster that is
 * not shared with its leave-one-column-out cluster. In [0, 1],
 * lower is more stable.
 */
double averageProportionOfNonOverlap(const FeatureMatrix &features,
                                     const Clusterer &algorithm, int k);

/**
 * Average distance: mean distance between each observation's
 * full-data cluster members and its leave-one-column-out cluster
 * members, measured in the full feature space. Lower is better.
 */
double averageDistance(const FeatureMatrix &features,
                       const Clusterer &algorithm, int k);

/**
 * Average distance using precomputed full-feature-space pairwise
 * distances. All leave-one-column-out comparisons measure in the
 * full space, so one matrix serves every column.
 */
double averageDistance(const FeatureMatrix &features,
                       const DistanceMatrix &dist,
                       const Clusterer &algorithm, int k);

/** One row of a validation sweep: measures for (algorithm, k). */
struct ValidationPoint
{
    std::string algorithm;
    int k = 0;
    double dunn = 0.0;
    double silhouette = 0.0;
    /** Connectivity (lower better); supplementary internal measure. */
    double connectivity = 0.0;
    double apn = 0.0;
    double ad = 0.0;
};

/**
 * Sweep k over [k_min, k_max] for several algorithms, computing all
 * four validation measures at each point.
 */
class ValidationSweep
{
  public:
    /**
     * @param algorithms Non-owning pointers; must outlive the sweep.
     */
    ValidationSweep(std::vector<const Clusterer *> algorithms,
                    int k_min, int k_max);

    /** Run the sweep on @p features. */
    std::vector<ValidationPoint> run(const FeatureMatrix &features) const;

    /**
     * Compute all five measures of one (algorithm, k) sweep point.
     * Pure — safe to evaluate points concurrently.
     */
    static ValidationPoint evaluate(const FeatureMatrix &features,
                                    const Clusterer &algorithm, int k);

    /**
     * The k preferred by internal validation: the k whose summed rank
     * across Dunn and silhouette (higher better) over all algorithms
     * is best.
     */
    static int bestInternalK(const std::vector<ValidationPoint> &points);

  private:
    std::vector<const Clusterer *> algorithms;
    int kMin;
    int kMax;
};

} // namespace mbs

#endif // MBS_CLUSTER_VALIDATION_HH
